"""Extension (Section I / conclusion): capacity planning.

"A server with high peak energy efficiency is not essentially highly
energy proportional" -- so buying the highest peak-EE model for a
diurnal service wastes energy.  The plan must show the naive choice
differing from the energy-best choice, at a measurable penalty.
"""


def test_ext_procurement(record):
    result = record("procurement")
    assert not result.series["naive_matches"]
    assert result.series["naive_penalty"] > 0.10
    controlled = result.series["controlled"]
    assert controlled.best_by_energy.ep > controlled.best_by_peak_ee.ep
