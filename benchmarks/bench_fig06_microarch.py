"""Fig. 6: server counts by CPU microarchitecture family.

Paper: Nehalem (152) and Sandy Bridge (137) dominate; Netburst and
Skylake are niche (3 each).
"""


def test_fig06_microarch(record):
    result = record("fig6")
    series = result.series
    assert series["Nehalem"]["count"] == 152
    assert series["Sandy Bridge"]["count"] == 137
    assert series["Netburst"]["count"] == 3
    assert series["Skylake"]["count"] == 3
    assert sum(entry["count"] for entry in series.values()) == 477
