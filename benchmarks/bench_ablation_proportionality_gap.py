"""Ablation (related work): the low-utilization proportionality gap.

Wong & Annavaram (refs. [17]/[48] of the paper) found that even as
scalar EP improved, the 10-30% utilization region kept a significant
proportionality gap.  This bench reproduces their per-level gap view
on the corpus and checks both the improvement and the residual lag.
"""

from repro.analysis.gap import gap_trend, low_band_lag, mean_gap_profile


def test_ablation_proportionality_gap(corpus, benchmark):
    trend = benchmark(gap_trend, corpus)
    by_year = dict(zip(trend.years, trend.low_band_gap))
    assert by_year[2016] < by_year[2008] * 0.5  # the improvement ...
    lag = low_band_lag(corpus)
    assert lag["low_over_mid"] > 1.5            # ... and the residual lag
    profile = mean_gap_profile(corpus)
    assert profile[0.1] > profile[0.5] > profile[0.9]
