"""Harness: the artifact engine's cold, parallel, and warm-cache paths.

Not a paper artifact: times ``run_all`` through the execution engine
and asserts the cache contract — a warm run serves every artifact from
the content-addressed store without recomputing anything.
"""

from repro.core.executor import ArtifactExecutor
from repro.core.registry import FIGURE_IDS


def test_engine_parallel_run_all(study, benchmark):
    report = benchmark(
        lambda: ArtifactExecutor(study, jobs=4).run()
    )
    assert set(report) == set(FIGURE_IDS)
    assert report.built == len(FIGURE_IDS)


def test_engine_warm_cached_run_all(study, warm_cache, benchmark):
    report = benchmark(
        lambda: study.run_all(jobs=4, cache=warm_cache, report=True)
    )
    assert report.cache_hits == len(FIGURE_IDS)
    assert report.built == 0
