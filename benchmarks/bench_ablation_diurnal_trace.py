"""Ablation (Section V.C in operation): a diurnal day of placement.

Replays a double-peaked daily demand trace against the modern fleet
under both placement policies and integrates energy: EP-aware
placement must save energy over the day at identical served work.
"""

import pytest

from repro.cluster.trace import compare_policies, daily_saving, diurnal_trace


def test_ablation_diurnal_trace(corpus, benchmark):
    fleet = list(corpus.by_hw_year_range(2014, 2016))
    trace = diurnal_trace(steps_per_day=24, noise=0.0)
    outcomes = benchmark(compare_policies, fleet, trace)
    assert daily_saving(outcomes) > 0.01
    assert outcomes["ep-aware"].served_gops == pytest.approx(
        outcomes["pack-to-full"].served_gops, rel=1e-6
    )
