"""Fig. 7: average EP per microarchitecture codename.

Paper legend: Sandy Bridge EN 0.90 (best), Broadwell 0.87, Haswell
0.81, Ivy Bridge 0.71 (a regression from Sandy Bridge 0.75 despite the
finer node), Netburst 0.29 (worst).
"""

import pytest


def test_fig07_codename_ep(record):
    result = record("fig7")
    codenames = result.series["codenames"]
    expected = {
        "Sandy Bridge EN": 0.90,
        "Broadwell": 0.87,
        "Haswell": 0.81,
        "Sandy Bridge": 0.75,
        "Ivy Bridge": 0.71,
        "Westmere-EP": 0.65,
        "Netburst": 0.29,
    }
    for name, target in expected.items():
        assert codenames[name]["avg_ep"] == pytest.approx(target, abs=0.08), name
    assert codenames["Ivy Bridge"]["avg_ep"] < codenames["Sandy Bridge"]["avg_ep"]
    stagnation = result.series["stagnation"]
    assert stagnation["observed_2013_2014"] < stagnation["counterfactual_2012_mix"]
