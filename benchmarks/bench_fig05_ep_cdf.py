"""Fig. 5: the EP CDF.

Paper: 25.21% of servers in [0.6, 0.7), 17.44% in [0.8, 0.9), 99.58%
below EP 1.0.
"""

import pytest


def test_fig05_ep_cdf(record):
    result = record("fig5")
    landmarks = result.series["landmarks"]
    assert landmarks["share_06_07"] == pytest.approx(0.2521, abs=0.05)
    assert landmarks["share_08_09"] == pytest.approx(0.1744, abs=0.05)
    assert landmarks["share_below_1"] == pytest.approx(0.9958, abs=0.003)
    xs, F = result.series["x"], result.series["F"]
    assert F == sorted(F) and xs == sorted(xs)
