"""Extension (Wong ISCA'16 comparator): job-granular scheduling.

Peak-spot-aware scheduling vs. first-fit-decreasing consolidation on a
synthesized job batch: the spot-aware policy must place everything and
draw less fleet power.
"""


def test_ext_job_scheduling(record):
    result = record("jobs")
    schedules = result.series["schedules"]
    for schedule in schedules.values():
        assert not schedule.unplaced
    assert result.series["saving"] > 0.02
    ffd = schedules["first-fit-decreasing"]
    spot = schedules["peak-spot-aware"]
    assert spot.servers_loaded >= ffd.servers_loaded
