"""Section V.C: EP-aware placement vs. pack-to-full on a fixed fleet.

Paper: keeping servers near their peak-efficiency spot instead of
packing them to 100% saves power at the same throughput, and places
more work under a fixed power budget.
"""


def test_placement(record):
    result = record("placement")
    series = result.series
    assert series["aware_power_w"] < series["pack_power_w"]
    assert series["saving"] > 0.02
