"""Extension (Section III.B, quantified): shift-share EP decomposition.

The "specious stagnation" claim, as arithmetic: the 2012->2013 EP drop
must decompose mostly into the mix term (which processors were adopted)
rather than the within term (how proportional each design is).
"""


def test_ext_decomposition(corpus, benchmark):
    from repro.analysis.decomposition import stagnation_decomposition

    summary = benchmark(stagnation_decomposition, corpus)
    dip = summary["dip_2012_2013"]
    assert dip.total_change < 0.0
    assert dip.mix_share > 0.5
