"""Ablation (future work): EP under different workloads.

Section VII plans to characterize EP/EE "under different workloads";
the Section V.C caveat predicts a server exhibits different curves per
application.  This bench characterizes server #4 under four workload
personalities and checks the spread is material.
"""

from repro.hwexp.testbed import TESTBED
from repro.hwexp.workloads import compare_workloads, ep_spread
from repro.ssj.variants import VARIANTS


def test_ablation_workload_sensitivity(benchmark):
    results = benchmark(
        compare_workloads, TESTBED[4], list(VARIANTS.values())
    )
    assert set(results) == set(VARIANTS)
    assert ep_spread(results) > 0.02
    for outcome in results.values():
        assert 0.0 < outcome.ep < 2.0
