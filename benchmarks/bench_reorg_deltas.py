"""Section I: the hardware-availability-year reorganization.

Paper: 15.5% of results have a published year different from hardware
availability; re-indexing moves per-year EP statistics by up to ~13%
and EE statistics by up to ~21%.
"""

import pytest


def test_reorg_deltas(record):
    result = record("reorg")
    series = result.series
    assert series["mismatch_fraction"] == pytest.approx(0.155, abs=0.002)
    for key in ("ep_avg_range", "ep_median_range", "score_avg_range",
                "score_median_range"):
        low, high = series[key]
        assert low < 0.0 < high or high > 0.01, key
        assert -0.25 < low and high < 0.25, key
    # EE deltas skew positive (late publication flatters old hardware).
    assert series["score_avg_range"][1] > abs(series["score_avg_range"][0])
