"""Fig. 18: server #1 (Sugon A620r-G) EE vs. memory and frequency.

Paper: best memory per core 1.75 GB; efficiency falls at every lower
pinned frequency; ondemand tracks the top frequency.
"""

import pytest


def _frequency_series(result, mpc):
    cells = result.series["cells"]
    return {
        key[1]: value["ee"]
        for key, value in cells.items()
        if abs(key[0] - mpc) < 1e-9 and not isinstance(key[1], str)
    }


def test_fig18_server1(record):
    result = record("fig18")
    assert result.series["best_memory_per_core"] == pytest.approx(1.75)
    series = _frequency_series(result, 1.75)
    frequencies = sorted(series)
    values = [series[f] for f in frequencies]
    assert values == sorted(values)
