"""Ablation: how much of EP is explained by idle power alone.

DESIGN.md calls out the Eq. 2 mechanism as the corpus's backbone; this
ablation refits Eq. 2 on era subsets and checks the relationship is
stable across generations (the paper's claim that idle power is *the*
driving force, not a cohort artifact).
"""

from repro.analysis.regression_study import idle_regression
from repro.dataset.corpus import Corpus


def test_ablation_idle_regression_stable_across_eras(corpus, benchmark):
    def refit():
        return {
            "early": idle_regression(corpus.by_hw_year_range(2004, 2010)),
            "late": idle_regression(corpus.by_hw_year_range(2011, 2016)),
            "all": idle_regression(corpus),
        }

    fits = benchmark(refit)
    for era, regression in fits.items():
        assert regression.correlation < -0.75, era
        assert regression.fit.r_squared > 0.7, era
