"""Section VI: the rebuttal of Wong ISCA'16's ~60% claim.

Paper: 69.25% of all published results peak at 100% utilization and
only ~1.88% peak at 60%, against Wong's "typically ~60%" claim.
"""

import pytest


def test_related_wong(record):
    result = record("wong")
    series = result.series
    assert series["share_100"] == pytest.approx(0.6925, abs=0.02)
    assert series["share_60"] == pytest.approx(0.0188, abs=0.006)
    assert series["count_60"] == 9
