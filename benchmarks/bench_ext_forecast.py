"""Extension: the paper's forward projections, operationalized.

Section III.D's headroom math (EP 1.17 at 5% idle, ceiling ~1.297) and
Section IV.A's drift prediction (peak spot toward 50%/40% utilization)
as computed artifacts.
"""

import pytest


def test_ext_forecast(record):
    result = record("forecast")
    headroom = result.series["headroom"]
    assert headroom.projections[0.05] == pytest.approx(1.17, abs=0.08)
    assert headroom.fitted_ceiling == pytest.approx(1.297, abs=0.12)
    drift = result.series["drift"]
    assert drift.slope_per_year < 0.0
    assert 2017 <= drift.year_reaching(0.5) <= 2035
