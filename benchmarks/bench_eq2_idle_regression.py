"""Eq. 2 and Section III.D: the idle-power regression.

Paper: EP = 1.2969 * exp(k * idle) with R^2 = 0.892 (k ~= -2.06 from
the paper's own idle=5% => EP=1.17 example); corr(EP, idle%) = -0.92.
"""

import pytest


def test_eq2_idle_regression(record):
    result = record("eq2")
    series = result.series
    assert series["amplitude"] == pytest.approx(1.2969, abs=0.12)
    assert series["rate"] == pytest.approx(-2.06, abs=0.35)
    assert series["r_squared"] == pytest.approx(0.892, abs=0.06)
    assert series["corr_ep_idle"] == pytest.approx(-0.92, abs=0.04)
    assert series["corr_ep_score"] == pytest.approx(0.741, abs=0.08)
