"""Fig. 1: the energy-proportionality curve of the 2016 exemplar.

Paper: a 2016 server with overall score 12212 whose EP is ~1.02 -- its
normalized power curve dips below the ideal line well before 100%
utilization.
"""

import pytest


def test_fig01_ep_curve(record):
    result = record("fig1")
    assert result.series["ep"] == pytest.approx(1.02, abs=0.01)
    assert result.series["score"] == pytest.approx(12212.0, rel=0.01)
    # The curve crosses the ideal line: normalized power below
    # utilization somewhere in the mid-range.
    utilization = result.series["utilization"]
    power = result.series["normalized_power"]
    assert any(p < u for u, p in zip(utilization, power) if 0.0 < u < 1.0)
