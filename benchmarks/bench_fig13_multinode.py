"""Fig. 13: EP and EE vs. server node count.

Paper: median EP rises monotonically with node count; average EP dips
at 8 nodes but recovers at 16; efficiency also benefits from scale.
"""


def test_fig13_multinode(record):
    result = record("fig13")
    stats = result.series
    nodes = sorted(stats)
    assert nodes == [1, 2, 4, 8, 16]
    medians = [stats[n]["median_ep"] for n in nodes]
    assert medians == sorted(medians)
    assert stats[8]["avg_ep"] < stats[4]["avg_ep"]
    assert stats[16]["avg_ep"] > stats[8]["avg_ep"]
    assert stats[16]["avg_ee"] > stats[1]["avg_ee"]
