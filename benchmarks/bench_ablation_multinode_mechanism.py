"""Ablation: the Fig. 13 economies-of-scale mechanism from first
principles.

Rebuilds cluster-wide EP for node groups of one legacy server with and
without the ability to power nodes off: the proportionality gain must
come from consolidation, not from the node count itself.
"""

from repro.cluster.multinode import cluster_proportionality


def test_ablation_multinode_power_off(corpus, benchmark):
    node = min(corpus.by_hw_year(2008), key=lambda r: r.ep)

    def sweep():
        return {
            (n, off): cluster_proportionality(node, n, can_power_off=off)
            for n in (2, 4, 8, 16)
            for off in (True, False)
        }

    results = benchmark(sweep)
    for n in (2, 4, 8, 16):
        assert results[(n, True)] > results[(n, False)]
        assert results[(n, True)] > node.ep
