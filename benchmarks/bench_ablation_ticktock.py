"""Ablation (Section III.A): tick/tock attribution of the EP jumps.

The paper credits both EP step-jumps (2008->2009, 2011->2012) to
Intel "tock" transitions.  Along the server lineage, the mean EP gain
of tocks must exceed that of ticks, and the two named tocks must be
the largest single gains.
"""


def test_ablation_ticktock(corpus, benchmark):
    from repro.analysis.ticktock import tick_tock_summary

    summary = benchmark(tick_tock_summary, corpus)
    assert summary["mean_tock_gain"] > summary["mean_tick_gain"]
    assert summary["named_tocks_are_largest"]
