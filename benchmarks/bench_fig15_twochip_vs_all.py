"""Fig. 15: 2-chip single-node servers vs. all servers (same year).

Paper: +2.94% average EP, +4.13% average EE, +1.18% median EP, +6.26%
median EE.
"""

import pytest


def test_fig15_twochip(record):
    result = record("fig15")
    series = result.series
    assert series["avg_ep_gain"] == pytest.approx(0.0294, abs=0.025)
    assert series["avg_ee_gain"] == pytest.approx(0.0413, abs=0.05)
    assert series["median_ee_gain"] > 0.0
