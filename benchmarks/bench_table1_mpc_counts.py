"""Table I: memory-per-core statistics of the published servers.

Paper: {0.67: 15, 1: 153, 1.33: 32, 1.5: 68, 1.78: 13, 2: 123, 4: 26},
covering 430 of the 477 servers.
"""


def test_table1(record):
    result = record("table1")
    series = result.series
    expected = {"0.67": 15, "1": 153, "1.33": 32, "1.5": 68,
                "1.78": 13, "2": 123, "4": 26}
    assert series == expected
    assert sum(series.values()) == 430
