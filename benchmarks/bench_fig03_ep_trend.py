"""Fig. 3: EP statistics trend per hardware availability year.

Paper: average EP 0.30 (2005) -> 0.82 (2012) -> ~0.84 (2016); two step
jumps, +48.65% into 2009 and +24.24% into 2012; minimum 0.18 in 2008.
"""

import pytest


def test_fig03_ep_trend(record):
    result = record("fig3")
    years = result.series["years"]
    avg = dict(zip(years, result.series["avg"]))
    minimum = dict(zip(years, result.series["min"]))
    assert avg[2005] == pytest.approx(0.30, abs=0.035)
    assert avg[2012] == pytest.approx(0.82, abs=0.035)
    assert avg[2016] == pytest.approx(0.84, abs=0.035)
    assert min(minimum.values()) == pytest.approx(0.18, abs=0.01)
    steps = result.series["step_changes"]
    assert steps["avg_2008_2009"] == pytest.approx(0.4865, abs=0.12)
    assert steps["avg_2011_2012"] == pytest.approx(0.2424, abs=0.07)
