"""Fig. 11: the almond chart (relative-efficiency envelope).

Paper: every relative-EE curve sits between the least and most
proportional servers' curves; the upper edge exceeds 1.0 mid-range.
"""


def test_fig11_almond(record, corpus):
    result = record("fig11")
    upper = result.series["upper"]
    lower = result.series["lower"]
    assert max(upper) > 1.0
    assert max(lower) <= 1.0 + 1e-9
    from repro.metrics.curves import ee_relative_curve

    for server in corpus:
        loads, powers = server.curve()
        rel = ee_relative_curve(loads, powers)
        for value, lo, hi in zip(rel, lower, upper):
            assert lo - 1e-9 <= value <= hi + 1e-9
