"""Fig. 12: relative-EE curves of the selected servers.

Paper: servers with EP > 1 reach 0.8x of their full-load efficiency
before 30% utilization and 1.0x before 40%.
"""


def test_fig12_selected_ee(record):
    result = record("fig12")
    crossings = result.series["crossings"]
    high_ep = {k: v for k, v in crossings.items() if float(k.split(":")[1]) > 1.0}
    assert len(high_ep) == 2  # the EP 1.02 and 1.05 exemplars
    for key, (c08, c10) in high_ep.items():
        assert c08 < 0.30, key
        assert c10 < 0.40, key
    # Lower-EP curves cross later (or never).
    low_ep = {k: v for k, v in crossings.items() if float(k.split(":")[1]) < 0.5}
    for key, (c08, _c10) in low_ep.items():
        assert not (c08 < 0.30), key
