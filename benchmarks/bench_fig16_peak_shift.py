"""Fig. 16: chronological shifting of the peak-efficiency spot.

Paper: all servers peak at 100% before 2010; over 2004-2012 75.71% peak
at 100%; over 2013-2016 only 23.21% do while 35.71% peak at 80% and
26.79% at 70%; in 2016 the split is 3/10/5 at 100/80/70%.
"""

import pytest


def test_fig16_peak_shift(record):
    result = record("fig16")
    trend = result.series["trend"]
    for year in range(2004, 2010):
        assert trend[year] == {1.0: 1.0}, year
    eras = result.series["eras"]
    assert eras["2004-2012"][1.0] == pytest.approx(0.7571, abs=0.02)
    assert eras["2013-2016"][1.0] == pytest.approx(0.2321, abs=0.02)
    assert eras["2013-2016"][0.8] == pytest.approx(0.3571, abs=0.02)
    assert eras["2013-2016"][0.7] == pytest.approx(0.2679, abs=0.02)
    shares_2016 = trend[2016]
    assert shares_2016[1.0] == pytest.approx(3 / 18, abs=0.01)
    assert shares_2016[0.8] == pytest.approx(10 / 18, abs=0.01)
    assert shares_2016[0.7] == pytest.approx(5 / 18, abs=0.01)
