"""Fig. 10: the eleven selected EP curves.

Paper: the selection spans EP 0.18 .. 1.05; curves that intersect the
ideal line do so earlier the higher their EP; a 2014 1U server crosses
twice; the 2011 and 2016 EP=0.75 pair differ in shape (one crosses,
one does not).
"""

import pytest


def test_fig10_selected_ep(record):
    result = record("fig10")
    curves = result.series["curves"]
    assert len(curves) == 11
    eps = sorted(float(key.split(":")[1]) for key in curves)
    assert eps[0] == pytest.approx(0.18, abs=0.01)
    assert eps[-1] == pytest.approx(1.05, abs=0.01)
    ordering = result.series["intersection_ordering"]
    assert len(ordering) >= 4
    from repro.metrics.correlation import spearman

    assert spearman([e for e, _ in ordering], [x for _, x in ordering]) < -0.6
