"""Ablation (related work): the Hsu & Poole metric-family comparison.

Ref. [16] compares EP against ER, IPR, and LD.  This bench computes the
family's rank-correlation matrix over the corpus and checks the
structural facts: EP and ER rank identically, IPR anti-correlates, and
equal-EP pairs with different LD exist (the scalar conceals shape).
"""

import pytest

from repro.analysis.metric_comparison import (
    equal_ep_different_ld,
    rank_correlation_matrix,
)


def test_ablation_metric_family(corpus, benchmark):
    matrix = benchmark(rank_correlation_matrix, corpus)
    assert matrix[("ep", "er")] == pytest.approx(1.0, abs=1e-9)
    assert matrix[("ep", "ipr")] < -0.85
    assert matrix[("ep", "pg_low")] < -0.7
    assert len(equal_ep_different_ld(corpus)) >= 1
