"""Fig. 2: EP and EE evolution by hardware availability year.

Paper: both metrics improve over 2004-2016, EP from ~0.3 to ~0.84 with
visible scatter, EE monotonically into the five digits.
"""


def test_fig02_evolution(record):
    result = record("fig2")
    ep_points = result.series["ep_points"]
    ee_points = result.series["ee_points"]
    assert len(ep_points) == len(ee_points) == 477
    early_ep = [ep for year, ep in ep_points if year <= 2008]
    late_ep = [ep for year, ep in ep_points if year >= 2015]
    assert sum(late_ep) / len(late_ep) > 2 * sum(early_ep) / len(early_ep)
    early_ee = max(ee for year, ee in ee_points if year <= 2008)
    late_ee = min(ee for year, ee in ee_points if year >= 2015)
    assert late_ee > early_ee
