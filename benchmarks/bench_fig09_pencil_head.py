"""Fig. 9: the pencil-head chart.

Paper: all 477 EP curves lie between the curve of the least
proportional server (EP 0.18, the upper edge) and the most
proportional one (EP 1.05, the lower edge).
"""

import pytest


def test_fig09_pencil_head(record, corpus):
    result = record("fig9")
    assert result.series["upper_ep"] == pytest.approx(0.18, abs=0.01)
    assert result.series["lower_ep"] == pytest.approx(1.05, abs=0.01)
    upper = result.series["upper"]
    lower = result.series["lower"]
    for server in corpus:
        loads, powers = server.curve()
        peak = powers[-1]
        for p, lo, hi in zip([x / peak for x in powers], lower, upper):
            assert lo - 1e-9 <= p <= hi + 1e-9
