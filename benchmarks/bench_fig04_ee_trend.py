"""Fig. 4: EE and peak-EE statistics trend.

Paper: average, median, and maximum efficiency rise monotonically with
hardware year; only the 2014 minimum dips (one tower outlier at 1469).
"""

import pytest


def test_fig04_ee_trend(record):
    result = record("fig4")
    years = result.series["years"]
    avg = result.series["avg_ee"]
    maximum = result.series["max_ee"]
    for a, b in zip(avg, avg[1:]):
        assert b > a * 0.97
    for a, b in zip(maximum, maximum[1:]):
        assert b >= a
    minimum = dict(zip(years, result.series["min_ee"]))
    assert minimum[2014] == pytest.approx(1469.0, rel=0.02)
    assert minimum[2014] < minimum[2013]
    # Peak EE always at or above overall EE.
    for peak, overall in zip(result.series["avg_peak_ee"], avg):
        assert peak >= overall
