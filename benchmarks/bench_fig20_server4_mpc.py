"""Fig. 20: server #4 (ThinkServer RD450) EE vs. memory and frequency.

Paper: best memory per core 2.67 GB; efficiency falls 4.6% at
8 GB/core and 11.1% at 16 GB/core.
"""

import pytest


def test_fig20_server4(record):
    result = record("fig20")
    assert result.series["best_memory_per_core"] == pytest.approx(2.67)
    cells = result.series["cells"]
    at_top = {k[0]: v["ee"] for k, v in cells.items() if k[1] == 2.4}
    drop_8 = at_top[8.0] / at_top[2.67] - 1.0
    drop_16 = at_top[16.0] / at_top[2.67] - 1.0
    assert -0.10 < drop_8 < 0.0
    assert drop_16 < drop_8
    assert drop_16 == pytest.approx(-0.111, abs=0.06)
