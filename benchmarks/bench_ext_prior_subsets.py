"""Extension (Sections I / VI): prior-work windows re-examined.

The paper's intro: "with newer results published, the derived models
and conclusions from previous work pose greater errors" -- citing the
EP-score correlation falling from 0.83 (Hsu & Poole's 2014 window) to
0.741 (all 477 valid results).  The drift must reproduce.
"""

import pytest

from repro.analysis.prior_subsets import ep_score_correlation_drift


def test_ext_prior_subsets(corpus, benchmark):
    drift = benchmark(ep_score_correlation_drift, corpus)
    assert drift.subset_value == pytest.approx(0.83, abs=0.06)
    assert drift.full_value == pytest.approx(0.741, abs=0.08)
    assert drift.drift < -0.04
