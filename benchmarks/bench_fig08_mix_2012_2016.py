"""Fig. 8: microarchitecture mix per year, 2012-2016.

Paper: Sandy Bridge generation dominates 2012; Ivy Bridge and Haswell
carry 2013-2014; Haswell/Broadwell/Skylake carry 2015-2016.
"""


def test_fig08_mix(record):
    result = record("fig8")
    mix = result.series
    assert set(mix) == {2012, 2013, 2014, 2015, 2016}
    assert mix[2012]["Sandy Bridge EP"] == 50
    assert mix[2012]["Sandy Bridge EN"] == 22
    assert mix[2016]["Haswell"] == 10
    assert "Netburst" not in mix[2012]
