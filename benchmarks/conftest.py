"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper artifact, times it with
pytest-benchmark, records the rendered rows under
``benchmarks/output/``, and asserts the paper's qualitative shape.
The engine benches additionally get a pre-warmed artifact cache
(``warm_cache``) to measure cold-vs-warm ``run_all`` behavior.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.cache import ArtifactCache
from repro.core.study import Study
from repro.dataset.synthesis import generate_corpus

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def corpus():
    return generate_corpus(seed=2016)


@pytest.fixture(scope="session")
def study(corpus):
    return Study(corpus=corpus)


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def warm_cache(study, tmp_path_factory):
    """An artifact cache pre-filled by one cold parallel run."""
    cache = ArtifactCache(tmp_path_factory.mktemp("repro_cache"))
    study.run_all(jobs=4, cache=cache)
    return cache


@pytest.fixture()
def record(study, benchmark, output_dir):
    """Benchmark one artifact and persist its rendered text."""

    def run(figure_id: str):
        result = benchmark(study.figure, figure_id)
        path = output_dir / f"{figure_id}.txt"
        path.write_text(f"== {result.title} ==\n{result.text}\n")
        return result

    return run
