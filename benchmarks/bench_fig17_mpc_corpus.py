"""Fig. 17: corpus EP/EE by memory-per-core configuration.

Paper: the best ratio is 1.5 GB/core for proportionality and
1.78 GB/core for efficiency; 0.67 GB/core is the worst of the
common configurations.
"""

import pytest


def test_fig17_mpc(record):
    result = record("fig17")
    best = result.series["best"]
    assert best["ep"] == pytest.approx(1.5)
    assert best["ee"] == pytest.approx(1.78)
    buckets = result.series["buckets"]
    assert buckets["0.67"]["avg_ep"] == min(b["avg_ep"] for b in buckets.values())
