"""Fig. 21: server #4 EE and peak power across frequency and memory.

Paper: power rises with CPU frequency at fixed memory, and with memory
at fixed frequency; ondemand consumes about the same as the top pin;
efficiency rises with frequency.
"""


def test_fig21_server4_power(record):
    result = record("fig21")
    for label, points in result.series["ee"].items():
        values = [v for _, v in points]
        assert values == sorted(values), label
    for label, points in result.series["peak_power"].items():
        values = [v for _, v in points]
        assert values == sorted(values), label
    # Power also rises with installed memory at the top frequency.
    top_power = {
        label: points[-1][1]
        for label, points in result.series["peak_power"].items()
    }
    ordered = [top_power[k] for k in sorted(top_power,
               key=lambda s: float(s.split("=")[1]))]
    assert ordered == sorted(ordered)
