"""Fig. 19: server #2 (Sugon I620-G10) EE vs. memory and frequency.

Paper: best memory per core 4 GB; efficiency drops 10.6% when memory
doubles to 8 GB/core.
"""

import pytest


def test_fig19_server2(record):
    result = record("fig19")
    assert result.series["best_memory_per_core"] == pytest.approx(4.0)
    cells = result.series["cells"]
    at_top = {k[0]: v["ee"] for k, v in cells.items() if k[1] == 1.8}
    drop = at_top[8.0] / at_top[4.0] - 1.0
    assert drop == pytest.approx(-0.106, abs=0.05)
