"""Harness fidelity: the discrete-event benchmark vs. the analytic path.

Not a paper artifact: validates that the two evaluation methods of the
sweep harness agree, and times a full simulated benchmark run.
"""

import pytest

from repro.hwexp.sweeps import run_sweep
from repro.hwexp.testbed import TESTBED
from repro.power.governors import OndemandGovernor
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.runner import SsjRunner


def test_simulated_run_matches_analytic_sweep(benchmark):
    server = TESTBED[4]
    mpc = 2.67
    analytic = run_sweep(
        server, memory_per_core=[mpc], frequencies=[2.4], include_ondemand=True
    )

    def simulated_run():
        runner = SsjRunner(
            server=server.power_model(server.memory_gb_for(mpc)),
            profile=server.profile_for(mpc),
            governor=OndemandGovernor(),
            plan=MeasurementPlan(interval_s=3.0, ramp_s=0.5),
        )
        return runner.run()

    report = benchmark(simulated_run)
    simulated_ee = report.overall_score()
    analytic_ee = analytic.cell(mpc, "ondemand").overall_efficiency
    assert simulated_ee == pytest.approx(analytic_ee, rel=0.10)
    assert 0.0 < report.energy_proportionality() < 2.0
