"""Section IV.B: EP/EE top-decile asynchrony.

Paper: 91.7% of the top-10% EP servers are 2012 hardware (vs. a 27.4%
population share); only 16.7% of the top-10% EE servers are; every
2015-2016 server makes the top-10% EE list; the EP and EE top deciles
overlap by only 14.6%.
"""


def test_asynchrony(record):
    result = record("asynchrony")
    report = result.series["report"]
    assert report.top_ep_share_2012 > 0.6
    assert report.ep_overrepresentation > 2.0
    assert report.top_ee_share_2012 < 0.3
    assert report.all_recent_in_top_ee
    assert report.overlap_fraction < 0.4
