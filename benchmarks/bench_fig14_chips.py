"""Fig. 14: single-node EP/EE vs. chip count.

Paper: 2-chip servers lead every statistic except the median EP (1-chip
wins, 0.67 vs 0.66); both metrics fall monotonically at 4 and 8 chips.
"""


def test_fig14_chips(record):
    result = record("fig14")
    stats = result.series
    assert sorted(stats) == [1, 2, 4, 8]
    assert stats[2]["avg_ep"] == max(s["avg_ep"] for s in stats.values())
    assert stats[2]["avg_ee"] == max(s["avg_ee"] for s in stats.values())
    assert stats[1]["median_ep"] > stats[2]["median_ep"]  # the exception
    assert stats[2]["avg_ep"] > stats[4]["avg_ep"] > stats[8]["avg_ep"]
    assert stats[2]["avg_ee"] > stats[4]["avg_ee"] > stats[8]["avg_ee"]
