"""Harness: generating the calibrated 477-server corpus.

Not a paper artifact: times the synthesis pipeline end to end and
checks the invariants cheap enough to assert on every round.
"""

from repro.dataset.synthesis import generate_corpus


def test_corpus_generation(benchmark):
    corpus = benchmark(generate_corpus, 2016)
    assert len(corpus) == 477
    eps = corpus.eps()
    assert 0.17 < min(eps) < 0.19
    assert 1.04 < max(eps) < 1.06
