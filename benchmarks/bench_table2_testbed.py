"""Table II: base configuration of the tested 2U servers."""


def test_table2(record):
    result = record("table2")
    rows = result.series["rows"]
    assert len(rows) == 4
    names = [row[1] for row in rows]
    assert names == ["Sugon A620r-G", "Sugon I620-G10",
                     "ThinkServer RD640", "ThinkServer RD450"]
    years = [row[2] for row in rows]
    assert years == [2012, 2013, 2014, 2015]
    cores = [row[4] for row in rows]
    assert cores == [32, 4, 12, 12]
