"""Ablation: configuration physics vs. cohort composition in the corpus.

DESIGN.md encodes Figs. 13-15/17 as per-configuration EP/EE
adjustments (nodes, chips, memory).  Regenerating with those zeroed
separates the two explanations: the 2-chip advantage disappears (it is
configuration physics in the corpus), while the yearly EP trend and
the codename ordering persist (they are cohort composition).
"""

import numpy as np
import pytest

from repro.dataset.synthesis import generate_corpus


def test_ablation_structural_effects(benchmark):
    ablated = benchmark(generate_corpus, 2016, False)

    # Fig. 14's 2-chip lead vanishes without the structural adjustments.
    single = ablated.single_node()
    avg = {
        chips: float(np.mean(single.by_chips(chips).eps()))
        for chips in single.chip_counts()
    }
    assert avg[1] > avg[2]  # the advantage inverts

    # Fig. 3's trend persists: it is cohort composition, not config.
    assert float(np.mean(ablated.by_hw_year(2012).eps())) == pytest.approx(
        0.82, abs=0.05
    )
    assert float(np.mean(ablated.by_hw_year(2008).eps())) == pytest.approx(
        0.37, abs=0.05
    )

    # Pinned exemplars are untouched by the ablation.
    eps = np.array(ablated.eps())
    assert eps.min() == pytest.approx(0.18, abs=0.01)
    assert eps.max() == pytest.approx(1.05, abs=0.01)
