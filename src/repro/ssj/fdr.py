"""FDR text parsing: the inverse of :meth:`BenchmarkReport.to_text`.

Published SPECpower results circulate as human-readable tables; being
able to parse them back closes the loop for users who archive runs as
text.  The parser accepts exactly the layout ``to_text`` produces and
round-trips the measured payload (throughputs, powers, active idle).
"""

from __future__ import annotations

import re
from typing import List

from repro.ssj.report import BenchmarkReport, LevelMeasurement

_ROW = re.compile(
    r"^\s*(?P<load>\d+)%\s*\|\s*(?P<ops>[\d.]+)\s*\|\s*(?P<power>[\d.]+)\s*\|"
)
_IDLE_ROW = re.compile(r"^\s*idle\s*\|\s*[\d.]+\s*\|\s*(?P<power>[\d.]+)\s*\|")


class FdrParseError(ValueError):
    """Raised when the text does not contain a parseable FDR table."""


def parse_fdr_text(text: str) -> BenchmarkReport:
    """Parse a ``BenchmarkReport.to_text()`` rendering back to a report.

    The parser is deliberately strict about the payload (every level row
    must parse; the idle row must exist) and deliberately lax about
    everything else (headers, separators, trailing summary lines).
    """
    levels: List[LevelMeasurement] = []
    idle_power = None
    for line in text.splitlines():
        row = _ROW.match(line)
        if row:
            load = int(row.group("load")) / 100.0
            ops = float(row.group("ops"))
            power = float(row.group("power"))
            levels.append(
                LevelMeasurement(
                    target_load=load,
                    throughput_ops_per_s=ops,
                    average_power_w=power,
                    utilization=load,
                )
            )
            continue
        idle = _IDLE_ROW.match(line)
        if idle:
            idle_power = float(idle.group("power"))
    if not levels:
        raise FdrParseError("no measured load-level rows found")
    if idle_power is None:
        raise FdrParseError("no active-idle row found")
    loads = [level.target_load for level in levels]
    if len(set(loads)) != len(loads):
        raise FdrParseError("duplicate load levels in the table")
    calibrated = max(
        level.throughput_ops_per_s / level.target_load for level in levels
    )
    return BenchmarkReport(
        calibrated_max_ops_per_s=calibrated,
        levels=levels,
        active_idle_power_w=idle_power,
        governor_name="parsed",
        metadata={"source": "fdr-text"},
    )
