"""Simulated external power analyzer.

SPECpower requires an accepted power analyzer sampling wall power at
one-second granularity; the reported per-level figure is the mean of
the interval's samples.  The simulated meter samples the server model's
wall power at a fixed cadence, applies the analyzer's gaussian reading
noise, and reports the interval mean -- the same estimator the real
rig uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np


@dataclass
class PowerMeter:
    """Sampling wall-power meter.

    Parameters
    ----------
    rng:
        Source of the analyzer's reading noise.
    sample_period_s:
        Sampling cadence (1 s on real rigs).
    noise_fraction:
        One-sigma relative reading error per sample (accepted analyzers
        are within ~1%).
    """

    rng: np.random.Generator
    sample_period_s: float = 1.0
    noise_fraction: float = 0.005

    def __post_init__(self):
        if self.sample_period_s <= 0.0:
            raise ValueError("sample period must be positive")
        if self.noise_fraction < 0.0:
            raise ValueError("noise fraction cannot be negative")

    def measure(
        self,
        wall_power_w: Callable[[float], float],
        start_s: float,
        end_s: float,
    ) -> float:
        """Mean of noisy samples of ``wall_power_w(t)`` over [start, end).

        At least one sample is always taken (at the interval start), so
        short windows still produce a reading.
        """
        if end_s <= start_s:
            raise ValueError("measurement window must have positive length")
        samples: List[float] = []
        t = start_s
        while t < end_s:
            true_power = wall_power_w(t)
            if true_power < 0.0:
                raise ValueError("wall power cannot be negative")
            noise = 1.0 + float(self.rng.normal(0.0, self.noise_fraction))
            samples.append(true_power * max(noise, 0.0))
            t += self.sample_period_s
        return float(np.mean(samples))
