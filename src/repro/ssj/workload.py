"""Open-loop Poisson transaction source.

At every target load below 100%, ssj2008 schedules transaction batches
at randomized arrival times so that the *offered* rate equals the
target fraction of the calibrated maximum; the exponential
inter-arrival spacing is what produces the partially idle intervals a
server's low-utilization power behaviour is measured under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.ssj.transactions import SSJ_MIX, TransactionType, validate_mix


@dataclass
class TransactionSource:
    """Generates (arrival_time, transaction_type) pairs.

    Parameters
    ----------
    rate_per_s:
        Offered transaction rate (mix total), transactions per second.
    rng:
        Numpy random generator; the source consumes it deterministically.
    mix:
        Transaction mix; defaults to :data:`~repro.ssj.transactions.SSJ_MIX`.
    """

    rate_per_s: float
    rng: np.random.Generator
    mix: Sequence[TransactionType] = SSJ_MIX

    def __post_init__(self):
        if self.rate_per_s <= 0.0:
            raise ValueError("arrival rate must be positive")
        self.mix = validate_mix(self.mix)
        self._weights = np.array([t.mix_weight for t in self.mix])

    def arrivals(self, horizon_s: float) -> Iterator[Tuple[float, TransactionType]]:
        """Yield arrivals with exponential spacing until the horizon."""
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        clock = 0.0
        mix = tuple(self.mix)
        while True:
            clock += float(self.rng.exponential(1.0 / self.rate_per_s))
            if clock >= horizon_s:
                return
            index = int(self.rng.choice(len(mix), p=self._weights))
            yield clock, mix[index]

    def expected_count(self, horizon_s: float) -> float:
        """Expected number of arrivals over the horizon."""
        return self.rate_per_s * horizon_s
