"""Open-loop Poisson transaction source.

At every target load below 100%, ssj2008 schedules transaction batches
at randomized arrival times so that the *offered* rate equals the
target fraction of the calibrated maximum; the exponential
inter-arrival spacing is what produces the partially idle intervals a
server's low-utilization power behaviour is measured under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.ssj.transactions import SSJ_MIX, TransactionType, validate_mix


@dataclass
class TransactionSource:
    """Generates (arrival_time, transaction_type) pairs.

    Parameters
    ----------
    rate_per_s:
        Offered transaction rate (mix total), transactions per second.
    rng:
        Numpy random generator; the source consumes it deterministically.
    mix:
        Transaction mix; defaults to :data:`~repro.ssj.transactions.SSJ_MIX`.
    """

    rate_per_s: float
    rng: np.random.Generator
    mix: Sequence[TransactionType] = SSJ_MIX

    def __post_init__(self):
        if self.rate_per_s <= 0.0:
            raise ValueError("arrival rate must be positive")
        self.mix = validate_mix(self.mix)
        self._weights = np.array([t.mix_weight for t in self.mix])
        self._work_factors = np.array([t.work_factor for t in self.mix])

    def arrivals(self, horizon_s: float) -> Iterator[Tuple[float, TransactionType]]:
        """Yield arrivals with exponential spacing until the horizon."""
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        clock = 0.0
        mix = tuple(self.mix)
        while True:
            clock += float(self.rng.exponential(1.0 / self.rate_per_s))
            if clock >= horizon_s:
                return
            index = int(self.rng.choice(len(mix), p=self._weights))
            yield clock, mix[index]

    def arrival_arrays(self, horizon_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """Whole-horizon arrivals as arrays: (offsets, work factors).

        Gap draws come in chunked array passes -- exponential spacings
        are cumulative-summed until the horizon is crossed -- and one
        categorical draw assigns every arrival its transaction type, so
        the cost per window is a couple of RNG calls instead of two
        scalar draws per transaction.  The generator is consumed in a
        different order than :meth:`arrivals` (which interleaves a gap
        and a type draw per arrival), so the two methods give different
        -- but each fully deterministic -- sample paths from the same
        generator state.
        """
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        mean = 1.0 / self.rate_per_s
        expected = self.rate_per_s * horizon_s
        chunk = max(16, int(expected * 1.2) + 4)
        parts: List[np.ndarray] = []
        base = 0.0
        while True:
            times = base + np.cumsum(self.rng.exponential(mean, size=chunk))
            cut = int(np.searchsorted(times, horizon_s, side="left"))
            if cut < chunk:
                parts.append(times[:cut])
                break
            parts.append(times)
            base = float(times[-1])
            chunk = max(16, chunk // 4)
        offsets = parts[0] if len(parts) == 1 else np.concatenate(parts)
        if offsets.size == 0:
            return offsets, offsets
        indices = self.rng.choice(len(self.mix), size=offsets.size, p=self._weights)
        return offsets, self._work_factors[indices]

    def expected_count(self, horizon_s: float) -> float:
        """Expected number of arrivals over the horizon."""
        return self.rate_per_s * horizon_s
