"""The benchmark director: calibrate, descend the loads, report.

:class:`SsjRunner` plays the role of ssj2008's control-and-collect
system: it calibrates the server, then for each target load drives the
service engine with a Poisson transaction stream at the corresponding
fraction of the calibrated maximum while the governor resamples the
CPU frequency and the power meter integrates wall power, and finally
measures active idle.  The output is a :class:`BenchmarkReport` whose
payload matches a published FDR's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.power.governors import Governor, PerformanceGovernor
from repro.power.server import ServerPowerModel
from repro.ssj.calibration import calibrate
from repro.ssj.engine import BatchServiceEngine, OPS_PER_UNIT_WORK, ThroughputProfile
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.power_meter import PowerMeter
from repro.ssj.report import BenchmarkReport, LevelMeasurement
from repro.ssj.transactions import SSJ_MIX, TransactionType, validate_mix
from repro.ssj.workload import TransactionSource


@dataclass
class SsjRunner:
    """One benchmark rig: a server, a governor, and a measurement plan.

    ``mix`` selects the transaction workload; it defaults to the stock
    SSJ mix, and :mod:`repro.ssj.variants` provides alternatives.
    """

    server: ServerPowerModel
    profile: ThroughputProfile
    governor: Governor = field(default_factory=PerformanceGovernor)
    plan: MeasurementPlan = field(default_factory=MeasurementPlan)
    seed: int = 2016
    mix: Sequence[TransactionType] = SSJ_MIX

    def __post_init__(self):
        self.mix = validate_mix(self.mix)

    def run(self) -> BenchmarkReport:
        """Execute the full benchmark and return the report.

        Each phase draws from its own seed-derived substream --
        calibration, every load level, and the idle meter get distinct
        ``(seed, phase, level)`` generators.  Runs differing only in
        governor or plan therefore share each level's stochastic inputs
        (common random numbers, the standard discrete-event variance
        reduction for comparing configurations), and a level's sample
        path no longer depends on the plan's order or length.
        """
        cores = self.server.total_cores
        cpu = self.server.cpus[0]

        calibration = calibrate(
            cores=cores,
            profile=self.profile,
            frequency_ghz=cpu.max_frequency_ghz,
            rng=np.random.default_rng((self.seed, 0, 0)),
            mix=self.mix,
        )
        max_ops = calibration.max_ops_per_s

        levels: List[LevelMeasurement] = []
        for index, target in enumerate(self.plan.target_loads):
            level_rng = np.random.default_rng((self.seed, 1, index))
            levels.append(self._measure_level(target, max_ops, level_rng))

        idle_frequency = self.governor.select_frequency(cpu, 0.0)
        meter = PowerMeter(rng=np.random.default_rng((self.seed, 2, 0)))
        idle_power = meter.measure(
            lambda _t: self.server.wall_power_w(0.0, idle_frequency),
            0.0,
            self.plan.interval_s,
        )

        return BenchmarkReport(
            calibrated_max_ops_per_s=max_ops,
            levels=levels,
            active_idle_power_w=idle_power,
            governor_name=self.governor.name,
            metadata={
                "cores": cores,
                "analytic_max_ops_per_s": calibration.analytic_max_ops_per_s,
                "plan_interval_s": self.plan.interval_s,
            },
        )

    def _measure_level(
        self, target: float, max_ops_per_s: float, rng: np.random.Generator
    ) -> LevelMeasurement:
        """Drive one target load and measure throughput and power."""
        cores = self.server.total_cores
        cpu = self.server.cpus[0]
        engine = BatchServiceEngine(cores=cores, profile=self.profile, rng=rng)
        tx_rate = target * max_ops_per_s / OPS_PER_UNIT_WORK
        source = TransactionSource(rate_per_s=tx_rate, rng=rng, mix=self.mix)

        total_span = self.plan.ramp_s + self.plan.interval_s
        period = self.plan.governor_period_s

        # Piecewise-constant wall power per governor window, collected
        # so the meter can integrate the measured interval.
        window_edges: List[float] = []
        window_power: List[float] = []

        load_estimate = target  # governor's first sample predicts the target
        measured = None
        clock = 0.0
        while clock < total_span - 1e-9:
            window_end = min(clock + period, total_span)
            frequency = self.governor.select_frequency(cpu, load_estimate)
            offsets, factors = source.arrival_arrays(window_end - clock)
            result = engine.advance(clock + offsets, factors, window_end, frequency)
            load_estimate = engine.recent_load(result)
            window_edges.append(window_end)
            window_power.append(
                self.server.wall_power_w(min(result.utilization, 1.0), frequency)
            )
            in_measurement = clock >= self.plan.ramp_s - 1e-9
            if in_measurement:
                measured = result if measured is None else measured.merge(result)
            clock = window_end

        if measured is None:
            raise RuntimeError("measurement plan produced no measured windows")

        def wall_power_at(t: float) -> float:
            for edge, power in zip(window_edges, window_power):
                if t < edge:
                    return power
            return window_power[-1]

        meter = PowerMeter(rng=rng)
        average_power = meter.measure(wall_power_at, self.plan.ramp_s, total_span)

        return LevelMeasurement(
            target_load=target,
            throughput_ops_per_s=measured.throughput_ops_per_s,
            average_power_w=average_power,
            utilization=min(measured.utilization, 1.0),
        )
