"""A SPECpower_ssj2008-style benchmark simulator.

SPECpower_ssj2008 (Section II.A of the paper) drives a server-side
Java transaction workload through a graduated series of target loads --
calibrated maximum first, then 100% down to 10% in ten steps, then
active idle -- while an external power analyzer records wall power.
The published FDR (full disclosure report) contains, per level, the
achieved throughput (ssj_ops) and average power, from which every
metric in the paper derives.

This package reproduces that measurement *protocol* against the
component power models of :mod:`repro.power`:

* :mod:`repro.ssj.transactions` -- the six-transaction workload mix;
* :mod:`repro.ssj.workload` -- Poisson open-loop transaction source;
* :mod:`repro.ssj.engine` -- the discrete-event multi-core service
  simulation;
* :mod:`repro.ssj.calibration` -- saturation run locating the 100%
  throughput target;
* :mod:`repro.ssj.load_levels` -- the measurement plan (target loads,
  interval lengths);
* :mod:`repro.ssj.power_meter` -- sampled wall-power integration with
  analyzer noise;
* :mod:`repro.ssj.report` -- FDR-style result records;
* :mod:`repro.ssj.runner` -- the director tying it all together.
"""

from repro.ssj.calibration import calibrate
from repro.ssj.engine import EngineResult, ServiceEngine
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.power_meter import PowerMeter
from repro.ssj.report import BenchmarkReport, LevelMeasurement
from repro.ssj.multinode import MultiNodeRunner, aggregate_reports
from repro.ssj.runner import SsjRunner
from repro.ssj.transactions import SSJ_MIX, TransactionType
from repro.ssj.variants import VARIANTS, WorkloadVariant, get_variant
from repro.ssj.workload import TransactionSource

__all__ = [
    "BenchmarkReport",
    "EngineResult",
    "LevelMeasurement",
    "MeasurementPlan",
    "MultiNodeRunner",
    "PowerMeter",
    "SSJ_MIX",
    "VARIANTS",
    "ServiceEngine",
    "SsjRunner",
    "TransactionSource",
    "TransactionType",
    "WorkloadVariant",
    "aggregate_reports",
    "calibrate",
    "get_variant",
]
