"""Multi-node benchmark runs: one SUT, several identical nodes.

SPECpower supports multi-node systems under test: every node runs the
same workload and the FDR reports *aggregate* throughput against
*aggregate* power.  74 of the paper's 477 results are such systems
(Section III.E).  :class:`MultiNodeRunner` reproduces the protocol:
each node executes the full graduated-load run (its own arrival stream,
its own metering noise), and the per-level measurements sum across
nodes -- which is exactly why multi-node EP tends to beat the single
node's: per-node noise and idle overheads average while the dynamic
range adds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.power.governors import Governor, PerformanceGovernor
from repro.power.server import ServerPowerModel
from repro.ssj.engine import ThroughputProfile
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.report import BenchmarkReport, LevelMeasurement
from repro.ssj.runner import SsjRunner


def aggregate_reports(reports: List[BenchmarkReport]) -> BenchmarkReport:
    """Combine per-node reports into one SUT-level FDR.

    Throughput and power sum per level; the calibrated maximum sums;
    every node must have measured the same target loads.
    """
    if not reports:
        raise ValueError("no node reports to aggregate")
    reference_loads = sorted(level.target_load for level in reports[0].levels)
    for report in reports[1:]:
        if sorted(level.target_load for level in report.levels) != reference_loads:
            raise ValueError("node reports measured different target loads")

    levels: List[LevelMeasurement] = []
    for load in reference_loads:
        per_node = [
            next(l for l in report.levels if l.target_load == load)
            for report in reports
        ]
        levels.append(
            LevelMeasurement(
                target_load=load,
                throughput_ops_per_s=sum(l.throughput_ops_per_s for l in per_node),
                average_power_w=sum(l.average_power_w for l in per_node),
                utilization=sum(l.utilization for l in per_node) / len(per_node),
            )
        )
    return BenchmarkReport(
        calibrated_max_ops_per_s=sum(r.calibrated_max_ops_per_s for r in reports),
        levels=levels,
        active_idle_power_w=sum(r.active_idle_power_w for r in reports),
        governor_name=reports[0].governor_name,
        metadata={
            "nodes": len(reports),
            "per_node_scores": [r.overall_score() for r in reports],
        },
    )


@dataclass
class MultiNodeRunner:
    """Benchmark a SUT of ``nodes`` identical servers."""

    server: ServerPowerModel
    profile: ThroughputProfile
    nodes: int
    governor: Governor = field(default_factory=PerformanceGovernor)
    plan: MeasurementPlan = field(default_factory=MeasurementPlan)
    seed: int = 2016

    def __post_init__(self):
        if self.nodes <= 0:
            raise ValueError("node count must be positive")

    def run(self) -> BenchmarkReport:
        """Run every node (independent streams) and aggregate."""
        reports = [
            SsjRunner(
                server=self.server,
                profile=self.profile,
                governor=self.governor,
                plan=self.plan,
                seed=self.seed + node,
            ).run()
            for node in range(self.nodes)
        ]
        return aggregate_reports(reports)
