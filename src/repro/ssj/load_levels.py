"""The graduated measurement plan.

A compliant ssj2008 run measures the calibrated maximum, then ten
graduated target loads from 100% down to 10% in 10-point steps, then
active idle, each over a fixed interval with ramp (pre-measurement)
seconds discarded.  The plan object keeps those knobs in one place;
the simulator defaults to shorter intervals than the real benchmark's
240 s purely for run-time economy -- the protocol is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.metrics.ep import TARGET_LOADS_DESCENDING


@dataclass(frozen=True)
class MeasurementPlan:
    """Target loads and interval timing of one benchmark run.

    Parameters
    ----------
    target_loads:
        Load fractions measured, in run order (descending by default,
        as the real benchmark schedules them).
    interval_s:
        Measured seconds per level.
    ramp_s:
        Settle seconds discarded before each measured interval.
    governor_period_s:
        How often the frequency governor resamples load during a level.
    """

    target_loads: Tuple[float, ...] = TARGET_LOADS_DESCENDING
    interval_s: float = 8.0
    ramp_s: float = 1.0
    governor_period_s: float = 0.5

    def __post_init__(self):
        if not self.target_loads:
            raise ValueError("a measurement plan needs at least one target load")
        for load in self.target_loads:
            if not 0.0 < load <= 1.0:
                raise ValueError("target loads must lie in (0, 1]")
        if self.interval_s <= 0.0 or self.ramp_s < 0.0:
            raise ValueError("interval timing must be positive")
        if self.governor_period_s <= 0.0 or self.governor_period_s > self.interval_s:
            raise ValueError("governor period must fit inside the interval")

    @property
    def levels(self) -> int:
        return len(self.target_loads)

    def with_intervals(
        self, interval_s: float, ramp_s: Optional[float] = None
    ) -> "MeasurementPlan":
        """Copy of the plan with different interval timing."""
        return MeasurementPlan(
            target_loads=self.target_loads,
            interval_s=interval_s,
            ramp_s=self.ramp_s if ramp_s is None else ramp_s,
            governor_period_s=min(self.governor_period_s, interval_s),
        )


#: Interval lengths of the real benchmark, for users who want fidelity
#: over speed.
FULL_FIDELITY_PLAN = MeasurementPlan(interval_s=240.0, ramp_s=30.0)
