"""FDR-style benchmark result records.

A published SPECpower result discloses, per measured level, the target
load, the achieved throughput in ssj_ops, and the average power; the
overall score is the ratio of summed throughput to summed power
(active idle included in the denominator).  The report objects here
carry exactly that payload and derive the paper's metrics from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.metrics.ee import (
    overall_score,
    peak_efficiency,
    peak_efficiency_spots,
)
from repro.metrics.ep import energy_proportionality, idle_power_fraction


@dataclass(frozen=True)
class LevelMeasurement:
    """One measured load level of a benchmark run."""

    target_load: float
    throughput_ops_per_s: float
    average_power_w: float
    utilization: float

    def __post_init__(self):
        if not 0.0 <= self.target_load <= 1.0:
            raise ValueError("target load must lie in [0, 1]")
        if self.throughput_ops_per_s < 0.0:
            raise ValueError("throughput cannot be negative")
        if self.average_power_w <= 0.0:
            raise ValueError("average power must be positive")
        if not 0.0 <= self.utilization <= 1.0 + 1e-9:
            raise ValueError("utilization must lie in [0, 1]")

    @property
    def efficiency(self) -> float:
        """Performance-to-power ratio of this level (ssj_ops per watt)."""
        return self.throughput_ops_per_s / self.average_power_w


@dataclass
class BenchmarkReport:
    """A complete simulated run: calibrated max, levels, active idle."""

    calibrated_max_ops_per_s: float
    levels: List[LevelMeasurement]
    active_idle_power_w: float
    governor_name: str = "performance"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.calibrated_max_ops_per_s <= 0.0:
            raise ValueError("calibrated maximum must be positive")
        if not self.levels:
            raise ValueError("a report needs at least one measured level")
        if self.active_idle_power_w <= 0.0:
            raise ValueError("active idle power must be positive")

    # -- raw series ----------------------------------------------------------

    def target_loads(self) -> List[float]:
        """Measured target loads, run order."""
        return [level.target_load for level in self.levels]

    def throughputs(self) -> List[float]:
        """Per-level throughput, run order."""
        return [level.throughput_ops_per_s for level in self.levels]

    def powers(self) -> List[float]:
        """Per-level average power, run order."""
        return [level.average_power_w for level in self.levels]

    def curve(self) -> tuple:
        """(utilization, power) series including the active-idle point."""
        loads = [0.0] + sorted(self.target_loads())
        by_load = {level.target_load: level for level in self.levels}
        powers = [self.active_idle_power_w] + [
            by_load[load].average_power_w for load in sorted(by_load)
        ]
        return loads, powers

    # -- paper metrics ---------------------------------------------------------

    def overall_score(self) -> float:
        """Server overall energy efficiency (the SPECpower score)."""
        return overall_score(self.throughputs(), self.powers(), self.active_idle_power_w)

    def energy_proportionality(self) -> float:
        """EP (Eq. 1) of the run's power-utilization curve."""
        loads, powers = self.curve()
        return energy_proportionality(loads, powers)

    def idle_power_fraction(self) -> float:
        """Active-idle power normalized to the 100%-load reading."""
        loads, powers = self.curve()
        return idle_power_fraction(loads, powers)

    def peak_efficiency(self) -> float:
        """Best per-level performance-to-power ratio."""
        return peak_efficiency(self.throughputs(), self.powers())

    def peak_efficiency_spots(self, rtol: float = 1e-3) -> List[float]:
        """Utilization level(s) where efficiency peaks."""
        return peak_efficiency_spots(
            self.target_loads(), self.throughputs(), self.powers(), rtol=rtol
        )

    # -- presentation ----------------------------------------------------------

    def to_text(self) -> str:
        """Render the run in the familiar FDR table layout."""
        lines = [
            "Target Load | ssj_ops/s | Avg Power (W) | ops/W",
            "------------+-----------+---------------+--------",
        ]
        for level in sorted(self.levels, key=lambda l: -l.target_load):
            lines.append(
                f"{level.target_load:>10.0%} | {level.throughput_ops_per_s:>9.0f} "
                f"| {level.average_power_w:>13.1f} | {level.efficiency:>6.1f}"
            )
        lines.append(
            f"{'idle':>11} | {0:>9.0f} | {self.active_idle_power_w:>13.1f} | {'--':>6}"
        )
        lines.append("")
        lines.append(f"overall score (sum ops / sum power): {self.overall_score():.1f}")
        lines.append(f"energy proportionality (Eq. 1):      {self.energy_proportionality():.3f}")
        return "\n".join(lines)
