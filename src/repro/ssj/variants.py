"""Workload variants beyond the stock SSJ mix (the paper's future work).

Section VII: "we plan to do more experiments to characterize the
energy proportionality and energy efficiency variations on typical
industrial servers under different workloads".  A workload variant is
a transaction mix plus a memory-intensity coefficient (how strongly
DRAM activity tracks compute load) and a compute-boundedness
coefficient (how much of the work scales with core frequency); both
feed the existing power and throughput models, so the same simulated
server exhibits *different* EP/EE curves under different workloads --
the effect the paper's Section V.C caveat anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.ssj.transactions import SSJ_MIX, TransactionType, validate_mix


@dataclass(frozen=True)
class WorkloadVariant:
    """One named workload personality.

    Parameters
    ----------
    name:
        Identifier (``ssj``, ``web``, ``batch``, ...).
    mix:
        Transaction mix driving the service engine.
    memory_intensity:
        How strongly memory access intensity tracks compute utilization
        (the :class:`~repro.power.server.ServerPowerModel` coefficient).
    compute_fraction:
        Share of per-transaction work that scales with core frequency
        (the :class:`~repro.hwexp.perf_model.ServerThroughputProfile`
        coefficient).
    """

    name: str
    mix: Tuple[TransactionType, ...]
    memory_intensity: float
    compute_fraction: float

    def __post_init__(self):
        validate_mix(self.mix)
        if not 0.0 <= self.memory_intensity <= 1.0:
            raise ValueError("memory intensity must lie in [0, 1]")
        if not 0.0 < self.compute_fraction <= 1.0:
            raise ValueError("compute fraction must lie in (0, 1]")


def _mix(*entries: Tuple[str, float, float]) -> Tuple[TransactionType, ...]:
    return tuple(
        TransactionType(name, weight, work) for name, weight, work in entries
    )


#: The stock transactional workload the benchmark models.
SSJ = WorkloadVariant(
    name="ssj",
    mix=SSJ_MIX,
    memory_intensity=0.7,
    compute_fraction=0.8,
)

#: Web serving: many small, cache-friendly requests with a long tail of
#: heavier page builds; lightly memory bound, strongly compute bound.
WEB = WorkloadVariant(
    name="web",
    mix=_mix(
        ("StaticHit", 0.55, 0.25),
        ("DynamicPage", 0.25, 1.0),
        ("ApiCall", 0.12, 0.7),
        ("Search", 0.05, 2.2),
        ("Upload", 0.03, 3.0),
    ),
    memory_intensity=0.45,
    compute_fraction=0.9,
)

#: Analytics/batch: few, very heavy scans; memory bandwidth bound.
BATCH = WorkloadVariant(
    name="batch",
    mix=_mix(
        ("Scan", 0.5, 1.6),
        ("Join", 0.2, 2.4),
        ("Aggregate", 0.2, 1.0),
        ("Load", 0.1, 0.6),
    ),
    memory_intensity=0.95,
    compute_fraction=0.55,
)

#: Key-value caching: tiny uniform operations, almost pure memory.
CACHE = WorkloadVariant(
    name="cache",
    mix=_mix(
        ("Get", 0.8, 0.3),
        ("Set", 0.15, 0.5),
        ("Evict", 0.05, 0.8),
    ),
    memory_intensity=0.9,
    compute_fraction=0.65,
)

VARIANTS: Dict[str, WorkloadVariant] = {
    variant.name: variant for variant in (SSJ, WEB, BATCH, CACHE)
}


def get_variant(name: str) -> WorkloadVariant:
    """Look up a workload variant by name."""
    try:
        return VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(VARIANTS)}"
        ) from None
