"""Calibration: locating the server's 100% throughput target.

ssj2008 opens with calibration intervals that drive the system flat out
and take the sustained throughput as the 100% reference; every later
target load is a fraction of it.  The simulated calibration saturates
the service engine (offered load well beyond capacity, bounded queue)
and measures the completion rate, exactly as the real phase does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ssj.engine import OPS_PER_UNIT_WORK, BatchServiceEngine, ThroughputProfile
from repro.ssj.transactions import SSJ_MIX, TransactionType
from repro.ssj.workload import TransactionSource


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the calibration phase."""

    max_ops_per_s: float
    analytic_max_ops_per_s: float
    measured_intervals: int


def analytic_max_ops_per_s(
    cores: int, profile: ThroughputProfile, frequency_ghz: float
) -> float:
    """Work-conserving capacity: every core retiring ops at full rate."""
    if cores <= 0:
        raise ValueError("core count must be positive")
    return cores * profile.ops_per_second_per_core(frequency_ghz)


def calibrate(
    cores: int,
    profile: ThroughputProfile,
    frequency_ghz: float,
    rng: np.random.Generator,
    interval_s: float = 5.0,
    intervals: int = 2,
    mix: "Sequence[TransactionType]" = SSJ_MIX,
) -> CalibrationResult:
    """Measure sustained saturated throughput with the service engine.

    The offered rate is set 60% above analytic capacity with a bounded
    queue, so cores never starve; the mean completion rate over the
    measured intervals is the calibrated maximum.
    """
    if interval_s <= 0.0 or intervals <= 0:
        raise ValueError("calibration needs positive interval settings")
    analytic = analytic_max_ops_per_s(cores, profile, frequency_ghz)
    engine = BatchServiceEngine(
        cores=cores, profile=profile, rng=rng, queue_capacity=4 * cores
    )
    # Offered transaction rate: ops rate / mean ops per transaction.
    offered_tx_rate = 1.6 * analytic / OPS_PER_UNIT_WORK
    source = TransactionSource(rate_per_s=offered_tx_rate, rng=rng, mix=mix)

    rates = []
    horizon = 0.0
    for index in range(intervals + 1):  # first interval is warm-up
        horizon += interval_s
        offsets, factors = source.arrival_arrays(horizon - engine.clock)
        result = engine.advance(
            engine.clock + offsets, factors, horizon, frequency_ghz
        )
        if index > 0:
            rates.append(result.throughput_ops_per_s)
    return CalibrationResult(
        max_ops_per_s=float(np.mean(rates)),
        analytic_max_ops_per_s=analytic,
        measured_intervals=intervals,
    )
