"""Discrete-event multi-core service engine.

The engine is a c-server FIFO queue (one server per hardware core)
processing the transaction stream: arrivals join the queue, an idle
core picks up the head-of-line transaction, holds it for an
exponentially distributed service time whose mean follows the
transaction's work factor and the current CPU frequency, and retires
its ssj_ops on completion.  The engine advances in *windows* so the
frequency governor can resample between windows; service times are
drawn at dispatch using the frequency then in force.

Busy time is integrated exactly: between any two consecutive events the
number of busy cores is constant, so the integral of busy cores over
time accumulates in closed form at every event edge.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Protocol, Tuple

import numpy as np

from repro.ssj.transactions import TransactionType

#: ssj_ops retired by a unit-work transaction.
OPS_PER_UNIT_WORK = 100.0


class ThroughputProfile(Protocol):
    """Performance side of a server: how fast one core retires work."""

    def ops_per_second_per_core(self, frequency_ghz: float) -> float:
        """Sustained ssj_ops/s of one core at the given frequency."""
        ...


@dataclass(frozen=True)
class LinearThroughputProfile:
    """Throughput proportional to frequency -- the simplest profile.

    ``ops_at_1ghz`` is the per-core rate at 1 GHz.  Real servers scale
    sublinearly with frequency (memory-bound cycles do not speed up);
    :mod:`repro.hwexp.perf_model` provides that richer profile.
    """

    ops_at_1ghz: float

    def ops_per_second_per_core(self, frequency_ghz: float) -> float:
        """Per-core rate, proportional to the clock."""
        if frequency_ghz <= 0.0:
            raise ValueError("frequency must be positive")
        return self.ops_at_1ghz * frequency_ghz


@dataclass
class EngineResult:
    """Aggregate statistics of one simulated window."""

    duration_s: float
    cores: int = 1
    completed_transactions: int = 0
    completed_ops: float = 0.0
    busy_core_seconds: float = 0.0

    @property
    def throughput_ops_per_s(self) -> float:
        return self.completed_ops / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def utilization(self) -> float:
        denominator = self.cores * self.duration_s
        return self.busy_core_seconds / denominator if denominator > 0 else 0.0

    def merge(self, other: "EngineResult") -> "EngineResult":
        """Combine two consecutive windows of the same engine."""
        if other.cores != self.cores:
            raise ValueError("cannot merge results from different core counts")
        return EngineResult(
            duration_s=self.duration_s + other.duration_s,
            cores=self.cores,
            completed_transactions=self.completed_transactions
            + other.completed_transactions,
            completed_ops=self.completed_ops + other.completed_ops,
            busy_core_seconds=self.busy_core_seconds + other.busy_core_seconds,
        )


@dataclass(order=True)
class _InService:
    departure_time: float
    sequence: int
    ops: float = field(compare=False)


@dataclass
class ServiceEngine:
    """Stateful c-server FIFO queue, advanced window by window."""

    cores: int
    profile: ThroughputProfile
    rng: np.random.Generator
    queue_capacity: Optional[int] = None

    _clock: float = field(default=0.0, init=False, repr=False)
    _queue: Deque[TransactionType] = field(default_factory=deque, init=False, repr=False)
    _in_service: List[_InService] = field(default_factory=list, init=False, repr=False)
    _sequence: int = field(default=0, init=False, repr=False)
    _dropped: int = field(default=0, init=False, repr=False)
    _busy_integral: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self):
        if self.cores <= 0:
            raise ValueError("core count must be positive")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ValueError("queue capacity cannot be negative")

    @property
    def clock(self) -> float:
        return self._clock

    @property
    def pending(self) -> int:
        """Transactions queued or in service right now."""
        return len(self._queue) + len(self._in_service)

    @property
    def dropped(self) -> int:
        return self._dropped

    def _tick(self, now: float) -> None:
        """Advance the clock, integrating busy cores over the gap."""
        if now < self._clock:
            raise ValueError("engine clock cannot move backwards")
        self._busy_integral += len(self._in_service) * (now - self._clock)
        self._clock = now

    def _service_time(
        self, transaction: TransactionType, frequency_ghz: float
    ) -> Tuple[float, float]:
        """Draw a service time; returns (seconds, ops retired)."""
        rate = self.profile.ops_per_second_per_core(frequency_ghz)
        if rate <= 0.0:
            raise ValueError("throughput profile returned a non-positive rate")
        ops = transaction.work_factor * OPS_PER_UNIT_WORK
        mean_seconds = ops / rate
        return float(self.rng.exponential(mean_seconds)), ops

    def _dispatch(
        self, transaction: TransactionType, now: float, frequency_ghz: float
    ) -> None:
        seconds, ops = self._service_time(transaction, frequency_ghz)
        self._sequence += 1
        heapq.heappush(
            self._in_service,
            _InService(departure_time=now + seconds, sequence=self._sequence, ops=ops),
        )

    def _drain_departures(
        self, until: float, frequency_ghz: float, result: EngineResult
    ) -> None:
        """Retire every in-service transaction departing by ``until``."""
        while self._in_service and self._in_service[0].departure_time <= until:
            job = self._in_service[0]
            self._tick(job.departure_time)
            heapq.heappop(self._in_service)
            result.completed_transactions += 1
            result.completed_ops += job.ops
            if self._queue:
                self._dispatch(self._queue.popleft(), job.departure_time, frequency_ghz)

    def advance(
        self,
        arrivals: Iterable[Tuple[float, TransactionType]],
        until: float,
        frequency_ghz: float,
    ) -> EngineResult:
        """Simulate up to time ``until`` with the given CPU frequency.

        ``arrivals`` must yield (absolute_time, transaction) pairs with
        non-decreasing times inside [clock, until].
        """
        if until < self._clock:
            raise ValueError("cannot advance backwards in time")
        window_start = self._clock
        busy_at_start = self._busy_integral
        result = EngineResult(duration_s=until - window_start, cores=self.cores)

        for arrival_time, transaction in arrivals:
            if arrival_time < window_start or arrival_time > until:
                raise ValueError("arrival outside the advancing window")
            self._drain_departures(arrival_time, frequency_ghz, result)
            self._tick(arrival_time)
            if len(self._in_service) < self.cores:
                self._dispatch(transaction, arrival_time, frequency_ghz)
            elif self.queue_capacity is None or len(self._queue) < self.queue_capacity:
                self._queue.append(transaction)
            else:
                self._dropped += 1

        self._drain_departures(until, frequency_ghz, result)
        self._tick(until)
        result.busy_core_seconds = self._busy_integral - busy_at_start
        return result

    def recent_load(self, result: EngineResult) -> float:
        """Load estimate a governor would sample after a window."""
        return min(1.0, result.utilization)


@dataclass
class BatchServiceEngine:
    """Array-batched c-server FIFO queue, advanced window by window.

    Same queueing semantics as :class:`ServiceEngine` -- FIFO dispatch,
    one server per core, exponential service law, optional bounded
    queue with drops -- but a window's arrivals enter as arrays and all
    of its service randomness is drawn in one array call, so the
    per-window cost is a couple of RNG calls plus a tight float loop
    instead of per-event scalar draws and dataclass heap nodes.  The
    generator is consumed in a different order than ServiceEngine's, so
    sample paths differ between the two engines for the same seed while
    each remains fully deterministic per seed.

    The dispatch walk uses the earliest-free-server formulation of the
    FIFO c-server queue: a heap holds the time each core next falls
    idle, and the head-of-line job starts at ``max(arrival, heap top)``
    -- exactly when ServiceEngine would dispatch it off a departure
    event.  Start times are non-decreasing under FIFO, so the queue
    length seen by an arrival (for bounded-queue admission) can be read
    off a deque of dispatch times still in the future.  Service demand
    is pre-drawn as a unit exponential scaled by the job's ops, and
    divided by the core rate of the window that actually dispatches the
    job -- the same "drawn at dispatch frequency" law as ServiceEngine.
    """

    cores: int
    profile: ThroughputProfile
    rng: np.random.Generator
    queue_capacity: Optional[int] = None

    _clock: float = field(default=0.0, init=False, repr=False)
    _free: List[float] = field(default_factory=list, init=False, repr=False)
    _pending: Deque[Tuple[float, float, float]] = field(
        default_factory=deque, init=False, repr=False
    )
    _started: Deque[float] = field(default_factory=deque, init=False, repr=False)
    _in_service: List[Tuple[float, float]] = field(
        default_factory=list, init=False, repr=False
    )
    _dropped: int = field(default=0, init=False, repr=False)

    def __post_init__(self):
        if self.cores <= 0:
            raise ValueError("core count must be positive")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ValueError("queue capacity cannot be negative")
        self._free = [0.0] * self.cores

    @property
    def clock(self) -> float:
        return self._clock

    @property
    def pending(self) -> int:
        """Transactions queued or in service right now."""
        return len(self._pending) + len(self._in_service)

    @property
    def dropped(self) -> int:
        return self._dropped

    # parity: takes pre-materialized arrival arrays instead of the event
    # engine's iterator; pinned by tests/test_ssj_batch_engine.py.
    def advance(  # hot: REP6xx-linted; arrays convert once via .tolist()
        self,
        arrival_times: np.ndarray,
        work_factors: np.ndarray,
        until: float,
        frequency_ghz: float,
    ) -> EngineResult:
        """Simulate up to time ``until`` with the given CPU frequency.

        ``arrival_times`` must be non-decreasing absolute times inside
        [clock, until]; ``work_factors`` gives each arrival's relative
        service demand (see :mod:`repro.ssj.transactions`).
        """
        if until < self._clock:
            raise ValueError("cannot advance backwards in time")
        window_start = self._clock
        result = EngineResult(duration_s=until - window_start, cores=self.cores)
        rate = self.profile.ops_per_second_per_core(frequency_ghz)
        if rate <= 0.0:
            raise ValueError("throughput profile returned a non-positive rate")
        scale = 1.0 / rate

        busy = 0.0
        completed = 0
        completed_ops = 0.0

        # Jobs already on a core at window start: complete or carry.
        carried: List[Tuple[float, float]] = []
        for dep, ops in self._in_service:
            if dep <= until:
                busy += dep - window_start
                completed += 1
                completed_ops += ops
            else:
                busy += until - window_start
                carried.append((dep, ops))

        free = self._free
        started = self._started
        pending = self._pending

        # Carried-over queue: dispatch as cores fall idle, strictly
        # ahead of anything arriving in this window (FIFO).  Admission
        # was already checked at these jobs' arrival times.
        while pending and free[0] < until:
            _arrival, demand, ops = pending.popleft()
            start = free[0]
            dep = start + demand * scale
            heapq.heapreplace(free, dep)
            started.append(start)
            if dep <= until:
                busy += dep - start
                completed += 1
                completed_ops += ops
            else:
                busy += until - start
                carried.append((dep, ops))

        times = np.asarray(arrival_times, dtype=float)
        n = times.size
        if n:
            if times[0] < window_start or times[-1] > until:
                raise ValueError("arrival outside the advancing window")
            ops_arr = np.asarray(work_factors, dtype=float) * OPS_PER_UNIT_WORK
            demand_arr = self.rng.exponential(1.0, size=n) * ops_arr
            times_l = times.tolist()
            demands = demand_arr.tolist()
            opses = ops_arr.tolist()
            capacity = self.queue_capacity
            for i in range(n):
                arrival = times_l[i]
                while started and started[0] <= arrival:
                    started.popleft()
                earliest = free[0]
                if not pending and earliest <= arrival:
                    start = arrival  # an idle core picks it up on arrival
                else:
                    if (
                        capacity is not None
                        and len(started) + len(pending) >= capacity
                    ):
                        self._dropped += 1
                        continue
                    if earliest >= until:
                        # Dispatch falls in a later window; defer so the
                        # service draw uses that window's frequency.
                        pending.append((arrival, demands[i], opses[i]))
                        continue
                    start = earliest
                    started.append(start)
                dep = start + demands[i] * scale
                heapq.heapreplace(free, dep)
                ops = opses[i]
                if dep <= until:
                    busy += dep - start
                    completed += 1
                    completed_ops += ops
                else:
                    busy += until - start
                    carried.append((dep, ops))

        self._in_service = carried
        self._clock = until
        result.completed_transactions = completed
        result.completed_ops = completed_ops
        result.busy_core_seconds = busy
        return result

    def recent_load(self, result: EngineResult) -> float:
        """Load estimate a governor would sample after a window."""
        return min(1.0, result.utilization)
