"""Discrete-event multi-core service engine.

The engine is a c-server FIFO queue (one server per hardware core)
processing the transaction stream: arrivals join the queue, an idle
core picks up the head-of-line transaction, holds it for an
exponentially distributed service time whose mean follows the
transaction's work factor and the current CPU frequency, and retires
its ssj_ops on completion.  The engine advances in *windows* so the
frequency governor can resample between windows; service times are
drawn at dispatch using the frequency then in force.

Busy time is integrated exactly: between any two consecutive events the
number of busy cores is constant, so the integral of busy cores over
time accumulates in closed form at every event edge.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Protocol, Tuple

import numpy as np

from repro.ssj.transactions import TransactionType

#: ssj_ops retired by a unit-work transaction.
OPS_PER_UNIT_WORK = 100.0


class ThroughputProfile(Protocol):
    """Performance side of a server: how fast one core retires work."""

    def ops_per_second_per_core(self, frequency_ghz: float) -> float:
        """Sustained ssj_ops/s of one core at the given frequency."""
        ...


@dataclass(frozen=True)
class LinearThroughputProfile:
    """Throughput proportional to frequency -- the simplest profile.

    ``ops_at_1ghz`` is the per-core rate at 1 GHz.  Real servers scale
    sublinearly with frequency (memory-bound cycles do not speed up);
    :mod:`repro.hwexp.perf_model` provides that richer profile.
    """

    ops_at_1ghz: float

    def ops_per_second_per_core(self, frequency_ghz: float) -> float:
        """Per-core rate, proportional to the clock."""
        if frequency_ghz <= 0.0:
            raise ValueError("frequency must be positive")
        return self.ops_at_1ghz * frequency_ghz


@dataclass
class EngineResult:
    """Aggregate statistics of one simulated window."""

    duration_s: float
    cores: int = 1
    completed_transactions: int = 0
    completed_ops: float = 0.0
    busy_core_seconds: float = 0.0

    @property
    def throughput_ops_per_s(self) -> float:
        return self.completed_ops / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def utilization(self) -> float:
        denominator = self.cores * self.duration_s
        return self.busy_core_seconds / denominator if denominator > 0 else 0.0

    def merge(self, other: "EngineResult") -> "EngineResult":
        """Combine two consecutive windows of the same engine."""
        if other.cores != self.cores:
            raise ValueError("cannot merge results from different core counts")
        return EngineResult(
            duration_s=self.duration_s + other.duration_s,
            cores=self.cores,
            completed_transactions=self.completed_transactions
            + other.completed_transactions,
            completed_ops=self.completed_ops + other.completed_ops,
            busy_core_seconds=self.busy_core_seconds + other.busy_core_seconds,
        )


@dataclass(order=True)
class _InService:
    departure_time: float
    sequence: int
    ops: float = field(compare=False)


@dataclass
class ServiceEngine:
    """Stateful c-server FIFO queue, advanced window by window."""

    cores: int
    profile: ThroughputProfile
    rng: np.random.Generator
    queue_capacity: Optional[int] = None

    _clock: float = field(default=0.0, init=False, repr=False)
    _queue: Deque[TransactionType] = field(default_factory=deque, init=False, repr=False)
    _in_service: List[_InService] = field(default_factory=list, init=False, repr=False)
    _sequence: int = field(default=0, init=False, repr=False)
    _dropped: int = field(default=0, init=False, repr=False)
    _busy_integral: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self):
        if self.cores <= 0:
            raise ValueError("core count must be positive")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ValueError("queue capacity cannot be negative")

    @property
    def clock(self) -> float:
        return self._clock

    @property
    def pending(self) -> int:
        """Transactions queued or in service right now."""
        return len(self._queue) + len(self._in_service)

    @property
    def dropped(self) -> int:
        return self._dropped

    def _tick(self, now: float) -> None:
        """Advance the clock, integrating busy cores over the gap."""
        if now < self._clock:
            raise ValueError("engine clock cannot move backwards")
        self._busy_integral += len(self._in_service) * (now - self._clock)
        self._clock = now

    def _service_time(
        self, transaction: TransactionType, frequency_ghz: float
    ) -> Tuple[float, float]:
        """Draw a service time; returns (seconds, ops retired)."""
        rate = self.profile.ops_per_second_per_core(frequency_ghz)
        if rate <= 0.0:
            raise ValueError("throughput profile returned a non-positive rate")
        ops = transaction.work_factor * OPS_PER_UNIT_WORK
        mean_seconds = ops / rate
        return float(self.rng.exponential(mean_seconds)), ops

    def _dispatch(
        self, transaction: TransactionType, now: float, frequency_ghz: float
    ) -> None:
        seconds, ops = self._service_time(transaction, frequency_ghz)
        self._sequence += 1
        heapq.heappush(
            self._in_service,
            _InService(departure_time=now + seconds, sequence=self._sequence, ops=ops),
        )

    def _drain_departures(
        self, until: float, frequency_ghz: float, result: EngineResult
    ) -> None:
        """Retire every in-service transaction departing by ``until``."""
        while self._in_service and self._in_service[0].departure_time <= until:
            job = self._in_service[0]
            self._tick(job.departure_time)
            heapq.heappop(self._in_service)
            result.completed_transactions += 1
            result.completed_ops += job.ops
            if self._queue:
                self._dispatch(self._queue.popleft(), job.departure_time, frequency_ghz)

    def advance(
        self,
        arrivals: Iterable[Tuple[float, TransactionType]],
        until: float,
        frequency_ghz: float,
    ) -> EngineResult:
        """Simulate up to time ``until`` with the given CPU frequency.

        ``arrivals`` must yield (absolute_time, transaction) pairs with
        non-decreasing times inside [clock, until].
        """
        if until < self._clock:
            raise ValueError("cannot advance backwards in time")
        window_start = self._clock
        busy_at_start = self._busy_integral
        result = EngineResult(duration_s=until - window_start, cores=self.cores)

        for arrival_time, transaction in arrivals:
            if arrival_time < window_start or arrival_time > until:
                raise ValueError("arrival outside the advancing window")
            self._drain_departures(arrival_time, frequency_ghz, result)
            self._tick(arrival_time)
            if len(self._in_service) < self.cores:
                self._dispatch(transaction, arrival_time, frequency_ghz)
            elif self.queue_capacity is None or len(self._queue) < self.queue_capacity:
                self._queue.append(transaction)
            else:
                self._dropped += 1

        self._drain_departures(until, frequency_ghz, result)
        self._tick(until)
        result.busy_core_seconds = self._busy_integral - busy_at_start
        return result

    def recent_load(self, result: EngineResult) -> float:
        """Load estimate a governor would sample after a window."""
        return min(1.0, result.utilization)
