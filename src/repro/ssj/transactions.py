"""The SSJ workload transaction mix.

ssj2008 models a wholesale supplier's order-processing backend; each
unit of work is one of six transaction types drawn with fixed
probabilities (the mix descends from TPC-C's profile, per the workload
characterization in ref. [19] of the paper).  Each type carries a
relative *work factor* -- how much compute a transaction costs compared
with the mix average -- so that heavier transactions occupy a core for
proportionally longer in the service simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TransactionType:
    """One SSJ transaction type.

    ``mix_weight`` values across a mix sum to 1; ``work_factor`` scales
    the mean service demand relative to the mix average (the mix's
    weighted work factor is normalized to 1 by :func:`validate_mix`).
    """

    name: str
    mix_weight: float
    work_factor: float

    def __post_init__(self):
        if not 0.0 < self.mix_weight <= 1.0:
            raise ValueError("mix weight must lie in (0, 1]")
        if self.work_factor <= 0.0:
            raise ValueError("work factor must be positive")


#: The six-transaction ssj2008 mix.  Weights follow the TPC-C-derived
#: profile (new orders and payments dominate); work factors reflect
#: that deliveries and customer reports touch many rows.
SSJ_MIX: Tuple[TransactionType, ...] = (
    TransactionType("NewOrder", mix_weight=0.305, work_factor=1.00),
    TransactionType("Payment", mix_weight=0.305, work_factor=0.65),
    TransactionType("OrderStatus", mix_weight=0.10, work_factor=0.55),
    TransactionType("Delivery", mix_weight=0.10, work_factor=1.90),
    TransactionType("StockLevel", mix_weight=0.10, work_factor=1.35),
    TransactionType("CustomerReport", mix_weight=0.09, work_factor=1.50),
)


def validate_mix(mix: Sequence[TransactionType]) -> Tuple[TransactionType, ...]:
    """Check the weights sum to 1 and normalize work factors to mean 1."""
    if not mix:
        raise ValueError("a transaction mix cannot be empty")
    weights = np.array([t.mix_weight for t in mix])
    if abs(float(weights.sum()) - 1.0) > 1e-9:
        raise ValueError(f"mix weights must sum to 1, got {float(weights.sum()):.6f}")
    mean_work = float(sum(t.mix_weight * t.work_factor for t in mix))
    return tuple(
        TransactionType(t.name, t.mix_weight, t.work_factor / mean_work) for t in mix
    )


def mean_work_factor(mix: Sequence[TransactionType]) -> float:
    """Mix-weighted average work factor (1.0 for a normalized mix)."""
    return float(sum(t.mix_weight * t.work_factor for t in mix))
