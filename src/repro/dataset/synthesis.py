"""Synthesis of the 477-server corpus from the calibration targets.

The generator expands the target tables of
:mod:`repro.dataset.calibration_targets` into full FDR-shaped records
in nine deterministic passes:

1. expand the (year, codename) allocation into server stubs;
2. attach the paper's pinned exemplars to matching stubs;
3. place the 74 multi-node systems per the node/year plan;
4. distribute single-node chip counts (77/284/36/6 at 1/2/4/8 chips);
5. assign memory-per-core ratios (Table I buckets plus the long tail);
6. draw each stub's EP target (codename mean + structural adjustments
   + noise), then give the highest-EP servers of each year the
   earliest peak-efficiency spots per the Section IV.A allocation;
7. derive idle fractions by inverting Eq. 2 with noise and solve each
   power curve in the three-parameter family;
8. scale efficiencies (year base x codename/chips/memory factors) and
   materialize noisy per-level measurements;
9. pick publication years so exactly 74 results have a published year
   different from hardware availability (every pre-2007 system must --
   the benchmark did not exist yet).

Everything is driven by one ``numpy.random.Generator``; the same seed
always yields the identical corpus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset import calibration_targets as targets
from repro.dataset.corpus import Corpus
from repro.dataset.curve_family import (
    CurveSolveError,
    PowerCurve,
    solve_curve,
    solve_curve_with_fallback,
)
from repro.dataset.schema import LoadLevel, SpecPowerResult
from repro.metrics.ep import TARGET_LOADS_DESCENDING, UTILIZATION_LEVELS
from repro.power.microarch import CATALOG, Codename

_LEVEL_GRID = np.array(UTILIZATION_LEVELS)

#: The ten non-idle measurement loads, pre-rounded to their dictionary
#: keys (the generator keys measurements by ``round(load, 1)``).
_ROUNDED_LOADS = tuple(float(round(load, 1)) for load in _LEVEL_GRID[1:])
_ROUNDED_LOADS_ARR = np.array(_ROUNDED_LOADS)

#: Noise scales of one measurement attempt, in draw order: the
#: generator alternates a power draw (sigma 0.0015) and a throughput
#: draw (sigma 0.002) per load level, so a single array-scale
#: ``rng.normal`` call consumes the stream exactly like the former
#: per-level scalar draws.
_ATTEMPT_SIGMAS = np.empty(2 * len(_ROUNDED_LOADS))
_ATTEMPT_SIGMAS[0::2] = 0.0015
_ATTEMPT_SIGMAS[1::2] = 0.002

#: (reported target load, measurement-array index) per output level.
_TARGET_INDICES = tuple(
    (float(load), _ROUNDED_LOADS.index(float(round(load, 1))))
    for load in TARGET_LOADS_DESCENDING
)
_IDX_08 = _ROUNDED_LOADS.index(0.8)
_IDX_09 = _ROUNDED_LOADS.index(0.9)


@dataclass
class _Stub:
    """A server under construction."""

    index: int
    hw_year: int
    codename: Codename
    nodes: int = 1
    chips_per_node: int = 2
    cores_per_chip: int = 4
    mpc: float = 1.0
    ep_target: float = 0.6
    peak_spot: float = 1.0
    idle_fraction: float = 0.4
    pinned: Optional[targets.PinnedServer] = None
    power_points: Optional[np.ndarray] = None
    score_target: float = 1000.0
    published_year: int = 0

    @property
    def total_cores(self) -> int:
        return self.nodes * self.chips_per_node * self.cores_per_chip


def generate_corpus(seed: int = 2016, structural_effects: bool = True) -> Corpus:
    """Generate the full 477-result corpus; deterministic per seed.

    ``structural_effects=False`` is the ablation switch: it zeroes the
    configuration-level EP/EE adjustments (node count, chip count,
    memory per core) while keeping the year/codename calibration, so
    the Figs. 13-15/17 shapes disappear while Figs. 2-8 persist --
    separating what the corpus encodes as *configuration physics* from
    what is *cohort composition*.
    """
    targets.validate_targets()
    rng = np.random.default_rng(seed)

    stubs = _expand_stubs()
    _attach_pinned(stubs)
    _assign_multi_node(stubs, rng)
    _assign_chips(stubs, rng)
    _assign_cores(stubs)
    _assign_memory(stubs, rng)
    _assign_ep_targets(stubs, rng, structural_effects)
    _assign_peak_spots(stubs, rng)
    _assign_idle_fractions(stubs, rng)
    _solve_curves(stubs)
    _assign_scores(stubs, rng, structural_effects)
    _assign_publication_years(stubs, rng)

    results = [_materialize(stub, rng) for stub in stubs]
    _enforce_ee_monotonicity(results)
    return Corpus(results)


# -- pass 1: stubs ---------------------------------------------------------------


def _expand_stubs() -> List[_Stub]:
    stubs: List[_Stub] = []
    index = 0
    for year in sorted(targets.YEAR_CODENAME_COUNTS):
        allocation = targets.YEAR_CODENAME_COUNTS[year]
        for codename in sorted(allocation, key=lambda c: c.value):
            for _ in range(allocation[codename]):
                stubs.append(_Stub(index=index, hw_year=year, codename=codename))
                index += 1
    return stubs


# -- pass 2: pinned exemplars ------------------------------------------------------


def _attach_pinned(stubs: List[_Stub]) -> None:
    for pin in targets.PINNED_SERVERS:
        for stub in stubs:
            if stub.pinned is not None:
                continue
            if stub.hw_year == pin.hw_year and stub.codename is pin.codename:
                stub.pinned = pin
                stub.nodes = pin.nodes
                stub.chips_per_node = pin.chips_per_node
                stub.ep_target = pin.ep
                stub.peak_spot = pin.peak_spot
                if pin.cores_per_chip is not None:
                    stub.cores_per_chip = pin.cores_per_chip
                if pin.power_curve is not None:
                    stub.power_points = np.array(pin.power_curve)
                break
        else:
            raise RuntimeError(
                f"no ({pin.hw_year}, {pin.codename.value}) slot for pinned "
                f"server {pin.key}"
            )


# -- pass 3: multi-node systems -----------------------------------------------------


#: 8-node systems are built from the EX (large-SMP) parts in the years
#: those shipped, Haswell-era blades later; the other sizes use the
#: year's volume codename.
_MULTI_NODE_CODENAME = {8: (Codename.NEHALEM_EX, Codename.HASWELL)}


# parity: scalar kernel with no vectorized twin; corpus identity is pinned by tests/test_dataset_reference.py::test_default_seed_bit_identical
def _assign_multi_node(stubs: List[_Stub], rng: np.random.Generator) -> None:
    by_year: Dict[int, List[_Stub]] = {}
    for stub in stubs:
        by_year.setdefault(stub.hw_year, []).append(stub)
    for nodes in sorted(targets.MULTI_NODE_YEAR_PLAN):
        for year in targets.MULTI_NODE_YEAR_PLAN[nodes]:
            candidates = [
                stub
                for stub in by_year.get(year, ())
                if stub.nodes == 1 and stub.pinned is None
            ]
            if not candidates:
                raise RuntimeError(f"no slot for a {nodes}-node system in {year}")
            pool = []
            for preferred in _MULTI_NODE_CODENAME.get(nodes, ()):
                pool = [stub for stub in candidates if stub.codename is preferred]
                if pool:
                    break
            if not pool:
                # Fall back to the year's most common codename:
                # multi-node submissions are mainstream volume parts.
                counts: Dict[Codename, int] = {}
                for stub in candidates:
                    counts[stub.codename] = counts.get(stub.codename, 0) + 1
                best = max(counts.values())
                pool = [stub for stub in candidates if counts[stub.codename] == best]
            chosen = pool[int(rng.integers(len(pool)))]
            chosen.nodes = nodes
            chosen.chips_per_node = 2


# -- pass 4: chip counts --------------------------------------------------------------


#: Codename preference for the outlying chip counts: 8-chip boxes are
#: the EX/HPC parts; 4-chip boxes skew to the same families plus AMD;
#: 1-chip boxes are the entry parts.
_EIGHT_CHIP_PREFERENCE = (Codename.NEHALEM_EX, Codename.WESTMERE_EP, Codename.SANDY_BRIDGE_EP)
_FOUR_CHIP_PREFERENCE = (
    Codename.NEHALEM_EX,
    Codename.MAGNY_COURS,
    Codename.INTERLAGOS,
    Codename.ABU_DHABI,
    Codename.ISTANBUL,
    Codename.BARCELONA,
    Codename.WESTMERE_EP,
    Codename.SANDY_BRIDGE_EP,
    Codename.IVY_BRIDGE_EP,
)
#: The 1-chip class is bimodal on purpose: entry parts of recent years
#: (Lynnfield, Sandy/Ivy Bridge, Seoul) lift its *median* EP above the
#: 2-chip class, while legacy desktop-derived parts (Yorkfield, Penryn)
#: drag its *average* below -- exactly the Fig. 14 asymmetry (the paper
#: reports median EP 0.67 for 1 chip vs 0.66 for 2 chips, yet 2-chip
#: servers lead every other statistic).  Quotas are explicit because
#: the asymmetry depends on the exact mix.
_ONE_CHIP_QUOTAS = (
    (Codename.LYNNFIELD, 12),
    (Codename.SANDY_BRIDGE, 13),
    (Codename.IVY_BRIDGE, 14),
    (Codename.UNKNOWN, 13),
    (Codename.SEOUL, 5),
    (Codename.YORKFIELD, 10),
    (Codename.PENRYN, 10),
)
_ONE_CHIP_PREFERENCE = tuple(codename for codename, _quota in _ONE_CHIP_QUOTAS)


# parity: scalar kernel with no vectorized twin; corpus identity is pinned by tests/test_dataset_reference.py
def _assign_chips(stubs: List[_Stub], rng: np.random.Generator) -> None:
    single = [stub for stub in stubs if stub.nodes == 1]
    remaining = dict(targets.SINGLE_NODE_CHIP_COUNTS)
    for stub in single:
        if stub.pinned is not None:
            remaining[stub.chips_per_node] -= 1

    unassigned = [stub for stub in single if stub.pinned is None]

    def take(
        count: int, preference: Sequence[Codename], chips: int, jitter: float
    ) -> None:
        ranking = {codename: rank for rank, codename in enumerate(preference)}
        pool = sorted(
            (stub for stub in unassigned if stub.chips_per_node == 0),
            # Rank jitter mixes adjacent preference tiers so no single
            # codename monopolizes a chip class.
            key=lambda stub: ranking.get(stub.codename, len(ranking))
            + float(rng.uniform(0.0, jitter)),
        )
        for stub in pool[:count]:
            stub.chips_per_node = chips

    for stub in unassigned:
        stub.chips_per_node = 0  # sentinel: not yet allocated
    take(remaining[8], _EIGHT_CHIP_PREFERENCE, 8, jitter=0.5)
    take(remaining[4], _FOUR_CHIP_PREFERENCE, 4, jitter=2.0)
    taken_one = 0
    for codename, quota in _ONE_CHIP_QUOTAS:
        pool = sorted(
            (
                stub
                for stub in unassigned
                if stub.chips_per_node == 0 and stub.codename is codename
            ),
            key=lambda stub: -stub.hw_year,  # entry parts skew recent
        )
        picks = min(quota, len(pool), remaining[1] - taken_one)
        for stub in pool[:picks]:
            stub.chips_per_node = 1
        taken_one += picks
    if taken_one < remaining[1]:
        take(remaining[1] - taken_one, _ONE_CHIP_PREFERENCE, 1, jitter=1.0)
    for stub in unassigned:
        if stub.chips_per_node == 0:
            stub.chips_per_node = 2

    observed: Dict[int, int] = {}
    for stub in single:
        observed[stub.chips_per_node] = observed.get(stub.chips_per_node, 0) + 1
    if observed != targets.SINGLE_NODE_CHIP_COUNTS:
        raise RuntimeError(f"chip allocation drifted: {observed}")


def _assign_cores(stubs: List[_Stub]) -> None:
    for stub in stubs:
        if stub.pinned is not None and stub.pinned.cores_per_chip is not None:
            continue
        stub.cores_per_chip = targets.CORES_PER_CHIP[stub.codename]


# -- pass 5: memory per core ------------------------------------------------------------


# parity: scalar kernel with no vectorized twin; corpus identity is pinned by tests/test_dataset_reference.py
def _assign_memory(stubs: List[_Stub], rng: np.random.Generator) -> None:
    values: List[float] = []
    for ratio in sorted(targets.MEMORY_PER_CORE_COUNTS):
        values.extend([ratio] * targets.MEMORY_PER_CORE_COUNTS[ratio])
    tail = list(targets.OTHER_MEMORY_PER_CORE)
    index = 0
    while len(values) < len(stubs):
        values.append(tail[index % len(tail)])
        index += 1
    values.sort()
    # Stratified dealing: each bucket receives an even spread of the
    # EP-rank distribution, so Fig. 17's per-bucket averages reflect the
    # structural adjustments rather than composition luck.  (Table I's
    # ratios are therefore deliberately decorrelated from year; the
    # paper's Fig. 17 likewise averages across all eras per bucket.)
    from collections import Counter

    bucket_counts = Counter(values)
    placements = []
    for ratio, count in sorted(bucket_counts.items()):
        offsets = (np.arange(count) + float(rng.uniform(0.0, 1.0))) * (
            len(stubs) / count
        )
        placements.extend((float(pos), ratio) for pos in offsets)
    placements.sort()
    ranked = sorted(
        stubs,
        key=lambda stub: _codename_ep_mean(stub)
        + targets.YEAR_EP_TWEAK.get(stub.hw_year, 0.0)
        + float(rng.normal(0.0, 0.02)),
    )
    for stub, (_pos, ratio) in zip(ranked, placements):
        stub.mpc = ratio


# -- pass 6: EP targets and peak spots -------------------------------------------------


def _codename_ep_mean(stub: _Stub) -> float:
    if stub.codename is Codename.UNKNOWN:
        return targets.YEAR_EP_ESTIMATE[stub.hw_year]
    return CATALOG[stub.codename].ep_mean


def _assign_ep_targets(
    stubs: List[_Stub],
    rng: np.random.Generator,
    structural_effects: bool = True,
) -> None:
    unpinned = [stub for stub in stubs if stub.pinned is None]
    # One array-scale draw over the per-codename spreads consumes the
    # stream exactly like the former per-stub scalar draws.
    spreads = np.array([CATALOG[stub.codename].ep_spread for stub in unpinned])
    draws = rng.normal(0.0, spreads)
    for stub, draw in zip(unpinned, draws):
        base = _codename_ep_mean(stub)
        base += targets.YEAR_EP_TWEAK.get(stub.hw_year, 0.0)
        if structural_effects:
            base += targets.NODE_EP_BONUS.get(stub.nodes, 0.0)
            if stub.nodes == 1:
                base += targets.CHIP_EP_ADJUST[stub.chips_per_node]
            base += targets.MPC_EP_ADJUST[stub.mpc]
        ep = base + float(draw)
        low = 0.73 if stub.hw_year == 2016 else 0.19
        stub.ep_target = float(min(0.99, max(low, ep)))


# parity: scalar kernel with no vectorized twin; corpus identity is pinned by tests/test_dataset_reference.py
def _assign_peak_spots(stubs: List[_Stub], rng: np.random.Generator) -> None:
    for year, allocation in targets.PEAK_SPOT_YEAR_COUNTS.items():
        pool: Dict[float, int] = dict(allocation)
        year_stubs = [stub for stub in stubs if stub.hw_year == year]
        for stub in year_stubs:
            if stub.pinned is not None:
                spot = stub.pinned.peak_spot
                if pool.get(spot, 0) <= 0:
                    raise RuntimeError(
                        f"peak-spot pool exhausted for pinned {stub.pinned.key}"
                    )
                pool[spot] -= 1
        spots: List[float] = []
        for spot in sorted(pool):
            spots.extend([spot] * pool[spot])
        # Highest EP first -> earliest spot first: reproduces Section
        # III.C's rule that more proportional servers peak (and cross
        # the ideal curve) farther from 100% utilization.
        unpinned = sorted(
            (stub for stub in year_stubs if stub.pinned is None),
            key=lambda stub: -stub.ep_target,
        )
        if len(unpinned) != len(spots):
            raise RuntimeError(f"peak-spot allocation mismatch in {year}")
        for stub, spot in zip(unpinned, spots):
            stub.peak_spot = spot


# -- pass 7: idle fractions and curves ----------------------------------------------------


def _idle_from_ep(ep: float) -> float:
    """Invert Eq. 2: the deterministic idle fraction for an EP value."""
    return math.log(targets.EQ2_AMPLITUDE / ep) / (-targets.EQ2_RATE)


def _assign_idle_fractions(stubs: List[_Stub], rng: np.random.Generator) -> None:
    # Pinned stubs consume no draws, so one sized draw over the
    # unpinned stubs matches the former per-stub scalar stream.
    noises = iter(rng.normal(0.0, 0.13, size=sum(s.pinned is None for s in stubs)))
    for stub in stubs:
        if stub.pinned is not None and stub.pinned.idle_fraction is not None:
            stub.idle_fraction = stub.pinned.idle_fraction
            continue
        noise = 0.0 if stub.pinned is not None else float(next(noises))
        idle = _idle_from_ep(stub.ep_target) * math.exp(noise)
        # Hard bound: EP <= 2 * (1 - idle) for any monotone curve.
        idle = min(idle, 1.0 - stub.ep_target / 2.0 - 0.04)
        if stub.peak_spot >= 1.0 - 1e-9:
            # Peak at 100% additionally requires EP <= 1 - idle/2.
            idle = min(idle, 2.0 * (1.0 - stub.ep_target) - 0.02)
        stub.idle_fraction = float(min(0.93, max(0.03, idle)))


def _solve_curves(stubs: List[_Stub]) -> None:
    for stub in stubs:
        if stub.power_points is not None:
            continue  # explicit pinned curve
        try:
            curve = solve_curve(stub.ep_target, stub.idle_fraction, stub.peak_spot)
        except CurveSolveError:
            curve = solve_curve_with_fallback(
                stub.ep_target, stub.idle_fraction, stub.peak_spot
            )
        stub.idle_fraction = curve.idle
        grid_power = curve.grid_power()
        stub.power_points = grid_power
        # Earliest peak-efficiency measurement level, straight from the
        # grid powers (elementwise identical to ``grid_peak_spots()[0]``
        # for both curve classes, without re-evaluating the curve).
        levels = _LEVEL_GRID[1:]
        rel = levels / grid_power[1:]
        best = rel.max()
        stub.peak_spot = float(levels[rel >= best * (1.0 - 1e-9)][0])


# -- pass 8: efficiency scale ---------------------------------------------------------------


def _catalog_ee_factor(stub: _Stub, year_typical: Dict[int, float]) -> float:
    """Codename efficiency factor; unknown codenames are year-typical."""
    if stub.codename is Codename.UNKNOWN:
        return year_typical[stub.hw_year]
    return CATALOG[stub.codename].ee_factor


def _config_ee_factor(stub: _Stub) -> float:
    if stub.nodes == 1:
        factor = targets.CHIP_EE_FACTOR[stub.chips_per_node]
    else:
        factor = targets.NODE_EE_FACTOR.get(stub.nodes, 1.0)
    return factor * targets.MPC_EE_FACTOR[stub.mpc]


def _year_typical_catalog_factor(stubs: List[_Stub]) -> Dict[int, float]:
    typical: Dict[int, float] = {}
    for year in targets.YEAR_COUNTS:
        known = [
            CATALOG[stub.codename].ee_factor
            for stub in stubs
            if stub.hw_year == year and stub.codename is not Codename.UNKNOWN
        ]
        typical[year] = float(np.mean(known)) if known else 1.0
    return typical


def _ee_structural_factor(
    stub: _Stub,
    year_typical: Dict[int, float],
    structural_effects: bool = True,
) -> float:
    factor = _catalog_ee_factor(stub, year_typical)
    if structural_effects:
        factor *= _config_ee_factor(stub)
    return factor


# parity: scalar kernel with no vectorized twin; corpus identity is pinned by tests/test_dataset_reference.py
def _assign_scores(
    stubs: List[_Stub],
    rng: np.random.Generator,
    structural_effects: bool = True,
) -> None:
    year_typical = _year_typical_catalog_factor(stubs)
    year_mean: Dict[int, float] = {}
    for year in targets.YEAR_COUNTS:
        members = [stub for stub in stubs if stub.hw_year == year]
        year_mean[year] = float(
            np.mean(
                [
                    _ee_structural_factor(stub, year_typical, structural_effects)
                    for stub in members
                ]
            )
        )
    # Pre-2013, the efficiency outliers were raw-throughput platform
    # designs rather than the proportionality leaders (Section IV.B's
    # second asynchrony fold: high-EP servers rarely sit in the top
    # efficiency decile).  The per-year noise draws for those years are
    # therefore dealt mostly anti-ranked against EP.
    noise_sigma = {
        year: (0.13 if year <= 2012 else 0.05) for year in targets.YEAR_COUNTS
    }
    noise_by_stub: Dict[int, float] = {}
    for year in targets.YEAR_COUNTS:
        members = [
            stub
            for stub in stubs
            if stub.hw_year == year
            and not (stub.pinned is not None and stub.pinned.score is not None)
        ]
        draws = sorted(
            float(rng.normal(0.0, noise_sigma[year])) for _ in members
        )
        if year <= 2012:
            # Rank by the *platform's* proportionality (codename mean),
            # so configuration-level adjustments (chips, memory) keep
            # their own EE factors undisturbed.
            ordered = sorted(
                members, key=lambda stub: -_codename_ep_mean(stub)
            )
            # The proportionality leaders (top fifth by EP) strictly
            # receive the smallest efficiency draws; the rest of the
            # year is only loosely anti-ranked.
            strict = max(1, len(draws) // 8)
            for i in range(strict, len(draws)):
                j = int(rng.integers(max(strict, i - 8), min(len(draws), i + 9)))
                draws[i], draws[j] = draws[j], draws[i]
        else:
            ordered = list(members)
            rng.shuffle(draws)
        for stub, draw in zip(ordered, draws):
            noise_by_stub[stub.index] = draw

    for stub in stubs:
        if stub.pinned is not None and stub.pinned.score is not None:
            stub.score_target = stub.pinned.score
            continue
        base = targets.YEAR_SCORE_BASE[stub.hw_year]
        relative = (
            _ee_structural_factor(stub, year_typical, structural_effects)
            / year_mean[stub.hw_year]
        )
        noise = math.exp(noise_by_stub[stub.index])
        stub.score_target = base * relative * noise


# -- pass 9: publication years ----------------------------------------------------------------


# parity: scalar kernel with no vectorized twin; corpus identity is pinned by tests/test_dataset_reference.py
def _assign_publication_years(stubs: List[_Stub], rng: np.random.Generator) -> None:
    for stub in stubs:
        stub.published_year = stub.hw_year

    lags: List[int] = []
    for lag in sorted(targets.PUBLICATION_LAG_COUNTS, reverse=True):
        lags.extend([lag] * targets.PUBLICATION_LAG_COUNTS[lag])

    # Every pre-2007 system must be reorganized (the benchmark launched
    # in late 2007); they take the largest lags.
    mandatory = [stub for stub in stubs if stub.hw_year < 2007]
    chosen: List[_Stub] = list(mandatory)
    # Positive lags need room before the 2016 submission cutoff, so
    # 2016 hardware is excluded (its only mismatch mode is the single
    # published-before-availability case below).
    eligible = [
        stub
        for stub in stubs
        if 2007 <= stub.hw_year <= 2015 and stub.pinned is None
    ]
    # Older hardware is likelier to have a late submission.
    weights = np.array([2.0 if stub.hw_year <= 2012 else 1.0 for stub in eligible])
    weights /= weights.sum()
    picks = rng.choice(
        len(eligible),
        size=targets.REORGANIZED_SERVERS - len(mandatory),
        replace=False,
        p=weights,
    )
    chosen.extend(eligible[int(i)] for i in picks)

    # The single negative lag (published the year before availability)
    # needs late hardware so the published year stays in range; the
    # paper's own example is 2016 hardware published in 2015.
    chosen.sort(key=lambda stub: stub.hw_year)
    late = [stub for stub in stubs if stub.hw_year == 2016 and stub.pinned is None]
    if late:
        negative_stub = late[0]
        chosen.append(negative_stub)
        chosen = chosen[: targets.REORGANIZED_SERVERS]
        if negative_stub not in chosen:
            chosen[-1] = negative_stub
    else:
        negatives = [stub for stub in chosen if stub.hw_year >= 2015]
        negative_stub = negatives[-1] if negatives else chosen[-1]

    positive_lags = [lag for lag in lags if lag > 0]
    positive_lags.sort(reverse=True)
    others = [stub for stub in chosen if stub is not negative_stub]
    others.sort(key=lambda stub: stub.hw_year)
    for stub, lag in zip(others, positive_lags):
        published = stub.hw_year + lag
        published = max(2007, min(2016, published))
        if published == stub.hw_year:
            published = min(2016, stub.hw_year + 1)
        stub.published_year = published
    negative_stub.published_year = negative_stub.hw_year - 1


# -- materialization -----------------------------------------------------------------------------


# parity: scalar kernel with no vectorized twin; corpus identity is pinned by tests/test_dataset_reference.py
def _materialize(stub: _Stub, rng: np.random.Generator) -> SpecPowerResult:
    power_points = np.asarray(stub.power_points, dtype=float)
    if power_points.shape != _LEVEL_GRID.shape:
        raise RuntimeError("power curve must have eleven points")

    peak_power = _watts_at_full_load(stub, rng)
    denominator = float(power_points[1:].sum() + power_points[0])
    ee_at_full = stub.score_target * denominator / float(_LEVEL_GRID[1:].sum())
    max_ops = ee_at_full * peak_power

    levels, idle_w = _noisy_levels(stub, power_points, peak_power, max_ops, rng)

    brand, prefix = targets.VENDOR_POOL[int(rng.integers(len(targets.VENDOR_POOL)))]
    form = (
        stub.pinned.form_factor
        if stub.pinned is not None
        else targets.FORM_FACTORS[int(rng.integers(len(targets.FORM_FACTORS)))]
    )
    model = f"{prefix}-{stub.hw_year % 100:02d}{stub.index % 1000:03d}"
    tie = stub.pinned.tie_peak_spots if stub.pinned is not None else False

    return SpecPowerResult(
        result_id=f"res-{stub.index:04d}",
        vendor=brand,
        model=model,
        form_factor=form,
        hw_year=stub.hw_year,
        published_year=stub.published_year,
        codename=stub.codename,
        nodes=stub.nodes,
        chips_per_node=stub.chips_per_node,
        cores_per_chip=stub.cores_per_chip,
        memory_gb=stub.mpc * stub.total_cores,
        levels=levels,
        active_idle_power_w=idle_w,
        tie_peak_spots=tie,
    )


# parity: scalar kernel with no vectorized twin; corpus identity is pinned by tests/test_dataset_reference.py
def _watts_at_full_load(stub: _Stub, rng: np.random.Generator) -> float:
    per_core = targets.WATTS_PER_CORE[stub.hw_year]
    chassis = 55.0 if stub.nodes == 1 else 40.0  # shared PSUs amortize
    watts = stub.nodes * (chassis + stub.chips_per_node * stub.cores_per_chip * per_core)
    return watts * math.exp(float(rng.normal(0.0, 0.10)))


def _noisy_levels(
    stub: _Stub,
    power_points: np.ndarray,
    peak_power: float,
    max_ops: float,
    rng: np.random.Generator,
) -> Tuple[List[LoadLevel], float]:
    """Materialize measured levels, preserving the peak-efficiency spot.

    One array-scale draw per attempt replaces the former per-level
    scalar draws (the alternating sigma vector keeps the stream, and so
    the corpus, bit-identical), and the spot check runs on the raw
    arrays: the former ranked list's head/runner-up are the max and the
    second-largest value, and the winning spot is the lowest load
    within the tie tolerance of the head.
    """
    tie = stub.pinned.tie_peak_spots if stub.pinned is not None else False
    base_powers = peak_power * power_points[1:]
    base_opses = max_ops * _ROUNDED_LOADS_ARR
    for attempt in range(12):
        # Later retries shrink the noise so curves whose peak level wins
        # by a slim natural margin still land on their planned spot.
        damping = 1.0 if attempt < 6 else 0.5 ** (attempt - 5)
        draws = rng.normal(0.0, _ATTEMPT_SIGMAS * damping)
        powers_arr = base_powers * (1.0 + draws[0::2])
        opses_arr = base_opses * (1.0 + draws[1::2])
        if tie:
            # Exact efficiency tie between 80% and 90% (Section IV.A's
            # 478th spot): power at 90% set so ops/power matches 80%.
            opses_arr[_IDX_09] = max_ops * 0.9
            opses_arr[_IDX_08] = max_ops * 0.8
            powers_arr[_IDX_09] = powers_arr[_IDX_08] * (0.9 / 0.8)
        idle_noise = 1.0 + float(rng.normal(0.0, 0.0015))
        idle_w = peak_power * float(power_points[0]) * idle_noise

        efficiencies = opses_arr / powers_arr
        best = efficiencies.max()
        first_spot = _ROUNDED_LOADS_ARR[
            efficiencies >= best * (1.0 - 1e-9)
        ][0]
        if tie:
            if abs(first_spot - 0.8) < 1e-9:
                break
        elif (
            abs(first_spot - stub.peak_spot) < 1e-9
            # Strict winner: the runner-up stays clearly below so the
            # analysis-side tie detector never miscounts a spot.
            and np.partition(efficiencies, -2)[-2] <= best * (1.0 - 2e-3)
        ):
            break
    levels = [
        LoadLevel(
            target_load=load,
            ssj_ops=float(opses_arr[index]),
            average_power_w=float(powers_arr[index]),
        )
        for load, index in _TARGET_INDICES
    ]
    return levels, float(idle_w)


def _enforce_ee_monotonicity(results: List[SpecPowerResult]) -> None:
    """Keep per-year maximum overall score non-decreasing (Fig. 4).

    A final calibration pass: when sampling noise leaves one year's best
    score below the previous year's, the year's best server is scaled up
    to restore the published monotone envelope (every other statistic
    is untouched).
    """
    by_year: Dict[int, List[SpecPowerResult]] = {}
    for result in results:
        by_year.setdefault(result.hw_year, []).append(result)
    previous_max = 0.0
    for year in sorted(by_year):
        best = max(by_year[year], key=lambda r: r.overall_score)
        if best.overall_score <= previous_max:
            scale = previous_max * 1.03 / best.overall_score
            best.levels = [
                LoadLevel(
                    target_load=level.target_load,
                    ssj_ops=level.ssj_ops * scale,
                    average_power_w=level.average_power_w,
                )
                for level in best.levels
            ]
            best.invalidate_cache()
        previous_max = best.overall_score
