"""Calibrated synthetic SPECpower corpus.

The paper analyses all 477 valid SPECpower_ssj2008 results published
through 2016Q3.  That dataset lives on spec.org and is not available in
this offline environment, so this package synthesizes a corpus with the
same statistical shape (see DESIGN.md for the substitution argument):

* :mod:`repro.dataset.curve_family` -- a closed-form three-parameter
  power-curve family whose EP, idle fraction, and peak-efficiency spot
  can be solved for exactly;
* :mod:`repro.dataset.calibration_targets` -- every count, mean, and
  pinned exemplar the paper reports, transcribed as target tables;
* :mod:`repro.dataset.synthesis` -- the generator that expands the
  targets into 477 FDR-shaped records;
* :mod:`repro.dataset.schema` -- the result record and derived metrics;
* :mod:`repro.dataset.corpus` -- the query API the analyses consume;
* :mod:`repro.dataset.fingerprint` -- stable content hashes (the
  artifact cache keys on them);
* :mod:`repro.dataset.io` -- CSV persistence.
"""

from repro.dataset.corpus import Corpus
from repro.dataset.curve_family import GridCurve, PowerCurve, solve_curve
from repro.dataset.fingerprint import corpus_fingerprint, result_fingerprint
from repro.dataset.from_report import result_from_report, result_from_testbed_run
from repro.dataset.schema import LoadLevel, SpecPowerResult
from repro.dataset.synthesis import generate_corpus
from repro.dataset.validation import validate_corpus, validate_result

__all__ = [
    "Corpus",
    "corpus_fingerprint",
    "result_fingerprint",
    "GridCurve",
    "LoadLevel",
    "PowerCurve",
    "SpecPowerResult",
    "generate_corpus",
    "result_from_report",
    "result_from_testbed_run",
    "solve_curve",
    "validate_corpus",
    "validate_result",
]
