"""Reference (scalar, pre-vectorization) synthesis kernels.

The corpus generator's hot kernels were vectorized for speed under a
bit-identity contract: for any seed, the optimized pipeline must emit
*exactly* the corpus the original per-server/per-level code emitted.
This module preserves those original kernels verbatim so the contract
stays testable — :func:`generate_corpus_reference` runs the full
generator with the historical kernels swapped in, and the equality
tests compare its output field-for-field against
:func:`repro.dataset.synthesis.generate_corpus`.

These functions are intentionally slow; nothing outside the test suite
and the benchmark harness should call them.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import List, Optional, Tuple

import numpy as np

import repro.dataset.curve_family as _cf
import repro.dataset.synthesis as _syn
from repro.dataset.corpus import Corpus
from repro.dataset.curve_family import (
    CurveSolveError,
    GridCurve,
    PowerCurve,
    _candidate,
    _knee_points,
    _pair_area_terms,
    _COARSE,
    _GRID,
    _KNEE_RISE_LADDER,
    _S_HIGH_EXPONENTS,
    _S_LOW_EXPONENTS,
    _TRAPZ_W,
)
from repro.dataset.schema import LoadLevel, SpecPowerResult
from repro.dataset.synthesis import _LEVEL_GRID, _Stub, _idle_from_ep
from repro.metrics.ep import TARGET_LOADS_DESCENDING
from repro.power.microarch import CATALOG


def _approx_interior_peaks_reference(
    idle: float, low: float, highs: np.ndarray, ts: np.ndarray
) -> np.ndarray:
    """Original per-call peak scan (powers recomputed, Python loop)."""
    u_low = np.power(_COARSE[None, :], low)
    u_high = np.power(_COARSE[None, :], highs[:, None])
    g = idle + (1.0 - idle) * (
        (1.0 - ts[:, None]) * (1.0 - low) * u_low
        + ts[:, None] * (1.0 - highs[:, None]) * u_high
    )
    transitions = (g[:, :-1] >= 0.0) & (g[:, 1:] < 0.0)
    peaks = np.full(len(highs), 1.0)
    rows, cols = np.nonzero(transitions)
    for row, col in zip(rows, cols):
        peaks[row] = _COARSE[col]  # last transition wins (rows ascend)
    return peaks


def _solve_peak_at_full_reference(
    ep: float, idle: float, target_area: float
) -> PowerCurve:
    """Original peak-at-100% solver (curvature areas recomputed per call)."""
    linear_area = float(_TRAPZ_W @ (idle + (1.0 - idle) * _GRID))
    delta = target_area - linear_area
    if abs(delta) < 1e-9:
        return PowerCurve.mix(idle=idle, s=0.0, p=2.0)
    if delta > 0.0:
        curvatures = np.linspace(0.85, 0.08, 60)
        base, gain = _pair_area_terms(idle, 1.0, curvatures)
        with np.errstate(divide="ignore"):
            t_values = np.where(
                np.abs(gain) > 1e-15, (target_area - base) / gain, np.inf
            )
        feasible = (t_values >= 0.0) & (t_values <= 1.0)
        if not np.any(feasible):
            raise CurveSolveError(f"EP {ep:.3f} too low for idle {idle:.3f}")
        i = int(np.argmax(feasible))
        return _candidate(idle, 1.0, float(curvatures[i]), float(t_values[i]))
    curvatures = np.linspace(1.05, 30.0, 240)
    base, gain = _pair_area_terms(idle, 1.0, curvatures)
    with np.errstate(divide="ignore"):
        t_values = np.where(
            np.abs(gain) > 1e-15, (target_area - base) / gain, np.inf
        )
    feasible = (
        (t_values > 0.0)
        & (t_values <= 1.0)
        & ((1.0 - idle) * t_values * (curvatures - 1.0) <= idle + 1e-12)
    )
    if not np.any(feasible):
        raise CurveSolveError(
            f"EP {ep:.3f} with peak at 100% unreachable at idle {idle:.3f}; "
            f"the efficiency peak must move to an interior utilization"
        )
    i = int(np.argmax(feasible))  # smallest feasible curvature
    return _candidate(idle, 1.0, float(curvatures[i]), float(t_values[i]))


def _solve_interior_peak_reference(
    ep: float,
    idle: float,
    target_area: float,
    peak_spot: float,
    spot_tolerance: float,
) -> PowerCurve:
    """Original interior-peak solver (pair areas recomputed per call)."""
    best: Optional[Tuple[float, float, float]] = None
    best_error = np.inf
    for low in _S_LOW_EXPONENTS:
        base, gain = _pair_area_terms(idle, low, _S_HIGH_EXPONENTS)
        with np.errstate(divide="ignore", invalid="ignore"):
            t_values = np.where(
                np.abs(gain) > 1e-15, (target_area - base) / gain, np.nan
            )
        feasible = (t_values > 1e-9) & (t_values <= 1.0)
        if not np.any(feasible):
            continue
        highs = _S_HIGH_EXPONENTS[feasible]
        ts = t_values[feasible]
        peaks = _approx_interior_peaks_reference(idle, low, highs, ts)
        errors = np.abs(peaks - peak_spot)
        i = int(np.argmin(errors))
        if errors[i] < best_error:
            best_error = float(errors[i])
            best = (low, float(highs[i]), float(ts[i]))
            if best_error < 2e-3:
                break
    if best is None:
        raise CurveSolveError(
            f"no feasible curve for EP {ep:.3f}, idle {idle:.3f}"
        )
    if best_error > spot_tolerance:
        raise CurveSolveError(
            f"peak spot {peak_spot:.0%} unreachable for EP {ep:.3f}, idle "
            f"{idle:.3f} (closest approach {best_error:.3f} away)"
        )
    low, high, t = best
    return _candidate(idle, low, high, t)


def solve_knee_curve_reference(
    ep: float,
    idle: float,
    peak_spot: float,
    min_margin: float = 0.004,
) -> GridCurve:
    """Original knee solver (full grid rebuilt every bisection step)."""
    if not 0.1 <= peak_spot <= 0.9 + 1e-9:
        raise CurveSolveError("knee curves are for interior peak spots")
    target_area = 1.0 - ep / 2.0
    if idle >= target_area - 1e-9:
        raise CurveSolveError(f"EP {ep:.3f} unreachable with idle {idle:.3f}")
    k_floor = idle / peak_spot + 1e-6
    k_ceiling = 1.0 / (1.0 + min_margin) - 1e-6
    if k_floor >= k_ceiling:
        raise CurveSolveError(
            f"idle {idle:.3f} too high for a knee at {peak_spot:.0%}"
        )

    def area(k: float, rise: float) -> float:
        return float(_TRAPZ_W @ _knee_points(idle, peak_spot, k, rise))

    for rise in _KNEE_RISE_LADDER:
        low, high = k_floor, k_ceiling
        if not area(low, rise) <= target_area <= area(high, rise):
            continue
        for _ in range(60):
            mid = 0.5 * (low + high)
            if area(mid, rise) < target_area:
                low = mid
            else:
                high = mid
        k = 0.5 * (low + high)
        curve = GridCurve(points=tuple(_knee_points(idle, peak_spot, k, rise)))
        rel = curve.ee_relative()[1:]
        order = np.argsort(rel)[::-1]
        peak_level = float(_GRID[1:][order[0]])
        margin = rel[order[0]] / rel[order[1]] - 1.0
        if abs(peak_level - peak_spot) < 1e-9 and margin >= min_margin:
            return curve
    raise CurveSolveError(
        f"no knee curve for EP {ep:.3f}, idle {idle:.3f}, spot {peak_spot:.0%}"
    )


def _assign_ep_targets_reference(
    stubs: List[_Stub],
    rng: np.random.Generator,
    structural_effects: bool = True,
) -> None:
    """Original EP-target pass (one scalar normal draw per stub)."""
    targets = _syn.targets
    for stub in stubs:
        if stub.pinned is not None:
            continue
        base = _syn._codename_ep_mean(stub)
        base += targets.YEAR_EP_TWEAK.get(stub.hw_year, 0.0)
        if structural_effects:
            base += targets.NODE_EP_BONUS.get(stub.nodes, 0.0)
            if stub.nodes == 1:
                base += targets.CHIP_EP_ADJUST[stub.chips_per_node]
            base += targets.MPC_EP_ADJUST[stub.mpc]
        spread = CATALOG[stub.codename].ep_spread
        ep = base + float(rng.normal(0.0, spread))
        low = 0.73 if stub.hw_year == 2016 else 0.19
        stub.ep_target = float(min(0.99, max(low, ep)))


def _assign_idle_fractions_reference(
    stubs: List[_Stub], rng: np.random.Generator
) -> None:
    """Original idle-fraction pass (one scalar normal draw per stub)."""
    for stub in stubs:
        if stub.pinned is not None and stub.pinned.idle_fraction is not None:
            stub.idle_fraction = stub.pinned.idle_fraction
            continue
        noise = 0.0 if stub.pinned is not None else float(rng.normal(0.0, 0.13))
        idle = _idle_from_ep(stub.ep_target) * math.exp(noise)
        idle = min(idle, 1.0 - stub.ep_target / 2.0 - 0.04)
        if stub.peak_spot >= 1.0 - 1e-9:
            idle = min(idle, 2.0 * (1.0 - stub.ep_target) - 0.02)
        stub.idle_fraction = float(min(0.93, max(0.03, idle)))


def _noisy_levels_reference(
    stub: _Stub,
    power_points: np.ndarray,
    peak_power: float,
    max_ops: float,
    rng: np.random.Generator,
) -> Tuple[List[LoadLevel], float]:
    """Original measurement pass (interleaved scalar draws per level)."""
    tie = stub.pinned.tie_peak_spots if stub.pinned is not None else False
    for attempt in range(12):
        damping = 1.0 if attempt < 6 else 0.5 ** (attempt - 5)
        powers = {}
        opses = {}
        for load, p_norm in zip(_LEVEL_GRID[1:], power_points[1:]):
            load = float(round(load, 1))
            power_noise = 1.0 + float(rng.normal(0.0, 0.0015 * damping))
            ops_noise = 1.0 + float(rng.normal(0.0, 0.002 * damping))
            powers[load] = peak_power * float(p_norm) * power_noise
            opses[load] = max_ops * load * ops_noise
        if tie:
            opses[0.9] = max_ops * 0.9
            opses[0.8] = max_ops * 0.8
            powers[0.9] = powers[0.8] * (0.9 / 0.8)
        idle_noise = 1.0 + float(rng.normal(0.0, 0.0015))
        idle_w = peak_power * float(power_points[0]) * idle_noise

        efficiencies = {load: opses[load] / powers[load] for load in powers}
        ranked = sorted(efficiencies.values(), reverse=True)
        best = ranked[0]
        spots = sorted(
            load
            for load, value in efficiencies.items()
            if value >= best * (1.0 - 1e-9)
        )
        expected = stub.peak_spot
        if tie:
            if spots and abs(spots[0] - 0.8) < 1e-9:
                break
        elif (
            spots
            and abs(spots[0] - expected) < 1e-9
            and (len(ranked) < 2 or ranked[1] <= best * (1.0 - 2e-3))
        ):
            break
    levels = [
        LoadLevel(
            target_load=float(load),
            ssj_ops=float(opses[float(round(load, 1))]),
            average_power_w=float(powers[float(round(load, 1))]),
        )
        for load in TARGET_LOADS_DESCENDING
    ]
    return levels, float(idle_w)


#: (module, attribute, replacement) triples swapped in by the context
#: manager below.  The live call sites all resolve these names through
#: their module globals, so the swap reroutes them without any import
#: gymnastics.
_SWAPS = (
    (_cf, "_solve_peak_at_full", _solve_peak_at_full_reference),
    (_cf, "_solve_interior_peak", _solve_interior_peak_reference),
    (_cf, "solve_knee_curve", solve_knee_curve_reference),
    (_syn, "_assign_ep_targets", _assign_ep_targets_reference),
    (_syn, "_assign_idle_fractions", _assign_idle_fractions_reference),
    (_syn, "_noisy_levels", _noisy_levels_reference),
)


@contextmanager
def reference_kernels():
    """Run the corpus generator with the pre-vectorization kernels."""
    saved = [(module, name, getattr(module, name)) for module, name, _ in _SWAPS]
    try:
        for module, name, replacement in _SWAPS:
            setattr(module, name, replacement)
        yield
    finally:
        for module, name, original in saved:
            setattr(module, name, original)


def generate_corpus_reference(
    seed: int = 2016, structural_effects: bool = True
) -> Corpus:
    """The full generator, forced onto the original scalar kernels."""
    with reference_kernels():
        return _syn.generate_corpus(seed, structural_effects)


def results_equal(a: SpecPowerResult, b: SpecPowerResult) -> bool:
    """Exact (bit-level) equality of two corpus records."""
    if (
        a.result_id != b.result_id
        or a.vendor != b.vendor
        or a.model != b.model
        or a.form_factor != b.form_factor
        or a.hw_year != b.hw_year
        or a.published_year != b.published_year
        or a.codename != b.codename
        or a.nodes != b.nodes
        or a.chips_per_node != b.chips_per_node
        or a.cores_per_chip != b.cores_per_chip
        or a.memory_gb != b.memory_gb
        or a.active_idle_power_w != b.active_idle_power_w
        or a.tie_peak_spots != b.tie_peak_spots
        or len(a.levels) != len(b.levels)
    ):
        return False
    return all(
        la.target_load == lb.target_load
        and la.ssj_ops == lb.ssj_ops
        and la.average_power_w == lb.average_power_w
        for la, lb in zip(a.levels, b.levels)
    )
