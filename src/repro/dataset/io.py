"""CSV persistence for the corpus.

The on-disk layout is one wide row per result: identity and
configuration columns followed by the eleven power readings and ten
throughput readings.  The format round-trips exactly (validated by the
I/O tests) and is convenient for inspection with standard tooling.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from repro.core.faults import fire
from repro.dataset.corpus import Corpus
from repro.dataset.schema import LoadLevel, SpecPowerResult
from repro.metrics.ep import TARGET_LOADS_DESCENDING
from repro.power.microarch import Codename

_IDENTITY_COLUMNS = [
    "result_id",
    "vendor",
    "model",
    "form_factor",
    "hw_year",
    "published_year",
    "codename",
    "nodes",
    "chips_per_node",
    "cores_per_chip",
    "memory_gb",
    "tie_peak_spots",
]

_LOAD_TAGS = [f"{int(round(load * 100)):03d}" for load in TARGET_LOADS_DESCENDING]


def _header() -> List[str]:
    columns = list(_IDENTITY_COLUMNS)
    columns += [f"ops_{tag}" for tag in _LOAD_TAGS]
    columns += [f"power_{tag}" for tag in _LOAD_TAGS]
    columns.append("power_idle")
    return columns


def save_corpus(corpus: Corpus, path: Union[str, Path]) -> None:
    """Write the corpus to ``path`` as CSV."""
    fire("dataset.io")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_header())
        for result in corpus:
            by_load = {level.target_load: level for level in result.levels}
            ordered = [by_load[load] for load in TARGET_LOADS_DESCENDING]
            row = [
                result.result_id,
                result.vendor,
                result.model,
                result.form_factor,
                result.hw_year,
                result.published_year,
                result.codename.value,
                result.nodes,
                result.chips_per_node,
                result.cores_per_chip,
                repr(result.memory_gb),
                int(result.tie_peak_spots),
            ]
            row += [repr(level.ssj_ops) for level in ordered]
            row += [repr(level.average_power_w) for level in ordered]
            row.append(repr(result.active_idle_power_w))
            writer.writerow(row)


def load_corpus(path: Union[str, Path]) -> Corpus:
    """Read a corpus previously written by :func:`save_corpus`."""
    fire("dataset.io")
    path = Path(path)
    codename_by_value = {codename.value: codename for codename in Codename}
    results = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != _header():
            raise ValueError(f"unexpected corpus CSV header in {path}")
        for row in reader:
            levels = [
                LoadLevel(
                    target_load=load,
                    ssj_ops=float(row[f"ops_{tag}"]),
                    average_power_w=float(row[f"power_{tag}"]),
                )
                for load, tag in zip(TARGET_LOADS_DESCENDING, _LOAD_TAGS)
            ]
            results.append(
                SpecPowerResult(
                    result_id=row["result_id"],
                    vendor=row["vendor"],
                    model=row["model"],
                    form_factor=row["form_factor"],
                    hw_year=int(row["hw_year"]),
                    published_year=int(row["published_year"]),
                    codename=codename_by_value[row["codename"]],
                    nodes=int(row["nodes"]),
                    chips_per_node=int(row["chips_per_node"]),
                    cores_per_chip=int(row["cores_per_chip"]),
                    memory_gb=float(row["memory_gb"]),
                    levels=levels,
                    active_idle_power_w=float(row["power_idle"]),
                    tie_peak_spots=bool(int(row["tie_peak_spots"])),
                )
            )
    return Corpus(results)
