"""Stable content fingerprints for results and corpora.

The artifact cache (:mod:`repro.core.cache`) keys every entry on the
corpus it was computed from, so corpus identity must be a *stable
content hash*: two corpora with identical records fingerprint
identically across processes and Python versions, and any change to
any field of any record (a different seed, an edited level, a swapped
codename) changes the digest.

Floats are serialized with :func:`repr`, which round-trips IEEE-754
doubles exactly, so the digest is bit-precise without being locale- or
format-sensitive.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable

from repro.dataset.schema import SpecPowerResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataset.corpus import Corpus

#: Bump when the serialized record layout below changes shape.
FINGERPRINT_VERSION = "1"


def _result_payload(result: SpecPowerResult) -> str:
    levels = ";".join(
        f"{repr(level.target_load)},{repr(level.ssj_ops)},"
        f"{repr(level.average_power_w)}"
        for level in result.sorted_levels()
    )
    return "|".join(
        (
            result.result_id,
            result.vendor,
            result.model,
            result.form_factor,
            str(result.hw_year),
            str(result.published_year),
            result.codename.value,
            str(result.nodes),
            str(result.chips_per_node),
            str(result.cores_per_chip),
            repr(result.memory_gb),
            repr(result.active_idle_power_w),
            str(result.tie_peak_spots),
            levels,
        )
    )


def result_fingerprint(result: SpecPowerResult) -> str:
    """Hex digest of one result's full content."""
    digest = hashlib.sha256()
    digest.update(FINGERPRINT_VERSION.encode())
    digest.update(_result_payload(result).encode())
    return digest.hexdigest()


def corpus_fingerprint(results: Iterable[SpecPowerResult]) -> str:
    """Hex digest of a whole corpus (or any iterable of results).

    Records are hashed sorted by ``result_id`` so the digest reflects
    *content*, not iteration order; :meth:`Corpus.fingerprint
    <repro.dataset.corpus.Corpus.fingerprint>` memoizes this.
    """
    digest = hashlib.sha256()
    digest.update(FINGERPRINT_VERSION.encode())
    for result in sorted(results, key=lambda r: r.result_id):
        digest.update(_result_payload(result).encode())
        digest.update(b"\n")
    return digest.hexdigest()
