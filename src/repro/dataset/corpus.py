"""The corpus: a queryable collection of SPECpower results.

The analyses in Sections III-V repeatedly slice the same population:
by hardware-availability year, by published year, by microarchitecture
family or codename, by node and chip counts, and by memory-per-core
ratio.  :class:`Corpus` provides those slices as cheap filtered views.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.dataset.schema import SpecPowerResult
from repro.power.microarch import Codename, Family


class Corpus:
    """An immutable, order-preserving collection of results.

    Lookup by id is O(1) through an index built at construction, and
    the whole filter API is *chainable*: every filter method
    (:meth:`filter`, :meth:`by_hw_year`, :meth:`by_published_year`,
    :meth:`by_hw_year_range`, :meth:`by_family`, :meth:`by_codename`,
    :meth:`single_node`, :meth:`multi_node`, :meth:`by_nodes`,
    :meth:`by_chips`, :meth:`by_memory_per_core`,
    :meth:`top_fraction_by`) takes only its selection criteria and
    returns a new ``Corpus`` view, so slices compose::

        corpus.by_hw_year_range(2013, 2016).single_node().by_chips(2)

    :meth:`fingerprint` returns a stable content hash of the member
    records (see :mod:`repro.dataset.fingerprint`); the artifact cache
    keys entries on it.
    """

    def __init__(self, results: Iterable[SpecPowerResult]):
        self._results: List[SpecPowerResult] = list(results)
        self._index: Dict[str, int] = {
            result.result_id: position
            for position, result in enumerate(self._results)
        }
        if len(self._index) != len(self._results):
            raise ValueError("duplicate result ids in corpus")
        self._fingerprint: Optional[str] = None
        self._columns = None

    # -- collection protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[SpecPowerResult]:
        return iter(self._results)

    def __getitem__(self, index: int) -> SpecPowerResult:
        return self._results[index]

    def __contains__(self, result_id: object) -> bool:
        return result_id in self._index

    def get(self, result_id: str) -> SpecPowerResult:
        """The result with this id (O(1)); raises ``KeyError`` if absent."""
        return self._results[self._index[result_id]]

    def fingerprint(self) -> str:
        """Stable sha256 content hash of the member records (memoized)."""
        if self._fingerprint is None:
            from repro.dataset.fingerprint import corpus_fingerprint

            self._fingerprint = corpus_fingerprint(self._results)
        return self._fingerprint

    def results(self) -> List[SpecPowerResult]:
        """A fresh list of the member results."""
        return list(self._results)

    def columns(self):
        """The lazily-built column store over this corpus (memoized).

        Returns a :class:`repro.dataset.columns.CorpusColumns` keyed on
        this corpus' content fingerprint; a cached store whose
        fingerprint no longer matches is rebuilt, so stale column data
        can never be served.  Filtered views are separate ``Corpus``
        objects and build their own stores.
        """
        from repro.dataset.columns import CorpusColumns

        fingerprint = self.fingerprint()
        if self._columns is None or self._columns.fingerprint != fingerprint:
            self._columns = CorpusColumns(self._results, fingerprint)
        return self._columns

    # -- filtering ---------------------------------------------------------------

    def filter(self, predicate: Callable[[SpecPowerResult], bool]) -> "Corpus":
        """A sub-corpus of the results satisfying the predicate."""
        return Corpus(result for result in self._results if predicate(result))

    def by_hw_year(self, year: int) -> "Corpus":
        """Results whose hardware became available in ``year``."""
        return self.filter(lambda r: r.hw_year == year)

    def by_published_year(self, year: int) -> "Corpus":
        """Results submitted in ``year``."""
        return self.filter(lambda r: r.published_year == year)

    def by_hw_year_range(self, first: int, last: int) -> "Corpus":
        """Results with hardware years in [first, last]."""
        return self.filter(lambda r: first <= r.hw_year <= last)

    def by_family(self, family: Family) -> "Corpus":
        """Results of one microarchitecture family (Fig. 6 grouping)."""
        return self.filter(lambda r: r.family is family)

    def by_codename(self, codename: Codename) -> "Corpus":
        """Results of one codename (Fig. 7 grouping)."""
        return self.filter(lambda r: r.codename is codename)

    def single_node(self) -> "Corpus":
        """The single-node systems (403 of 477 in the calibrated corpus)."""
        return self.filter(lambda r: r.is_single_node)

    def multi_node(self) -> "Corpus":
        """The multi-node systems."""
        return self.filter(lambda r: not r.is_single_node)

    def by_nodes(self, nodes: int) -> "Corpus":
        """Results with exactly ``nodes`` nodes."""
        return self.filter(lambda r: r.nodes == nodes)

    def by_chips(self, chips_per_node: int) -> "Corpus":
        """Results with exactly ``chips_per_node`` sockets per node."""
        return self.filter(lambda r: r.chips_per_node == chips_per_node)

    def by_memory_per_core(
        self, ratio: float, tolerance: float = 0.02
    ) -> "Corpus":
        """Results in the Table I bucket around ``ratio`` GB/core."""
        return self.filter(
            lambda r: abs(r.memory_per_core_gb - ratio) <= tolerance
        )

    # -- enumeration ---------------------------------------------------------------

    def hw_years(self) -> List[int]:
        """Distinct hardware-availability years, ascending."""
        return sorted({result.hw_year for result in self._results})

    def published_years(self) -> List[int]:
        """Distinct published years, ascending."""
        return sorted({result.published_year for result in self._results})

    def families(self) -> List[Family]:
        """Distinct microarchitecture families present."""
        seen = {result.family for result in self._results}
        return sorted(seen, key=lambda family: family.value)

    def codenames(self) -> List[Codename]:
        """Distinct codenames present."""
        seen = {result.codename for result in self._results}
        return sorted(seen, key=lambda codename: codename.value)

    def node_counts(self) -> List[int]:
        """Distinct node counts present, ascending."""
        return sorted({result.nodes for result in self._results})

    def chip_counts(self) -> List[int]:
        """Distinct chips-per-node values present, ascending."""
        return sorted({result.chips_per_node for result in self._results})

    # -- aggregate views -------------------------------------------------------------

    def count_by_hw_year(self) -> Dict[int, int]:
        """Result counts per hardware year."""
        return dict(Counter(result.hw_year for result in self._results))

    def count_by_family(self) -> Dict[Family, int]:
        """Result counts per family (Fig. 6)."""
        return dict(Counter(result.family for result in self._results))

    def count_by_codename(self) -> Dict[Codename, int]:
        """Result counts per codename."""
        return dict(Counter(result.codename for result in self._results))

    def eps(self) -> List[float]:
        """Every member's EP, corpus order."""
        return [result.ep for result in self._results]

    def scores(self) -> List[float]:
        """Every member's overall score, corpus order."""
        return [result.overall_score for result in self._results]

    def idle_fractions(self) -> List[float]:
        """Every member's idle power percentage, corpus order."""
        return [result.idle_fraction for result in self._results]

    def peak_ees(self) -> List[float]:
        """Every member's peak efficiency, corpus order."""
        return [result.peak_ee for result in self._results]

    def top_fraction_by(
        self, key: Callable[[SpecPowerResult], float], fraction: float
    ) -> "Corpus":
        """The top ``fraction`` of the corpus under ``key`` (descending)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must lie in (0, 1]")
        count = max(1, round(len(self._results) * fraction))
        ranked = sorted(self._results, key=key, reverse=True)
        return Corpus(ranked[:count])
