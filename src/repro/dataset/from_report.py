"""Bridge: simulated benchmark runs become corpus-compatible results.

The paper's two data sources -- published FDRs and its own testbed
runs -- meet in its analysis tables.  This module performs the same
join for the reproduction: a :class:`~repro.ssj.report.BenchmarkReport`
produced by the simulator (for a Table II machine or any custom
server) converts into a :class:`~repro.dataset.schema.SpecPowerResult`,
so simulated hardware flows through every corpus analysis -- trends,
grouping, envelopes, placement -- unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.dataset.schema import LoadLevel, SpecPowerResult
from repro.hwexp.testbed import TestbedServer
from repro.power.microarch import Codename
from repro.ssj.report import BenchmarkReport

#: Codename stand-ins for the Table II processors.
_TESTBED_CODENAMES = {
    1: Codename.INTERLAGOS,      # AMD Opteron 6272
    2: Codename.SANDY_BRIDGE_EP,  # Xeon E5-2603
    3: Codename.IVY_BRIDGE_EP,    # Xeon E5-2620 v2
    4: Codename.HASWELL,          # Xeon E5-2620 v3
}


def result_from_report(
    report: BenchmarkReport,
    result_id: str,
    vendor: str,
    model: str,
    hw_year: int,
    codename: Codename,
    nodes: int = 1,
    chips_per_node: int = 2,
    cores_per_chip: int = 8,
    memory_gb: float = 64.0,
    form_factor: str = "2U",
    published_year: Optional[int] = None,
) -> SpecPowerResult:
    """Wrap a simulated benchmark run as a publishable result."""
    levels = [
        LoadLevel(
            target_load=level.target_load,
            ssj_ops=level.throughput_ops_per_s,
            average_power_w=level.average_power_w,
        )
        for level in report.levels
    ]
    return SpecPowerResult(
        result_id=result_id,
        vendor=vendor,
        model=model,
        form_factor=form_factor,
        hw_year=hw_year,
        published_year=published_year if published_year is not None else hw_year,
        codename=codename,
        nodes=nodes,
        chips_per_node=chips_per_node,
        cores_per_chip=cores_per_chip,
        memory_gb=memory_gb,
        levels=levels,
        active_idle_power_w=report.active_idle_power_w,
    )


def result_from_testbed_run(
    server: TestbedServer,
    report: BenchmarkReport,
    result_id: Optional[str] = None,
    memory_gb: Optional[float] = None,
) -> SpecPowerResult:
    """Wrap a Table II server's simulated run with its real identity."""
    return result_from_report(
        report,
        result_id=result_id or f"testbed-{server.number}",
        vendor=server.name.split()[0],
        model=server.name,
        hw_year=server.hw_year,
        codename=_TESTBED_CODENAMES[server.number],
        nodes=1,
        chips_per_node=server.sockets,
        cores_per_chip=server.cores_per_socket,
        memory_gb=memory_gb if memory_gb is not None else server.stock_memory_gb,
        form_factor="2U",
        published_year=server.hw_year + 1,
    )
