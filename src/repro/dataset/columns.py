"""Columnar store over a corpus: named numpy arrays, built lazily.

The per-record comprehensions in :mod:`repro.analysis` and the fleet
engines in :mod:`repro.cluster` repeatedly walk the same records and
pull the same attributes.  :class:`CorpusColumns` materializes those
attributes once, as named arrays in corpus order:

* scalar metric columns (``ep``, ``score``, ``peak_ee``, ...) gathered
  from each record's cached derived metrics -- bit-identical to the
  per-record properties, never re-derived;
* configuration columns (``hw_year``, ``nodes``, ``memory_gb``, ...);
* object columns (``result_id``, ``codename``, ``family``);
* the ragged ``peak_ee_spots`` lists in CSR form
  (:meth:`~CorpusColumns.peak_spot_values` plus
  :meth:`~CorpusColumns.peak_spot_offsets`);
* the fleet curve matrices (:meth:`~CorpusColumns.load_grid`,
  :meth:`~CorpusColumns.power_matrix`,
  :meth:`~CorpusColumns.ops_matrix`) consumed by
  :class:`repro.cluster.fleet_arrays.FleetArrays`.

Every array is memoized on first access and write-protected.  The
store is keyed on the owning corpus' content fingerprint --
:meth:`repro.dataset.corpus.Corpus.columns` rebuilds it whenever the
stored fingerprint no longer matches the corpus.

:class:`ColumnSpillStore` adds an out-of-core tier for the sharded
fleet engine: fingerprint-keyed ``.npy`` column files written
atomically and read back as read-only memory maps, so a
million-server fleet's derived vectors live on disk (and in the page
cache) instead of resident memory, and process-pool workers map the
same bytes zero-copy.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.dataset.schema import SpecPowerResult

#: name -> (dtype, attribute getter) for the per-record columns.
_COLUMN_SPECS = {
    "ep": (np.float64, lambda r: r.ep),
    "score": (np.float64, lambda r: r.overall_score),
    "idle_fraction": (np.float64, lambda r: r.idle_fraction),
    "peak_ee": (np.float64, lambda r: r.peak_ee),
    "primary_peak_spot": (np.float64, lambda r: r.primary_peak_spot),
    "memory_per_core_gb": (np.float64, lambda r: r.memory_per_core_gb),
    "memory_gb": (np.float64, lambda r: r.memory_gb),
    "hw_year": (np.int64, lambda r: r.hw_year),
    "published_year": (np.int64, lambda r: r.published_year),
    "nodes": (np.int64, lambda r: r.nodes),
    "chips_per_node": (np.int64, lambda r: r.chips_per_node),
    "cores_per_chip": (np.int64, lambda r: r.cores_per_chip),
    "result_id": (object, lambda r: r.result_id),
    "codename": (object, lambda r: r.codename),
    "family": (object, lambda r: r.family),
}


class CorpusColumns:
    """Named column arrays over one frozen snapshot of records.

    Columns are built on first request and cached; the scalar metric
    columns gather the records' *cached* derived properties, so every
    float is exactly the one the per-record code paths see.
    """

    def __init__(self, results: Sequence[SpecPowerResult], fingerprint: str):
        self._results = tuple(results)
        self._fingerprint = fingerprint
        self._arrays: Dict[str, np.ndarray] = {}

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the records this store was built from."""
        return self._fingerprint

    def __len__(self) -> int:
        return len(self._results)

    def array(self, name: str) -> np.ndarray:
        """The named column, corpus order, memoized and write-protected."""
        if name not in _COLUMN_SPECS:
            raise KeyError(
                f"unknown column {name!r}; choose from {sorted(_COLUMN_SPECS)}"
            )
        if name not in self._arrays:
            dtype, getter = _COLUMN_SPECS[name]
            values = [getter(result) for result in self._results]
            if dtype is object:
                column = np.empty(len(values), dtype=object)
                column[:] = values
            else:
                column = np.array(values, dtype=dtype)
            column.setflags(write=False)
            self._arrays[name] = column
        return self._arrays[name]

    # -- ragged peak-spot lists, CSR form ----------------------------------------

    def peak_spot_values(self) -> np.ndarray:
        """All ``peak_ee_spots`` concatenated, corpus order."""
        return self._csr()[0]

    def peak_spot_offsets(self) -> np.ndarray:
        """``(N + 1,)`` offsets: record ``i`` owns ``values[o[i]:o[i+1]]``."""
        return self._csr()[1]

    def _csr(self):
        if "peak_spot_values" not in self._arrays:
            counts = np.zeros(len(self._results) + 1, dtype=np.int64)
            flat = []
            for position, result in enumerate(self._results):
                spots = result.peak_ee_spots
                counts[position + 1] = len(spots)
                flat.extend(spots)
            values = np.array(flat, dtype=np.float64)
            offsets = np.cumsum(counts, dtype=np.int64)
            values.setflags(write=False)
            offsets.setflags(write=False)
            self._arrays["peak_spot_values"] = values
            self._arrays["peak_spot_offsets"] = offsets
        return (
            self._arrays["peak_spot_values"],
            self._arrays["peak_spot_offsets"],
        )

    # -- fleet curve matrices ----------------------------------------------------

    def load_grid(self) -> np.ndarray:
        """The shared measurement grid, ``[0.0] + target loads``.

        Raises ``ValueError`` when the corpus is empty or the records
        do not share one grid (the columnar fleet path needs both).
        """
        return self._matrices()[0]

    def power_matrix(self) -> np.ndarray:
        """``(N, K)`` wall power over the grid (idle in column 0)."""
        return self._matrices()[1]

    def ops_matrix(self) -> np.ndarray:
        """``(N, K)`` throughput over the grid (0 at idle)."""
        return self._matrices()[2]

    def _matrices(self):
        if "load_grid" not in self._arrays:
            if not self._results:
                raise ValueError(
                    "cannot build curve matrices from an empty corpus"
                )
            grids = [
                tuple(level.target_load for level in r.sorted_levels())
                for r in self._results
            ]
            if any(grid != grids[0] for grid in grids[1:]):
                raise ValueError(
                    "heterogeneous measurement grids; the columnar path "
                    "needs every record on the same target loads"
                )
            load_grid = np.array([0.0] + list(grids[0]))
            power = np.array(
                [
                    [r.active_idle_power_w]
                    + [level.average_power_w for level in r.sorted_levels()]
                    for r in self._results
                ]
            )
            ops = np.array(
                [
                    [0.0] + [level.ssj_ops for level in r.sorted_levels()]
                    for r in self._results
                ]
            )
            for array in (load_grid, power, ops):
                array.setflags(write=False)
            self._arrays["load_grid"] = load_grid
            self._arrays["power_matrix"] = power
            self._arrays["ops_matrix"] = ops
        return (
            self._arrays["load_grid"],
            self._arrays["power_matrix"],
            self._arrays["ops_matrix"],
        )

    # -- disk-spill tier ---------------------------------------------------------

    def spill_matrices(self, store: "ColumnSpillStore"):
        """Spill the curve matrices to ``store`` and return memmaps.

        Writes ``load_grid``/``power_matrix``/``ops_matrix`` under this
        store's fingerprint key (skipping files already present) and
        returns the three arrays re-opened as read-only memory maps.
        The in-memory copies stay memoized; callers that want the
        out-of-core representation hold on to the returned maps.
        """
        named = {
            "load_grid": self.load_grid(),
            "power_matrix": self.power_matrix(),
            "ops_matrix": self.ops_matrix(),
        }
        return tuple(
            store.ensure(self._fingerprint, name, lambda a=array: a)
            for name, array in named.items()
        )

    def adopt_matrices(self, named: Dict[str, np.ndarray]) -> None:
        """Adopt externally shared curve matrices as this store's own.

        The serve worker tier calls this with read-only memmaps (or
        shared-memory views) published by its parent process, so a
        worker's fleet path touches the parent's physical pages
        instead of duplicating the matrices per process.  ``named``
        must provide all of ``load_grid``/``power_matrix``/
        ``ops_matrix``; values are write-protected and bit-identical
        to what :meth:`load_grid` and friends would have built.
        """
        expected = ("load_grid", "power_matrix", "ops_matrix")
        missing = [name for name in expected if name not in named]
        if missing:
            raise KeyError(
                f"adopt_matrices needs {expected}; missing {missing}"
            )
        for name in expected:
            array = named[name]
            if array.flags.writeable:
                array = array.view()
                array.setflags(write=False)
            self._arrays[name] = array

    def attach_spilled(self, store: "ColumnSpillStore") -> bool:
        """Attach this corpus' spilled curve matrices as memmaps.

        The zero-copy half of :meth:`spill_matrices`: re-opens the
        three matrices a parent process spilled under this corpus'
        fingerprint as read-only memory maps, so every process that
        attaches shares one set of page-cache bytes.  Returns ``False``
        (leaving the in-RAM build path untouched) when any file is
        absent.
        """
        names = ("load_grid", "power_matrix", "ops_matrix")
        if not all(store.has(self._fingerprint, name) for name in names):
            return False
        self.adopt_matrices(
            {name: store.load(self._fingerprint, name) for name in names}
        )
        return True


class ColumnSpillStore:
    """Fingerprint-keyed ``.npy`` files: the out-of-core column tier.

    Each array lives at ``<root>/<key>/<name>.npy`` where ``key`` is a
    content fingerprint (a corpus fingerprint, or the sharded engine's
    fleet-layout hash).  Writes go through a temporary file in the
    same directory followed by an atomic :func:`os.replace`, so a
    crashed or concurrent writer can never leave a torn column behind;
    reads open the file as a read-only memory map
    (``np.load(mmap_mode="r")``), so the data costs page cache rather
    than resident memory and forked pool workers share the same
    physical pages zero-copy.

    The default root is ``$REPRO_SPILL_DIR`` or
    ``<system tmp>/repro_spill``.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        if root is None:
            root = os.environ.get("REPRO_SPILL_DIR") or (
                Path(tempfile.gettempdir()) / "repro_spill"
            )
        self.root = Path(root)

    def path(self, key: str, name: str) -> Path:
        """Where the named column for ``key`` lives on disk."""
        return self.root / key / f"{name}.npy"

    def has(self, key: str, name: str) -> bool:
        """Whether the named column has been spilled for ``key``."""
        return self.path(key, name).is_file()

    def save(self, key: str, name: str, array: np.ndarray) -> Path:
        """Atomically persist ``array`` as ``<key>/<name>.npy``."""
        destination = self.path(key, name)
        destination.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(destination.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                np.save(stream, np.ascontiguousarray(array))
            os.replace(tmp_name, destination)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return destination

    def load(self, key: str, name: str, mmap: bool = True) -> np.ndarray:
        """Open a spilled column, as a read-only memmap by default."""
        return np.load(
            self.path(key, name),
            mmap_mode="r" if mmap else None,
            allow_pickle=False,
        )

    def ensure(
        self,
        key: str,
        name: str,
        build: Callable[[], np.ndarray],
        mmap: bool = True,
    ) -> np.ndarray:
        """Load the column, building and spilling it first if absent."""
        if not self.has(key, name):
            self.save(key, name, build())
        return self.load(key, name, mmap=mmap)

    def clear(self, key: Optional[str] = None) -> int:
        """Delete spilled columns (one key, or everything); count files."""
        if key is not None:
            directories = [self.root / key]
        elif self.root.is_dir():
            directories = [p for p in self.root.iterdir() if p.is_dir()]
        else:
            directories = []
        removed = 0
        for directory in directories:
            if not directory.is_dir():
                continue
            for entry in sorted(directory.glob("*.npy")):
                entry.unlink()
                removed += 1
            try:
                directory.rmdir()
            except OSError:
                pass
        return removed
