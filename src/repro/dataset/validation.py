"""Corpus linting: integrity checks for externally supplied data.

Users can load their own result sets (CSV via :mod:`repro.dataset.io`,
bridged simulator runs via :mod:`repro.dataset.from_report`) and push
them through the analyses.  The analyses assume FDR-shaped data;
:func:`validate_corpus` checks those assumptions explicitly and returns
human-readable findings instead of letting a malformed record surface
as a cryptic numerical artifact three layers deeper.

Severity levels:

* ``error`` -- the record violates an assumption the metrics rely on
  (non-monotone power curve, throughput not tracking target load, EP
  outside its mathematical range);
* ``warning`` -- legal but suspicious (idle above 95% of peak power,
  published year far from availability, efficiency ties).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dataset.corpus import Corpus
from repro.dataset.schema import SpecPowerResult


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    result_id: str
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.severity}] {self.result_id}: {self.message}"


def _check_levels(result: SpecPowerResult, findings: List[Finding]) -> None:
    loads = [level.target_load for level in result.sorted_levels()]
    expected = [round(0.1 * i, 1) for i in range(1, 11)]
    if loads != expected:
        findings.append(
            Finding(
                result.result_id,
                "error",
                f"non-standard target loads {loads} (expected 10%..100%)",
            )
        )


def _check_power_monotone(result: SpecPowerResult, findings: List[Finding]) -> None:
    _loads, powers = result.curve()
    drops = [
        (a, b) for a, b in zip(powers, powers[1:]) if b < a * (1.0 - 0.02)
    ]
    if drops:
        findings.append(
            Finding(
                result.result_id,
                "error",
                f"power decreases with load at {len(drops)} step(s) "
                f"(beyond metering tolerance)",
            )
        )


def _check_throughput_tracks_load(
    result: SpecPowerResult, findings: List[Finding]
) -> None:
    levels = result.sorted_levels()
    top = levels[-1]
    implied_max = top.ssj_ops / top.target_load
    for level in levels:
        expected = implied_max * level.target_load
        if expected <= 0:
            continue
        if abs(level.ssj_ops - expected) > 0.25 * expected:
            findings.append(
                Finding(
                    result.result_id,
                    "error",
                    f"throughput at {level.target_load:.0%} off the target "
                    f"by {(level.ssj_ops / expected - 1):+.0%}",
                )
            )
            return


def _check_ep_range(result: SpecPowerResult, findings: List[Finding]) -> None:
    if not 0.0 <= result.ep < 2.0:
        findings.append(
            Finding(
                result.result_id,
                "error",
                f"EP {result.ep:.3f} outside [0, 2)",
            )
        )
    bound = 2.0 * (1.0 - result.idle_fraction)
    if result.ep > bound + 1e-6:
        findings.append(
            Finding(
                result.result_id,
                "error",
                f"EP {result.ep:.3f} exceeds the idle bound {bound:.3f}",
            )
        )


def _check_suspicious(result: SpecPowerResult, findings: List[Finding]) -> None:
    if result.idle_fraction > 0.95:
        findings.append(
            Finding(
                result.result_id,
                "warning",
                f"idle power is {result.idle_fraction:.0%} of peak",
            )
        )
    lag = result.publication_lag_years
    if lag > 6 or lag < -1:
        findings.append(
            Finding(
                result.result_id,
                "warning",
                f"publication lag of {lag} years is outside the published "
                f"population's range",
            )
        )
    if len(result.peak_ee_spots) > 2:
        findings.append(
            Finding(
                result.result_id,
                "warning",
                f"{len(result.peak_ee_spots)} tied peak-efficiency levels",
            )
        )
    if result.memory_per_core_gb > 32.0:
        findings.append(
            Finding(
                result.result_id,
                "warning",
                f"{result.memory_per_core_gb:.1f} GB/core is implausibly high",
            )
        )


def validate_result(result: SpecPowerResult) -> List[Finding]:
    """Lint one result."""
    findings: List[Finding] = []
    _check_levels(result, findings)
    _check_power_monotone(result, findings)
    _check_throughput_tracks_load(result, findings)
    _check_ep_range(result, findings)
    _check_suspicious(result, findings)
    return findings


def validate_corpus(corpus: Corpus) -> List[Finding]:
    """Lint every result; an empty list means a clean corpus."""
    findings: List[Finding] = []
    for result in corpus:
        findings.extend(validate_result(result))
    return findings


def errors_only(findings: List[Finding]) -> List[Finding]:
    """Just the error-severity findings."""
    return [finding for finding in findings if finding.severity == "error"]
