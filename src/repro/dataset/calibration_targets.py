"""Calibration targets transcribed from the paper.

Every constant in this module is a number the paper states (or a value
reconstructed from percentages it states -- each such reconstruction is
annotated).  The synthesis pipeline treats these tables as ground
truth; the benchmark harness re-derives the paper's figures from the
generated corpus and checks them against the same tables.

Reconstruction notes
--------------------
* ``YEAR_COUNTS``: the paper gives 477 total, 27.4% (=> 131) made in
  2012, 18 servers in 2016Q1-Q3, and peak-spot shares that pin the
  2013-2016 interval at 56 servers (13/56 = 23.21%, 20/56 = 35.71%,
  15/56 = 26.79% match Section IV.A exactly).  Within those anchors the
  per-year split follows the published-results growth curve, with the
  thin years (2004-2006, 2014) the paper calls out kept thin.
* ``CODENAME_COUNTS``: Fig. 6/7 legends give Netburst 3, Sandy Bridge
  EN 22, and family totals Nehalem 152 / Sandy Bridge 137; the
  remaining splits are chosen to respect both the family totals and the
  year anchors.  (The extraction of Fig. 6's remaining counts is
  partially garbled; DESIGN.md records the choice.)
* ``PEAK_SPOT_YEAR_COUNTS``: Section IV.A gives the global shares
  (69.25% @100, 13.81% @70, 11.72% @80, 3.35% @90, 1.88% @60), the
  2016 breakdown (3/10/5), the interval shares, and "before 2010 all
  servers peak at 100%".  The table satisfies every one of those
  constraints simultaneously (330/66/56/16/9 servers).
* ``EQ2_RATE``: the PDF extraction drops Eq. 2's exponent; the paper's
  worked example (idle 5% => EP 1.17) recovers k = -2.06, consistent
  with the stated EP -> 1.297 asymptote at idle = 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.power.microarch import Codename

#: Total valid results analysed by the paper.
TOTAL_SERVERS = 477

#: Results whose published year differs from hardware availability
#: (15.5% of 477).
REORGANIZED_SERVERS = 74

#: Eq. 2 constants: EP = EQ2_AMPLITUDE * exp(EQ2_RATE * idle_fraction).
EQ2_AMPLITUDE = 1.2969
EQ2_RATE = -2.06

#: Paper-reported correlations.
CORR_EP_IDLE = -0.92
CORR_EP_SCORE = 0.741
EQ2_R_SQUARED = 0.892

#: Hardware-availability-year counts (reconstructed; see module notes).
YEAR_COUNTS: Dict[int, int] = {
    2004: 1,
    2005: 2,
    2006: 2,
    2007: 20,
    2008: 52,
    2009: 62,
    2010: 65,
    2011: 86,
    2012: 131,
    2013: 20,
    2014: 6,
    2015: 12,
    2016: 18,
}

#: Per-year (codename -> count) allocation.  Row sums equal
#: ``YEAR_COUNTS``; column sums equal ``CODENAME_COUNTS``.
YEAR_CODENAME_COUNTS: Dict[int, Dict[Codename, int]] = {
    2004: {Codename.NETBURST: 1},
    2005: {Codename.NETBURST: 2},
    2006: {Codename.CORE: 2},
    2007: {Codename.CORE: 18, Codename.UNKNOWN: 2},
    2008: {
        Codename.CORE: 2,
        Codename.PENRYN: 34,
        Codename.YORKFIELD: 10,
        Codename.BARCELONA: 4,
        Codename.UNKNOWN: 2,
    },
    2009: {
        Codename.PENRYN: 6,
        Codename.YORKFIELD: 6,
        Codename.NEHALEM_EP: 30,
        Codename.LYNNFIELD: 12,
        Codename.ISTANBUL: 6,
        Codename.UNKNOWN: 2,
    },
    2010: {
        Codename.NEHALEM_EP: 12,
        Codename.NEHALEM_EX: 8,
        Codename.WESTMERE: 20,
        Codename.WESTMERE_EP: 12,
        Codename.MAGNY_COURS: 8,
        Codename.UNKNOWN: 5,
    },
    2011: {
        Codename.WESTMERE: 6,
        Codename.WESTMERE_EP: 52,
        Codename.SANDY_BRIDGE: 15,
        Codename.INTERLAGOS: 9,
        Codename.UNKNOWN: 4,
    },
    2012: {
        Codename.SANDY_BRIDGE: 15,
        Codename.SANDY_BRIDGE_EP: 50,
        Codename.SANDY_BRIDGE_EN: 22,
        Codename.IVY_BRIDGE: 21,
        Codename.ABU_DHABI: 7,
        Codename.SEOUL: 5,
        Codename.UNKNOWN: 11,
    },
    2013: {
        Codename.IVY_BRIDGE: 6,
        Codename.IVY_BRIDGE_EP: 4,
        Codename.HASWELL: 9,
        Codename.UNKNOWN: 1,
    },
    2014: {Codename.IVY_BRIDGE_EP: 4, Codename.HASWELL: 2},
    2015: {Codename.HASWELL: 9, Codename.BROADWELL: 2, Codename.SKYLAKE: 1},
    2016: {
        Codename.HASWELL: 10,
        Codename.BROADWELL: 3,
        Codename.SKYLAKE: 2,
        Codename.UNKNOWN: 3,
    },
}

#: Additive per-year EP drift on top of the codename mean.  Captures
#: platform-level (not CPU-level) effects: later steppings and board
#: revisions idle lower (Section III.B notes EP "recovers in 2015 and
#: 2016"), early platforms of a codename idle higher.  The 2013/-0.025
#: and 2014/+0.06 pair realizes the paper's Fig. 3 anomaly: average EP
#: falls from 2012 through 2014 while the 2014 *median* still rises
#: above 2013's.
YEAR_EP_TWEAK: Dict[int, float] = {
    2004: 0.16,
    2006: 0.03,
    2007: 0.03,
    2008: 0.025,
    2010: 0.035,
    2012: 0.01,
    2013: -0.025,
    2014: 0.09,
    2015: 0.0,
    2016: 0.005,
}

#: Average overall SPECpower score per hardware-availability year
#: (ssj_ops per watt).  Anchored to Fig. 4's range: low hundreds before
#: 2008 and ~11-12k for 2016 (the Fig. 1 exemplar server scores 12212).
YEAR_SCORE_BASE: Dict[int, float] = {
    2004: 180.0,
    2005: 220.0,
    2006: 320.0,
    2007: 500.0,
    2008: 820.0,
    2009: 1500.0,
    2010: 2200.0,
    2011: 3100.0,
    2012: 4400.0,
    2013: 5100.0,
    2014: 5800.0,
    2015: 9200.0,
    2016: 11200.0,
}

#: Peak-efficiency-spot allocation per year: {year: {spot: count}}.
#: Satisfies the Section IV.A constraints listed in the module notes.
PEAK_SPOT_YEAR_COUNTS: Dict[int, Dict[float, int]] = {
    2004: {1.0: 1},
    2005: {1.0: 2},
    2006: {1.0: 2},
    2007: {1.0: 20},
    2008: {1.0: 52},
    2009: {1.0: 62},
    2010: {1.0: 58, 0.9: 3, 0.8: 3, 0.7: 1},
    2011: {1.0: 70, 0.9: 5, 0.8: 6, 0.7: 5},
    2012: {1.0: 50, 0.9: 5, 0.8: 27, 0.7: 45, 0.6: 4},
    2013: {1.0: 5, 0.9: 1, 0.8: 8, 0.7: 6},
    2014: {1.0: 2, 0.8: 1, 0.7: 2, 0.6: 1},
    2015: {1.0: 3, 0.9: 2, 0.8: 1, 0.7: 2, 0.6: 4},
    2016: {1.0: 3, 0.8: 10, 0.7: 5},
}

#: Paper-stated global peak-spot shares (Section IV.A).
PEAK_SPOT_SHARES = {1.0: 0.6925, 0.9: 0.0335, 0.8: 0.1172, 0.7: 0.1381, 0.6: 0.0188}

#: Memory-per-core histogram of Table I (430 of the 477 servers).
MEMORY_PER_CORE_COUNTS: Dict[float, int] = {
    0.67: 15,
    1.0: 153,
    1.33: 32,
    1.5: 68,
    1.78: 13,
    2.0: 123,
    4.0: 26,
}

#: Ratios used for the 47 servers outside Table I's seven buckets.
OTHER_MEMORY_PER_CORE: Tuple[float, ...] = (0.5, 2.67, 3.0, 5.33, 8.0)

#: EP adjustment and EE factor by memory-per-core bucket (Fig. 17:
#: EP peaks at 1.5 GB/core, EE at 1.78 GB/core).
MPC_EP_ADJUST: Dict[float, float] = {
    0.5: -0.07,
    0.67: -0.06,
    1.0: -0.02,
    1.33: -0.01,
    1.5: 0.045,
    1.78: 0.01,
    2.0: 0.0,
    2.67: -0.01,
    3.0: -0.02,
    4.0: -0.03,
    5.33: -0.04,
    8.0: -0.05,
}
MPC_EE_FACTOR: Dict[float, float] = {
    0.5: 0.80,
    0.67: 0.84,
    1.0: 0.96,
    1.33: 0.97,
    1.5: 1.00,
    1.78: 1.09,
    2.0: 1.00,
    2.67: 0.97,
    3.0: 0.95,
    4.0: 0.90,
    5.33: 0.86,
    8.0: 0.82,
}

#: Single-node chip-count histogram (Section III.E: 403 single-node
#: servers; 77/284/36/6 with 1/2/4/8 chips).
SINGLE_NODE_CHIP_COUNTS: Dict[int, int] = {1: 77, 2: 284, 4: 36, 8: 6}

#: EP adjustment and EE factor by chip count (Fig. 14: 2 chips best for
#: EE and average EP; EP and EE fall monotonically beyond 2 chips).
CHIP_EP_ADJUST: Dict[int, float] = {1: -0.022, 2: 0.022, 4: -0.05, 8: -0.10}
CHIP_EE_FACTOR: Dict[int, float] = {1: 0.89, 2: 1.06, 4: 0.90, 8: 0.78}

#: Multi-node population: 74 servers (477 - 403).
MULTI_NODE_COUNTS: Dict[int, int] = {2: 40, 4: 20, 8: 6, 16: 8}

#: EP bonus by node count (Fig. 13: economies of scale; median EP rises
#: monotonically with nodes).
NODE_EP_BONUS: Dict[int, float] = {1: 0.0, 2: 0.03, 4: 0.055, 8: 0.075, 16: 0.10}

#: EE factor by node count (Fig. 13 also shows efficiency improving
#: with scale: shared chassis, fans, and PSUs amortize better).
NODE_EE_FACTOR: Dict[int, float] = {1: 1.0, 2: 1.10, 4: 1.22, 8: 1.30, 16: 1.38}

#: Years the multi-node servers of each size were released in.  The
#: 8-node group mixes two old Westmere clusters with four Haswell-era
#: units so that the *average* EP dips at 8 nodes while the *median*
#: stays above the 4-node value, exactly the Fig. 13 anomaly.  The
#: 2-node group skews older than the 4-node group so the median EP
#: climbs monotonically with node count.
MULTI_NODE_YEAR_PLAN: Dict[int, List[int]] = {
    2: [2010] * 6 + [2011] * 14 + [2012] * 14 + [2013] * 3 + [2015] + [2016] * 2,
    4: [2011] * 10 + [2012] * 10,
    8: [2010] * 2 + [2013] * 4,
    16: [2012] * 8,
}

#: Publication-lag plan: how many of the 74 reorganized results were
#: published N years after (or, for -1, before) hardware availability.
PUBLICATION_LAG_COUNTS: Dict[int, int] = {1: 50, 2: 12, 3: 5, 4: 3, 5: 2, 6: 1, -1: 1}


@dataclass(frozen=True)
class PinnedServer:
    """A specific exemplar the paper names (Figs. 1, 9-12, Section III).

    ``power_curve`` overrides the family solve with explicit normalized
    power at the eleven measurement points; only the Fig. 10 server
    whose curve crosses the ideal line twice needs it.
    """

    key: str
    hw_year: int
    ep: float
    peak_spot: float
    codename: Codename
    form_factor: str = "2U"
    score: Optional[float] = None
    idle_fraction: Optional[float] = None
    tie_peak_spots: bool = False
    power_curve: Optional[Tuple[float, ...]] = None
    nodes: int = 1
    chips_per_node: int = 2
    cores_per_chip: Optional[int] = None


#: The eleven normalized power points (idle, 10%..100%) of the 2014
#: "1U server" in Fig. 10 whose EP curve crosses the ideal line twice
#: (between 50-60% and 70-80% utilization).  The trapezoid area is
#: exactly 0.57, i.e. EP = 0.86; the curve sits above the ideal line at
#: 50% (+0.0575), below it at 60% and 70% (-0.015, -0.025), and above
#: again at 80% (+0.025) -- hence the two crossings in the bands the
#: paper describes.  Its relative efficiency peaks at 70% utilization.
_DOUBLE_CROSSER: Tuple[float, ...] = (
    0.185, 0.28, 0.355, 0.425, 0.49, 0.5575, 0.585, 0.675, 0.825, 0.915, 1.0
)

#: Exemplars pinned to exact EP values so the selected-curve figures
#: (Figs. 10 and 12) and the envelope extremes (Figs. 9 and 11) land on
#: the published numbers.
PINNED_SERVERS: Tuple[PinnedServer, ...] = (
    PinnedServer("min-2008", 2008, 0.18, 1.0, Codename.PENRYN, form_factor="4U",
                 idle_fraction=0.88),
    PinnedServer("sel-2005", 2005, 0.30, 1.0, Codename.NETBURST, form_factor="Tower"),
    PinnedServer("sel-2009", 2009, 0.61, 1.0, Codename.NEHALEM_EP),
    PinnedServer("sel-2011", 2011, 0.75, 0.9, Codename.WESTMERE_EP),
    PinnedServer("tie-2011", 2011, 0.78, 0.8, Codename.WESTMERE_EP,
                 tie_peak_spots=True),
    PinnedServer("max-2012", 2012, 1.05, 0.7, Codename.SANDY_BRIDGE_EN,
                 form_factor="1U"),
    PinnedServer("sel-2014", 2014, 0.86, 0.7, Codename.IVY_BRIDGE_EP,
                 form_factor="1U", power_curve=_DOUBLE_CROSSER),
    PinnedServer("outlier-2014", 2014, 0.32, 1.0, Codename.HASWELL,
                 form_factor="Tower", score=1469.0, nodes=1, chips_per_node=1,
                 cores_per_chip=4),
    PinnedServer("sel-2016-075", 2016, 0.75, 1.0, Codename.SKYLAKE),
    PinnedServer("sel-2016-082", 2016, 0.82, 0.8, Codename.HASWELL),
    PinnedServer("sel-2016-087", 2016, 0.87, 0.8, Codename.HASWELL),
    PinnedServer("sel-2016-096", 2016, 0.96, 0.8, Codename.BROADWELL),
    PinnedServer("fig1-2016", 2016, 1.02, 0.7, Codename.BROADWELL,
                 score=12212.0),
)

#: Global EP extremes (Section III.A).
EP_MIN = 0.18
EP_MIN_YEAR = 2008
EP_MAX = 1.05
EP_MAX_YEAR = 2012
EP_MIN_2016 = 0.73

#: Year-over-year EP statistics the trend analysis must land on
#: (Fig. 3 narrative: 0.30 in 2005, +48.65% in 2009, +24.24% in 2012,
#: ~0.84 and seemingly stagnant by 2016).
YEAR_EP_AVG_TARGETS: Dict[int, float] = {
    2005: 0.30,
    2008: 0.37,
    2009: 0.55,
    2011: 0.66,
    2012: 0.82,
    2016: 0.84,
}
YEAR_EP_MEDIAN_TARGETS: Dict[int, float] = {
    2008: 0.37,
    2009: 0.56,
    2011: 0.67,
    2012: 0.85,
}

#: CDF landmarks (Fig. 5).
CDF_SHARE_06_07 = 0.2521
CDF_SHARE_08_09 = 0.1744
CDF_SHARE_BELOW_1 = 0.9958

#: Fig. 15 landmarks: 2-chip single-node servers vs. all servers.
TWO_CHIP_AVG_EP_GAIN = 0.0294
TWO_CHIP_AVG_EE_GAIN = 0.0413
TWO_CHIP_MEDIAN_EP_GAIN = 0.0118
TWO_CHIP_MEDIAN_EE_GAIN = 0.0626

#: Section IV.B asynchrony landmarks.
TOP10_EP_FROM_2012 = 0.917
TOP10_EE_FROM_2012 = 0.167
TOP10_OVERLAP = 0.146


#: Typical physical cores per chip for each codename (used for the
#: memory-per-core bookkeeping and the wattage model).
CORES_PER_CHIP: Dict[Codename, int] = {
    Codename.NETBURST: 1,
    Codename.CORE: 2,
    Codename.PENRYN: 4,
    Codename.YORKFIELD: 4,
    Codename.NEHALEM_EP: 4,
    Codename.LYNNFIELD: 4,
    Codename.NEHALEM_EX: 8,
    Codename.WESTMERE: 6,
    Codename.WESTMERE_EP: 6,
    Codename.SANDY_BRIDGE: 8,
    Codename.SANDY_BRIDGE_EP: 8,
    Codename.SANDY_BRIDGE_EN: 6,
    Codename.IVY_BRIDGE: 10,
    Codename.IVY_BRIDGE_EP: 10,
    Codename.HASWELL: 12,
    Codename.BROADWELL: 14,
    Codename.SKYLAKE: 14,
    Codename.BARCELONA: 4,
    Codename.ISTANBUL: 6,
    Codename.MAGNY_COURS: 12,
    Codename.INTERLAGOS: 16,
    Codename.ABU_DHABI: 16,
    Codename.SEOUL: 8,
    Codename.UNKNOWN: 6,
}

#: Full-load watts per core by hardware-availability year; the declining
#: trend is what makes absolute wattage plausible per era.
WATTS_PER_CORE: Dict[int, float] = {
    2004: 14.0,
    2005: 13.0,
    2006: 12.0,
    2007: 10.5,
    2008: 9.5,
    2009: 8.0,
    2010: 7.0,
    2011: 6.0,
    2012: 5.2,
    2013: 4.8,
    2014: 4.5,
    2015: 4.0,
    2016: 3.6,
}

#: Per-year EP estimate used for codename-unknown results.
YEAR_EP_ESTIMATE: Dict[int, float] = {
    2004: 0.40,
    2005: 0.30,
    2006: 0.32,
    2007: 0.33,
    2008: 0.37,
    2009: 0.55,
    2010: 0.60,
    2011: 0.66,
    2012: 0.82,
    2013: 0.77,
    2014: 0.73,
    2015: 0.80,
    2016: 0.84,
}

#: Vendor brands used for synthetic identities.
VENDOR_POOL: Tuple[Tuple[str, str], ...] = (
    ("Acme Systems", "AS"),
    ("BetaServ", "BS"),
    ("Cirrus Compute", "CC"),
    ("DataForge", "DF"),
    ("Epsilon", "EP"),
    ("FrameWorks", "FW"),
    ("GridCore", "GC"),
    ("HyperRack", "HR"),
)

#: Form factors weighted roughly like the published population.
FORM_FACTORS: Tuple[str, ...] = ("1U", "2U", "2U", "1U", "4U", "Tower", "Blade")


def validate_targets() -> None:
    """Internal consistency checks of the target tables.

    Runs at corpus-generation time so an editing slip in any table is
    caught immediately rather than surfacing as a skewed statistic.
    """
    if sum(YEAR_COUNTS.values()) != TOTAL_SERVERS:
        raise AssertionError("year counts do not sum to 477")
    for year, allocation in YEAR_CODENAME_COUNTS.items():
        if sum(allocation.values()) != YEAR_COUNTS[year]:
            raise AssertionError(f"codename allocation mismatch in {year}")
    for year, spots in PEAK_SPOT_YEAR_COUNTS.items():
        if sum(spots.values()) != YEAR_COUNTS[year]:
            raise AssertionError(f"peak-spot allocation mismatch in {year}")
    spot_totals: Dict[float, int] = {}
    for spots in PEAK_SPOT_YEAR_COUNTS.values():
        for spot, count in spots.items():
            spot_totals[spot] = spot_totals.get(spot, 0) + count
    for spot, share in PEAK_SPOT_SHARES.items():
        observed = spot_totals.get(spot, 0) / TOTAL_SERVERS
        if abs(observed - share) > 0.01:
            raise AssertionError(
                f"peak-spot share at {spot:.0%}: {observed:.4f} vs {share:.4f}"
            )
    single_node = sum(SINGLE_NODE_CHIP_COUNTS.values())
    multi_node = sum(MULTI_NODE_COUNTS.values())
    if single_node + multi_node != TOTAL_SERVERS:
        raise AssertionError("node/chip populations do not sum to 477")
    for nodes, years in MULTI_NODE_YEAR_PLAN.items():
        if len(years) != MULTI_NODE_COUNTS[nodes]:
            raise AssertionError(f"multi-node year plan mismatch at {nodes} nodes")
    if sum(MEMORY_PER_CORE_COUNTS.values()) != 430:
        raise AssertionError("Table I memory-per-core counts must sum to 430")
    if sum(PUBLICATION_LAG_COUNTS.values()) != REORGANIZED_SERVERS:
        raise AssertionError("publication lag counts must sum to 74")
