"""A solvable power-curve family for corpus synthesis.

Every synthetic server's normalized power--utilization curve is a
mixture of power-law terms:

    P(u) = idle + (1 - idle) * sum_k w_k * u**e_k,    sum_k w_k = 1

with idle fraction ``idle`` in (0, 1), non-negative weights ``w_k``,
and positive exponents ``e_k``.  Three shapes cover everything the
paper's pencil-head chart (Fig. 9) exhibits:

* *linear* -- a single ``u`` term: EP = 1 - idle (grid-exact);
* *bowed* -- a ``(u, u**p)`` mix: ``p < 1`` spends power early (concave,
  EP below linear, efficiency peaks at 100% -- the pre-2010 signature)
  while ``p > 1`` defers power (convex, EP above linear, efficiency can
  peak before 100%);
* *S-shaped* -- a ``(u**a, u**q)`` mix with ``a < 1 < q``: power rises
  quickly at low load, flattens through the mid range, and spikes near
  full load.  This is the only family member that can combine a *low*
  idle fraction with a peak-efficiency spot as early as 70% -- the
  signature of the 2012+ servers in Section IV.A.

Two facts make the family solvable in closed form plus one bisection:

1. the *grid* EP (the trapezoid Eq. 1 over the eleven SPECpower
   points -- the exact estimator the paper uses) is **linear in the
   mixing weight** once the exponent pair is fixed;
2. the relative efficiency u/P(u) of any two-term member has at most
   one interior maximum, located where ``g(u) = P(u) - u P'(u)``
   crosses zero, and the curve crosses the ideal line before 100%
   utilization exactly when that maximum is interior -- reproducing the
   paper's observation that servers whose efficiency peaks early also
   intersect the ideal curve farther from 100%.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.ep import UTILIZATION_LEVELS

_GRID = np.array(UTILIZATION_LEVELS)

#: Trapezoid quadrature weights on the eleven-point grid: area = W . P.
_TRAPZ_W = np.full(len(_GRID), 0.1)
_TRAPZ_W[0] = _TRAPZ_W[-1] = 0.05

#: Fine grid for locating interior efficiency maxima.
_FINE = np.linspace(1e-4, 1.0, 2001)


class CurveSolveError(ValueError):
    """Raised when no family member satisfies the requested targets."""


@dataclass(frozen=True)
class PowerCurve:
    """One member of the family, normalized to P(1) = 1."""

    idle: float
    exponents: Tuple[float, ...]
    weights: Tuple[float, ...]

    def __post_init__(self):
        if not 0.0 < self.idle < 1.0:
            raise ValueError("idle fraction must lie in (0, 1)")
        if len(self.exponents) != len(self.weights) or not self.exponents:
            raise ValueError("exponents and weights must align and be non-empty")
        if any(e <= 0.0 for e in self.exponents):
            raise ValueError("exponents must be positive")
        if any(w < -1e-12 for w in self.weights):
            raise ValueError("weights must be non-negative")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise ValueError("weights must sum to 1")

    @classmethod
    def mix(cls, idle: float, s: float, p: float) -> "PowerCurve":
        """The two-term (u, u**p) member with mixing weight ``s``."""
        if not 0.0 <= s <= 1.0:
            raise ValueError("mixing weight must lie in [0, 1]")
        return cls(idle=idle, exponents=(1.0, p), weights=(1.0 - s, s))

    def power(self, utilization) -> np.ndarray:
        """Normalized power at any utilization in [0, 1]."""
        u = np.asarray(utilization, dtype=float)
        # The measurement grid is validated by construction; skipping
        # its range check keeps the synthesis hot path lean.
        if u is not _GRID and (np.any(u < 0.0) or np.any(u > 1.0)):
            raise ValueError("utilization must lie in [0, 1]")
        shape = np.zeros_like(u)
        for exponent, weight in zip(self.exponents, self.weights):
            shape = shape + weight * np.power(u, exponent)
        return self.idle + (1.0 - self.idle) * shape

    def grid_power(self) -> np.ndarray:
        """Power at the eleven SPECpower measurement points."""
        return self.power(_GRID)

    def grid_area(self) -> float:
        """Trapezoid area under the grid curve (the Eq. 1 estimator)."""
        return float(_TRAPZ_W @ self.grid_power())

    def ep(self) -> float:
        """Grid EP, exactly as the paper computes it."""
        return 2.0 - 2.0 * self.grid_area()

    def ee_relative(self, utilization) -> np.ndarray:
        """Efficiency relative to 100% utilization: u / P(u)."""
        u = np.asarray(utilization, dtype=float)
        return np.where(u > 0.0, u / self.power(u), 0.0)

    def _stationarity(self, u: np.ndarray) -> np.ndarray:
        """g(u) = P(u) - u P'(u); EE rises where positive."""
        g = np.full_like(u, self.idle)
        for exponent, weight in zip(self.exponents, self.weights):
            g = g + (1.0 - self.idle) * weight * (1.0 - exponent) * np.power(
                u, exponent
            )
        return g

    def interior_peak(self) -> Optional[float]:
        """Utilization of the continuous efficiency maximum, if interior.

        ``None`` means efficiency increases all the way to 100%.
        """
        g = self._stationarity(_FINE)
        if g[-1] >= 0.0:
            return None
        # Last sign change: EE rises until it, falls after.
        sign_change = np.nonzero((g[:-1] >= 0.0) & (g[1:] < 0.0))[0]
        if sign_change.size == 0:
            return None
        i = int(sign_change[-1])
        left, right = _FINE[i], _FINE[i + 1]
        g_left, g_right = g[i], g[i + 1]
        if g_left == g_right:
            return float(left)
        t = g_left / (g_left - g_right)
        return float(left + t * (right - left))

    def grid_peak_spots(self, rtol: float = 1e-9) -> List[float]:
        """Measurement level(s) with the highest relative efficiency."""
        levels = _GRID[1:]
        rel = self.ee_relative(levels)
        best = rel.max()
        return [float(u) for u, r in zip(levels, rel) if r >= best * (1.0 - rtol)]

    def crosses_ideal(self) -> bool:
        """True when the curve dips below the ideal line before 100%."""
        u = _FINE[:-1]
        return bool(np.any(self.power(u) < u - 1e-12))


# -- solving -----------------------------------------------------------------------


def _pair_area_terms(idle: float, low_exp, high_exp):
    """Grid area of an (u**low, u**high) pair: base + t * gain.

    ``low_exp`` may be scalar or array; ``high_exp`` likewise (they
    broadcast).  ``t`` is the weight of the high-exponent term.
    """
    low = np.atleast_1d(np.asarray(low_exp, dtype=float))
    high = np.atleast_1d(np.asarray(high_exp, dtype=float))
    low_curves = np.power(_GRID[None, :], low[:, None])
    high_curves = np.power(_GRID[None, :], high[:, None])
    base = idle + (1.0 - idle) * (low_curves @ _TRAPZ_W)
    gain = (1.0 - idle) * ((high_curves - low_curves) @ _TRAPZ_W)
    return base, gain


def _grid_curves(exponents) -> np.ndarray:
    """``u**e`` rows over the eleven-point grid, one row per exponent.

    The solver scans fixed exponent ladders thousands of times per
    corpus; these rows (and the areas/coarse-grid powers derived from
    them below) depend only on the exponents, so they are built once at
    import with the exact :func:`numpy.power`/``@`` expressions of
    :func:`_pair_area_terms`, keeping every downstream float
    bit-identical to the per-call path.
    """
    exps = np.asarray(exponents, dtype=float)
    return np.power(_GRID[None, :], exps[:, None])


def ep_of_linear_curve(idle: float) -> float:
    """Grid EP of the straight-line member (weight fully on u)."""
    return PowerCurve.mix(idle=idle, s=0.0, p=2.0).ep()


def _candidate(idle: float, low: float, high: float, t: float) -> PowerCurve:
    return PowerCurve(idle=idle, exponents=(low, high), weights=(1.0 - t, t))


def solve_curve(
    ep: float,
    idle: float,
    peak_spot: float = 1.0,
    spot_tolerance: float = 0.035,
) -> PowerCurve:
    """Find a family member with the requested EP, idle, and peak spot.

    Parameters
    ----------
    ep:
        Target grid EP (Eq. 1 value the paper would compute).
    idle:
        Idle power fraction (power at active idle / power at 100%).
    peak_spot:
        Target utilization of the peak-efficiency measurement level
        (1.0, 0.9, 0.8, 0.7, or 0.6 in the corpus).
    spot_tolerance:
        How far the continuous efficiency maximum may sit from the
        requested spot; half a grid step keeps the grid argmax on the
        requested level.

    Raises
    ------
    CurveSolveError
        When the combination is outside the family's reach (e.g. a
        peak at 70% utilization with a very low idle fraction and a
        moderate EP -- physically those curves do not exist either).
    """
    if not 0.0 < idle < 1.0:
        raise CurveSolveError(f"idle fraction {idle} out of range")
    if not 0.0 < ep < 2.0:
        raise CurveSolveError(f"EP {ep} out of range")
    # The area under any monotone curve with P(0) = idle is at least
    # idle, so EP = 2 - 2*area cannot exceed 2*(1 - idle).
    target_area = 1.0 - ep / 2.0
    if idle >= target_area - 1e-9:
        raise CurveSolveError(f"EP {ep:.3f} unreachable with idle {idle:.3f}")

    if peak_spot >= 1.0 - 1e-9:
        return _solve_peak_at_full(ep, idle, target_area)
    # Interior spot: prefer the smooth S-shaped member, but only when it
    # wins the requested grid level with a margin that survives the
    # measurement noise added later; the knee construction covers the
    # (large) remainder of the (EP, idle, spot) space.
    try:
        curve = _solve_interior_peak(ep, idle, target_area, peak_spot, spot_tolerance)
        if _grid_margin_ok(curve, peak_spot):
            return curve
    except CurveSolveError:
        pass
    return solve_knee_curve(ep, idle, peak_spot)


def _grid_margin_ok(curve, peak_spot: float, min_margin: float = 0.004) -> bool:
    """True when the curve's grid efficiency peaks at ``peak_spot`` with
    a runner-up separation of at least ``min_margin``."""
    rel = np.asarray(curve.ee_relative(_GRID))[1:]
    order = np.argsort(rel)[::-1]
    peak_level = float(_GRID[1:][order[0]])
    margin = rel[order[0]] / rel[order[1]] - 1.0
    return abs(peak_level - peak_spot) < 1e-9 and margin >= min_margin


#: Curvature ladders of the peak-at-100% branches (fixed, so their
#: grid areas are precomputed below next to the S-branch tables).
_CONCAVE_CURVATURES = np.linspace(0.85, 0.08, 60)
_CONVEX_CURVATURES = np.linspace(1.05, 30.0, 240)


def _solve_peak_at_full(ep: float, idle: float, target_area: float) -> PowerCurve:
    """Peak efficiency at 100%: concave bow, straight line, or gentle convex."""
    linear_area = float(_TRAPZ_W @ (idle + (1.0 - idle) * _GRID))
    delta = target_area - linear_area
    if abs(delta) < 1e-9:
        return PowerCurve.mix(idle=idle, s=0.0, p=2.0)
    base = idle + (1.0 - idle) * _LINEAR_AREA
    if delta > 0.0:
        # EP below the linear member: concave branch (p < 1).
        curvatures = _CONCAVE_CURVATURES
        gain = (1.0 - idle) * _CONCAVE_GAIN_AREAS
        with np.errstate(divide="ignore"):
            t_values = np.where(np.abs(gain) > 1e-15, (target_area - base) / gain, np.inf)
        feasible = (t_values >= 0.0) & (t_values <= 1.0)
        if not np.any(feasible):
            raise CurveSolveError(f"EP {ep:.3f} too low for idle {idle:.3f}")
        i = int(np.argmax(feasible))
        return _candidate(idle, 1.0, float(curvatures[i]), float(t_values[i]))
    # EP above the linear member: convex branch, constrained so the
    # continuous efficiency maximum stays at or beyond 100% utilization
    # (u* >= 1  <=>  (1-idle) * t * (p-1) <= idle).
    curvatures = _CONVEX_CURVATURES
    gain = (1.0 - idle) * _CONVEX_GAIN_AREAS
    with np.errstate(divide="ignore"):
        t_values = np.where(np.abs(gain) > 1e-15, (target_area - base) / gain, np.inf)
    feasible = (
        (t_values > 0.0)
        & (t_values <= 1.0)
        & ((1.0 - idle) * t_values * (curvatures - 1.0) <= idle + 1e-12)
    )
    if not np.any(feasible):
        raise CurveSolveError(
            f"EP {ep:.3f} with peak at 100% unreachable at idle {idle:.3f}; "
            f"the efficiency peak must move to an interior utilization"
        )
    i = int(np.argmax(feasible))  # smallest feasible curvature
    return _candidate(idle, 1.0, float(curvatures[i]), float(t_values[i]))


#: Low-exponent candidates for the S-branch (how fast power rises at
#: low load) and high-exponent candidates (how late the spike lands).
_S_LOW_EXPONENTS = (1.0, 0.7, 0.5, 0.35, 0.22, 0.12)
_S_HIGH_EXPONENTS = np.concatenate(
    [np.linspace(1.3, 12.0, 100), np.linspace(12.5, 40.0, 40)]
)


#: Coarse grid for the vectorized interior-peak scan; the winning
#: candidate is refined with :meth:`PowerCurve.interior_peak`.
_COARSE = np.linspace(1e-3, 1.0, 241)

#: Import-time tables over the fixed exponent ladders (see
#: :func:`_grid_curves`): grid areas drive the (linear-in-weight) area
#: constraint, coarse-grid powers drive the peak scan.  Gain areas are
#: computed as ``(high_curves - low_curves) @ W`` — the exact float
#: expression of :func:`_pair_area_terms` — not as an area difference.
_ONE_CURVE = _grid_curves((1.0,))
_LINEAR_AREA = (_ONE_CURVE @ _TRAPZ_W)[0]
_CONCAVE_GAIN_AREAS = (_grid_curves(_CONCAVE_CURVATURES) - _ONE_CURVE) @ _TRAPZ_W
_CONVEX_GAIN_AREAS = (_grid_curves(_CONVEX_CURVATURES) - _ONE_CURVE) @ _TRAPZ_W
_S_HIGH_CURVES = _grid_curves(_S_HIGH_EXPONENTS)
_S_LOW_AREAS = {
    low: (_grid_curves((low,)) @ _TRAPZ_W)[0] for low in _S_LOW_EXPONENTS
}
_S_GAIN_AREAS = {
    low: (_S_HIGH_CURVES - _grid_curves((low,))) @ _TRAPZ_W
    for low in _S_LOW_EXPONENTS
}
_S_LOW_COARSE = {
    low: np.power(_COARSE[None, :], low) for low in _S_LOW_EXPONENTS
}
_S_HIGH_COARSE = np.power(
    _COARSE[None, :], np.asarray(_S_HIGH_EXPONENTS, dtype=float)[:, None]
)

#: Per-thread scratch arrays for the interior-peak scan (the solver is
#: re-entrant across threads, so the buffers cannot be module globals).
_SCRATCH = threading.local()


def _interior_scratch() -> Tuple[np.ndarray, np.ndarray]:
    work = getattr(_SCRATCH, "work", None)
    if work is None:
        work = (np.empty_like(_S_HIGH_COARSE), np.empty_like(_S_HIGH_COARSE))
        _SCRATCH.work = work
    return work


def _approx_interior_peaks(
    idle: float, low: float, highs: np.ndarray, ts: np.ndarray,
    u_low: Optional[np.ndarray] = None, u_high: Optional[np.ndarray] = None,
    work: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> np.ndarray:
    """Vectorized approximate efficiency-peak location per candidate.

    Evaluates g(u) = P - u P' for every (high exponent, weight) pair on
    the coarse grid and returns the location of the last positive ->
    negative transition (1.0 when efficiency rises to the end).
    ``u_low``/``u_high`` accept precomputed coarse-grid power rows and
    ``work`` a pair of scratch (len(highs), len(_COARSE)) arrays, so the
    solver's hot loop skips both the ``np.power`` evaluations and the
    large temporaries.  Each in-place step applies the same operation
    to the same operands as the one-expression form, so g is
    bit-identical either way.
    """
    if u_low is None:
        u_low = np.power(_COARSE[None, :], low)
    if u_high is None:
        u_high = np.power(_COARSE[None, :], highs[:, None])
    n = len(highs)
    if work is None:
        g = idle + (1.0 - idle) * (
            (1.0 - ts[:, None]) * (1.0 - low) * u_low
            + ts[:, None] * (1.0 - highs[:, None]) * u_high
        )
    else:
        g, scratch = work[0][:n], work[1][:n]
        np.multiply((1.0 - ts[:, None]) * (1.0 - low), u_low, out=g)
        np.multiply(ts[:, None] * (1.0 - highs[:, None]), u_high, out=scratch)
        g += scratch
        g *= 1.0 - idle
        g += idle
    # g is never NaN here (callers pass finite weights), so the pair of
    # comparisons (>= 0, < 0) collapses to one sign array.
    sign = g >= 0.0
    transitions = sign[:, :-1] & ~sign[:, 1:]
    peaks = np.full(n, 1.0)
    any_transition = transitions.any(axis=1)
    last_column = transitions.shape[1] - 1 - np.argmax(
        transitions[:, ::-1], axis=1
    )
    peaks[any_transition] = _COARSE[last_column[any_transition]]
    return peaks


def _solve_interior_peak(
    ep: float,
    idle: float,
    target_area: float,
    peak_spot: float,
    spot_tolerance: float,
) -> PowerCurve:
    """Peak efficiency at an interior spot.

    For each candidate low exponent the weight follows from the (linear)
    grid-area constraint, leaving the high exponent as the only free
    parameter; a vectorized scan locates the candidate whose efficiency
    peak lands closest to the requested spot.
    """
    best: Optional[Tuple[float, float, float]] = None  # (error, low, high, t)
    best_error = np.inf
    work = _interior_scratch()
    with np.errstate(divide="ignore", invalid="ignore"):
        for low in _S_LOW_EXPONENTS:
            base = idle + (1.0 - idle) * _S_LOW_AREAS[low]
            gain = (1.0 - idle) * _S_GAIN_AREAS[low]
            t_values = np.where(
                np.abs(gain) > 1e-15, (target_area - base) / gain, np.nan
            )
            feasible = (t_values > 1e-9) & (t_values <= 1.0)
            if not feasible.any():
                continue
            if feasible.all():
                # The common case: skip the fancy-index copies of the
                # (140, 241) coarse-power table.
                highs, ts, u_high = _S_HIGH_EXPONENTS, t_values, _S_HIGH_COARSE
            else:
                highs = _S_HIGH_EXPONENTS[feasible]
                ts = t_values[feasible]
                u_high = _S_HIGH_COARSE[feasible]
            peaks = _approx_interior_peaks(
                idle, low, highs, ts,
                u_low=_S_LOW_COARSE[low], u_high=u_high, work=work,
            )
            errors = np.abs(peaks - peak_spot)
            i = int(np.argmin(errors))
            if errors[i] < best_error:
                best_error = float(errors[i])
                best = (low, float(highs[i]), float(ts[i]))
                if best_error < 2e-3:
                    break
    if best is None:
        raise CurveSolveError(f"no feasible curve for EP {ep:.3f}, idle {idle:.3f}")
    if best_error > spot_tolerance:
        raise CurveSolveError(
            f"peak spot {peak_spot:.0%} unreachable for EP {ep:.3f}, idle "
            f"{idle:.3f} (closest approach {best_error:.3f} away)"
        )
    low, high, t = best
    return _candidate(idle, low, high, t)


@dataclass(frozen=True)
class GridCurve:
    """A normalized power curve defined directly at the eleven points.

    Interior peak spots at moderate EP values require a *knee* shape --
    power climbs to a sub-ideal knee at the peak-efficiency spot, then
    rises steeply (near-linearly) to full power -- which no smooth
    power-term mixture reproduces.  A grid-level curve is exactly as
    expressive as the paper's data (SPECpower measures only these
    eleven points), so the knee solver emits one directly.
    """

    points: Tuple[float, ...]

    def __post_init__(self):
        if len(self.points) != len(_GRID):
            raise ValueError("a grid curve needs exactly eleven points")
        arr = np.asarray(self.points)
        if arr[0] <= 0.0 or abs(arr[-1] - 1.0) > 1e-9:
            raise ValueError("grid curve must start positive and end at 1")
        if np.any(np.diff(arr) < -1e-12):
            raise ValueError("grid curve must be non-decreasing")

    @property
    def idle(self) -> float:
        return float(self.points[0])

    def grid_power(self) -> np.ndarray:
        """Power at the eleven SPECpower measurement points."""
        return np.asarray(self.points, dtype=float)

    def grid_area(self) -> float:
        """Trapezoid area under the grid curve (the Eq. 1 estimator)."""
        return float(_TRAPZ_W @ self.grid_power())

    def ep(self) -> float:
        """Grid EP, exactly as the paper computes it."""
        return 2.0 - 2.0 * self.grid_area()

    def ee_relative(self, utilization=None) -> np.ndarray:
        """Efficiency relative to 100% utilization (grid-interpolated)."""
        u = _GRID if utilization is None else np.asarray(utilization, dtype=float)
        p = np.interp(u, _GRID, self.grid_power())
        return np.where(u > 0.0, u / p, 0.0)

    def grid_peak_spots(self, rtol: float = 1e-9) -> List[float]:
        """Measurement level(s) with the highest relative efficiency."""
        levels = _GRID[1:]
        rel = levels / self.grid_power()[1:]
        best = rel.max()
        return [float(u) for u, r in zip(levels, rel) if r >= best * (1.0 - rtol)]

    def crosses_ideal(self) -> bool:
        """True when the curve dips below the ideal line before 100%."""
        p = self.grid_power()[1:-1]
        return bool(np.any(p < _GRID[1:-1] - 1e-12))


#: Rise-shape exponents tried by the knee solver, gentlest first.
_KNEE_RISE_LADDER = (0.05, 0.12, 0.25, 0.45, 0.7, 1.0, 1.5, 2.2, 3.2)


def _knee_points(idle: float, spot: float, k: float, rise: float) -> np.ndarray:
    """Grid power of a knee curve: concave rise to k*spot, then linear."""
    knee_power = k * spot
    points = np.empty_like(_GRID)
    pre = _GRID <= spot + 1e-12
    with np.errstate(divide="ignore"):
        ramp = np.power(np.where(_GRID > 0, _GRID / spot, 0.0), rise)
    points[pre] = idle + (knee_power - idle) * ramp[pre]
    post = ~pre
    points[post] = knee_power + (1.0 - knee_power) * (_GRID[post] - spot) / (1.0 - spot)
    points[0] = idle
    points[-1] = 1.0
    return points


def solve_knee_curve(
    ep: float,
    idle: float,
    peak_spot: float,
    min_margin: float = 0.004,
) -> GridCurve:
    """Solve a knee curve with the requested EP, idle, and peak spot.

    The knee depth ``k`` (knee power as a fraction of the ideal power at
    the spot; k < 1 puts the efficiency peak there) is bisected against
    the grid-area target for each rise exponent in turn.  The returned
    curve's grid efficiency peaks at ``peak_spot`` with at least
    ``min_margin`` relative separation from the runner-up level, so the
    measurement noise added later cannot move the spot.
    """
    if not 0.1 <= peak_spot <= 0.9 + 1e-9:
        raise CurveSolveError("knee curves are for interior peak spots")
    target_area = 1.0 - ep / 2.0
    if idle >= target_area - 1e-9:
        raise CurveSolveError(f"EP {ep:.3f} unreachable with idle {idle:.3f}")
    k_floor = idle / peak_spot + 1e-6
    k_ceiling = 1.0 / (1.0 + min_margin) - 1e-6
    if k_floor >= k_ceiling:
        raise CurveSolveError(
            f"idle {idle:.3f} too high for a knee at {peak_spot:.0%}"
        )

    # The ramp shape and the post-knee offsets do not depend on the
    # bisected depth k, so hoist them out of the 60-step loop.  Every
    # expression below mirrors :func:`_knee_points` operation for
    # operation (same order, same intermediates), so ``area`` returns
    # bit-identical floats to the unhoisted form.
    pre = _GRID <= peak_spot + 1e-12
    post = ~pre
    post_diff = _GRID[post] - peak_spot
    one_minus_spot = 1.0 - peak_spot
    points = np.empty_like(_GRID)

    for rise in _KNEE_RISE_LADDER:
        with np.errstate(divide="ignore"):
            ramp_pre = np.power(
                np.where(_GRID > 0, _GRID / peak_spot, 0.0), rise
            )[pre]

        def area(k: float) -> float:
            knee_power = k * peak_spot
            points[pre] = idle + (knee_power - idle) * ramp_pre
            points[post] = (
                knee_power + (1.0 - knee_power) * post_diff / one_minus_spot
            )
            points[0] = idle
            points[-1] = 1.0
            return float(_TRAPZ_W @ points)

        low, high = k_floor, k_ceiling
        if not area(low) <= target_area <= area(high):
            continue
        for _ in range(60):
            mid = 0.5 * (low + high)
            if area(mid) < target_area:
                low = mid
            else:
                high = mid
        k = 0.5 * (low + high)
        curve = GridCurve(points=tuple(_knee_points(idle, peak_spot, k, rise)))
        rel = curve.ee_relative()[1:]
        order = np.argsort(rel)[::-1]
        peak_level = float(_GRID[1:][order[0]])
        margin = rel[order[0]] / rel[order[1]] - 1.0
        if abs(peak_level - peak_spot) < 1e-9 and margin >= min_margin:
            return curve
    raise CurveSolveError(
        f"no knee curve for EP {ep:.3f}, idle {idle:.3f}, spot {peak_spot:.0%}"
    )


def minimum_idle_for_spot(
    ep: float, peak_spot: float, idle_floor: float = 0.02
) -> float:
    """Smallest idle fraction that supports (EP, interior peak spot).

    An early peak-efficiency spot requires enough idle power for the
    relative-efficiency curve to climb above 1 and turn over; this
    bisects the feasibility frontier so the generator can lift an
    infeasible idle draw by the minimum amount.
    """
    if peak_spot >= 1.0 - 1e-9:
        raise ValueError("only interior peak spots have an idle frontier")

    def feasible(idle: float) -> bool:
        try:
            solve_curve(ep, idle, peak_spot)
            return True
        except CurveSolveError:
            return False

    # Feasibility is not monotone in idle (too much idle power caps the
    # reachable EP), so scan upward for the first feasible band, then
    # refine its lower edge.
    high = min(0.93, 1.0 - ep / 2.0 - 0.02)
    if high <= idle_floor:
        raise CurveSolveError(
            f"no idle fraction supports EP {ep:.3f} with peak at {peak_spot:.0%}"
        )
    if feasible(idle_floor):
        return idle_floor
    step = (high - idle_floor) / 48.0
    first_feasible = None
    probe = idle_floor + step
    while probe <= high + 1e-12:
        if feasible(probe):
            first_feasible = probe
            break
        probe += step
    if first_feasible is None:
        raise CurveSolveError(
            f"no idle fraction supports EP {ep:.3f} with peak at {peak_spot:.0%}"
        )
    low, edge = first_feasible - step, first_feasible
    for _ in range(25):
        mid = 0.5 * (low + edge)
        if feasible(mid):
            edge = mid
        else:
            low = mid
    return edge


def solve_curve_with_fallback(
    ep: float,
    idle: float,
    peak_spot: float,
) -> PowerCurve:
    """Solve, relaxing the idle fraction (then the spot) when needed.

    The generator derives idle fractions from EP through the Eq. 2
    relationship plus noise; for interior peak spots the draw can fall
    below the feasibility frontier, in which case the idle fraction is
    lifted to the frontier (the minimal physical concession).  Only if
    that also fails is the spot conceded to the nearest feasible level.
    """
    try:
        return solve_curve(ep, idle, peak_spot)
    except CurveSolveError:
        pass
    if peak_spot < 1.0 - 1e-9:
        try:
            frontier = minimum_idle_for_spot(ep, peak_spot)
            lifted = min(max(idle, frontier * 1.02), 1.0 - ep / 2.0 - 0.05)
            return solve_curve(ep, lifted, peak_spot)
        except CurveSolveError:
            pass
    else:
        # Peak at 100% with a high idle draw can escape the two-term
        # family (the feasible shape is flat-then-ideal, which the
        # family cannot trace); shaving the idle fraction keeps the
        # spot -- the property every corpus statistic depends on.
        for scale in (0.93, 0.87, 0.8, 0.72, 0.63, 0.52, 0.4):
            try:
                return solve_curve(ep, max(0.02, idle * scale), peak_spot)
            except CurveSolveError:
                continue
    for spot in _fallback_spots(peak_spot):
        for scale in (1.0, 0.85, 1.2, 0.65, 0.45):
            adjusted = min(0.92, max(0.02, idle * scale))
            try:
                return solve_curve(ep, adjusted, spot)
            except CurveSolveError:
                continue
    raise CurveSolveError(
        f"no curve found near EP {ep:.3f}, idle {idle:.3f}, spot {peak_spot:.0%}"
    )


def _fallback_spots(peak_spot: float) -> Sequence[float]:
    ladder = [1.0, 0.9, 0.8, 0.7, 0.6]
    others = [spot for spot in ladder if abs(spot - peak_spot) > 1e-9]
    others.sort(key=lambda spot: abs(spot - peak_spot))
    return others
