"""The SPECpower result record and its derived metrics.

A :class:`SpecPowerResult` carries exactly the payload the paper
extracts from a published FDR: identity (vendor, model, form factor),
configuration (nodes, chips, cores, memory), dates (published year vs.
hardware-availability year -- the distinction the whole reorganization
argument rests on), and the per-level measurements.  Everything the
analyses need (EP, overall score, peak-efficiency spots, idle power
percentage, ...) derives from the measurements through
:mod:`repro.metrics`, cached on first access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.metrics.curves import (
    above_ideal_zone,
    first_crossing,
    ideal_intersections,
)
from repro.metrics.ee import (
    overall_score,
    peak_efficiency,
    peak_efficiency_spots,
    peak_over_full_ratio,
)
from repro.metrics.ep import (
    dynamic_range,
    energy_proportionality,
    idle_power_fraction,
)
from repro.metrics.linearity import linear_deviation
from repro.power.microarch import Codename, Family, Vendor, family_of


@dataclass(frozen=True)
class LoadLevel:
    """One measured target load of a published result."""

    target_load: float
    ssj_ops: float
    average_power_w: float

    def __post_init__(self):
        if not 0.0 < self.target_load <= 1.0:
            raise ValueError("target load must lie in (0, 1]")
        if self.ssj_ops < 0.0:
            raise ValueError("throughput cannot be negative")
        if self.average_power_w <= 0.0:
            raise ValueError("average power must be positive")

    @property
    def efficiency(self) -> float:
        return self.ssj_ops / self.average_power_w


@dataclass
class SpecPowerResult:
    """One published SPECpower_ssj2008 result.

    ``hw_year`` is the hardware-availability year the paper reorganizes
    by; ``published_year`` is the submission year.  The two differ for
    15.5% of the valid results (Section I).
    """

    result_id: str
    vendor: str
    model: str
    form_factor: str
    hw_year: int
    published_year: int
    codename: Codename
    nodes: int
    chips_per_node: int
    cores_per_chip: int
    memory_gb: float
    levels: List[LoadLevel]
    active_idle_power_w: float
    tie_peak_spots: bool = False

    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        if self.nodes <= 0 or self.chips_per_node <= 0 or self.cores_per_chip <= 0:
            raise ValueError("nodes, chips, and cores must be positive")
        if self.memory_gb <= 0.0:
            raise ValueError("installed memory must be positive")
        if len(self.levels) < 2:
            raise ValueError("a result needs at least two load levels")
        if self.active_idle_power_w <= 0.0:
            raise ValueError("active idle power must be positive")
        if self.hw_year < 2000 or self.published_year < 2000:
            raise ValueError("implausible year")
        loads = [level.target_load for level in self.levels]
        if len(set(loads)) != len(loads):
            raise ValueError("duplicate target loads")

    # -- configuration-derived ------------------------------------------------

    @property
    def family(self) -> Family:
        return family_of(self.codename)

    @property
    def cpu_vendor(self) -> Vendor:
        from repro.power.microarch import CATALOG

        return CATALOG[self.codename].vendor

    @property
    def total_chips(self) -> int:
        return self.nodes * self.chips_per_node

    @property
    def total_cores(self) -> int:
        return self.total_chips * self.cores_per_chip

    @property
    def memory_per_core_gb(self) -> float:
        """GB of installed memory per physical core (Section V.A)."""
        return self.memory_gb / self.total_cores

    @property
    def is_single_node(self) -> bool:
        return self.nodes == 1

    @property
    def publication_lag_years(self) -> int:
        """Published year minus hardware availability year."""
        return self.published_year - self.hw_year

    # -- measurement series -----------------------------------------------------

    def sorted_levels(self) -> List[LoadLevel]:
        """Levels ascending by target load."""
        return sorted(self.levels, key=lambda level: level.target_load)

    def curve(self) -> Tuple[List[float], List[float]]:
        """(utilization, power) including the active-idle point."""
        levels = self.sorted_levels()
        loads = [0.0] + [level.target_load for level in levels]
        powers = [self.active_idle_power_w] + [
            level.average_power_w for level in levels
        ]
        return loads, powers

    def normalized_power(self) -> List[float]:
        """Power curve normalized to the 100%-load reading."""
        loads, powers = self.curve()
        peak = powers[-1]
        return [p / peak for p in powers]

    # -- derived metrics (cached) -------------------------------------------------

    def _derive(self, key: str, compute) -> float:
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    @property
    def ep(self) -> float:
        """Energy proportionality (Eq. 1)."""
        return self._derive("ep", lambda: energy_proportionality(*self.curve()))

    @property
    def overall_score(self) -> float:
        """Server overall energy efficiency (the SPECpower score)."""

        def compute():
            levels = self.sorted_levels()
            return overall_score(
                [level.ssj_ops for level in levels],
                [level.average_power_w for level in levels],
                self.active_idle_power_w,
            )

        return self._derive("score", compute)

    @property
    def peak_ee(self) -> float:
        def compute():
            levels = self.sorted_levels()
            return peak_efficiency(
                [level.ssj_ops for level in levels],
                [level.average_power_w for level in levels],
            )

        return self._derive("peak_ee", compute)

    @property
    def peak_ee_spots(self) -> List[float]:
        """Utilization level(s) of peak efficiency.

        The corpus constructs tie servers with *exactly* equal
        efficiency at the tied levels (matching how the paper counts
        the 2011 server with peaks at both 80% and 90% utilization), so
        a tight tolerance suffices for them; regular servers use a
        looser tolerance matched to the corpus's enforced strict-winner
        margin.
        """

        def compute():
            levels = self.sorted_levels()
            rtol = 1e-6 if self.tie_peak_spots else 1e-3
            return peak_efficiency_spots(
                [level.target_load for level in levels],
                [level.ssj_ops for level in levels],
                [level.average_power_w for level in levels],
                rtol=rtol,
            )

        return self._derive("spots", compute)

    @property
    def primary_peak_spot(self) -> float:
        """The single spot used for per-server grouping (lowest if tied)."""
        return self.peak_ee_spots[0]

    @property
    def idle_fraction(self) -> float:
        """Idle power percentage (normalized to power at 100%)."""
        return self._derive("idle", lambda: idle_power_fraction(*self.curve()))

    @property
    def dynamic_range(self) -> float:
        return self._derive("dr", lambda: dynamic_range(*self.curve()))

    @property
    def peak_over_full(self) -> float:
        """Peak EE over EE at 100% utilization."""

        def compute():
            levels = self.sorted_levels()
            return peak_over_full_ratio(
                [level.target_load for level in levels],
                [level.ssj_ops for level in levels],
                [level.average_power_w for level in levels],
            )

        return self._derive("pof", compute)

    @property
    def linear_deviation(self) -> float:
        return self._derive("ld", lambda: linear_deviation(*self.curve()))

    def ideal_intersections(self) -> List[float]:
        """Crossings of the ideal EP curve before 100% utilization."""
        return ideal_intersections(*self.curve())

    def ee_crossing(self, threshold: float) -> float:
        """Earliest utilization reaching threshold x EE(100%)."""
        return first_crossing(*self.curve(), threshold=threshold)

    def above_ideal_zone_width(self) -> float:
        """Width of the efficiency band above the 100% level (Section V.C)."""
        return above_ideal_zone(*self.curve())

    def invalidate_cache(self) -> None:
        """Drop memoized metrics (call after mutating levels in place)."""
        self._cache.clear()
