"""Concurrency-safety rules (REP30x): pooled code must not mutate.

The artifact executor runs registered builders on a thread pool over
one shared :class:`Study`, and the ensemble engine ships worker
functions to a process pool.  Parallel == serial only holds while
those functions are pure readers of shared state.  This family flags
the writes that would break it:

* REP301 — ``global`` declarations with writes;
* REP302 — class-attribute writes (``Cls.attr = ...``,
  ``self.__class__.attr = ...``) — shared across every instance;
* REP303 — mutation of module-level state (item/attr stores or
  mutating method calls on module-level names);
* REP304 — instance-state writes from a registered builder (the Study
  is shared by every concurrently running builder);
* REP305 — mutable default arguments (shared across calls *and*
  threads), reported tree-wide as a warning;
* REP306 — an unbounded ``asyncio.Queue()`` in the serve path: with
  no ``maxsize`` the queue absorbs every burst instead of pushing
  back, so overload turns into unbounded memory growth and latency —
  admission control (:mod:`repro.serve.resilience`) requires every
  serve-side queue to carry an explicit bound;
* REP307 — an engine/builder entry point (``execute``,
  ``build_artifact``) called directly in a coroutine's own scope in
  the serve path: seconds of numpy work run on the event loop and
  stall every concurrent request.  Engine calls must be dispatched
  through ``run_in_executor`` or the worker pool
  (:mod:`repro.serve.workers`); calls inside nested *sync* functions
  and lambdas are exempt — those are the offload targets.

Builder discovery is cross-file: builder names come from the literal
``ArtifactSpec``/``_spec`` calls anywhere in the scanned set and are
matched against methods of any ``Study`` class in the set.  Worker
discovery is per-module: in a module that imports a pool executor,
any top-level function referenced by name (rather than called) is
treated as pool-dispatched.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.checks.astutil import (
    import_aliases,
    local_bindings,
    module_level_classes,
    module_level_names,
    resolve_call,
    root_name,
)
from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    finding,
)
from repro.checks.registry_rules import extract_spec_literals

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "popleft",
}

_POOL_NAMES = {"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"}


def _builder_names(project: Project) -> Set[str]:
    names: Set[str] = set()
    for ctx in project.files:
        for spec in extract_spec_literals(ctx.tree):
            builder = spec.builder
            if isinstance(builder, ast.Constant) and isinstance(builder.value, str):
                names.add(builder.value)
            elif isinstance(builder, ast.Name):
                names.add(builder.id)
    return names


def _imports_pool(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if any(item.name in _POOL_NAMES for item in node.names):
                return True
        elif isinstance(node, ast.Import):
            if any(
                item.name.startswith(("concurrent.futures", "multiprocessing"))
                for item in node.names
            ):
                return True
    return False


def _referenced_functions(tree: ast.Module) -> Set[str]:
    """Top-level functions passed around by name (pool-dispatched)."""
    defined = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    referenced: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for value in list(node.args) + [k.value for k in node.keywords]:
            if isinstance(value, ast.Name) and value.id in defined:
                referenced.add(value.id)
    return referenced


def _pooled_functions(
    project: Project,
) -> Iterator[Tuple[SourceFile, ast.AST, str]]:
    """(file, function node, kind) for every pooled execution context."""
    builders = _builder_names(project)
    for ctx in project.files:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "Study":
                for item in node.body:
                    if (
                        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name in builders
                    ):
                        yield ctx, item, "builder"
        if _imports_pool(ctx.tree):
            workers = _referenced_functions(ctx.tree)
            for node in ctx.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in workers
                ):
                    yield ctx, node, "worker"


def _scan_writes(
    ctx: SourceFile, func: ast.AST, kind: str
) -> Iterator[Finding]:
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    module_names = module_level_names(ctx.tree)
    module_classes = module_level_classes(ctx.tree)
    locals_ = local_bindings(func)
    global_decls: Set[str] = set()
    label = f"{kind} {func.name!r}"

    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)

    stored_names = {
        node.id
        for node in ast.walk(func)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store)
    }
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            written = [name for name in node.names if name in stored_names]
            if written:
                yield finding(
                    RULES["REP301"], ctx.rel, node,
                    f"{label} writes module global(s) {written} under a "
                    "pooled executor",
                    hint="return the value instead; pooled code must not "
                    "mutate shared module state",
                )

    for node in ast.walk(func):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            yield from _classify_store(
                ctx, node, target, label, kind,
                module_names, module_classes, locals_, global_decls,
            )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                receiver = node.func.value
                root = root_name(receiver)
                if root is None:
                    continue
                if root == "self" and kind == "builder":
                    yield finding(
                        RULES["REP304"], ctx.rel, node,
                        f"{label} mutates shared Study state via "
                        f"self...{node.func.attr}()",
                        hint="builders run concurrently over one Study; "
                        "memoize through a locked helper instead",
                    )
                elif root in module_names and root not in locals_:
                    yield finding(
                        RULES["REP303"], ctx.rel, node,
                        f"{label} mutates module-level {root!r} via "
                        f".{node.func.attr}()",
                        hint="pooled code must not mutate module state; "
                        "build and return a new value",
                    )


def _classify_store(
    ctx: SourceFile,
    stmt: ast.AST,
    target: ast.AST,
    label: str,
    kind: str,
    module_names: Set[str],
    module_classes: Set[str],
    locals_: Set[str],
    global_decls: Set[str],
) -> Iterator[Finding]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _classify_store(
                ctx, stmt, element, label, kind,
                module_names, module_classes, locals_, global_decls,
            )
        return
    if isinstance(target, ast.Name):
        return  # plain name stores are locals (REP301 covers globals)
    root = root_name(target)
    if root is None:
        return
    if root == "self":
        if _is_dunder_class_write(target):
            yield finding(
                RULES["REP302"], ctx.rel, stmt,
                f"{label} writes a class attribute via self.__class__",
                hint="class attributes are shared across every instance "
                "and thread",
            )
        elif kind == "builder":
            yield finding(
                RULES["REP304"], ctx.rel, stmt,
                f"{label} writes instance state on the shared Study",
                hint="builders run concurrently over one Study; only the "
                "locked _sweep-style helpers may memoize onto it",
            )
        return
    if root in locals_ and root not in global_decls:
        return
    if root in module_classes:
        yield finding(
            RULES["REP302"], ctx.rel, stmt,
            f"{label} writes attribute of module-level class {root!r}",
            hint="class attributes are shared across every instance and "
            "thread",
        )
    elif root in module_names:
        yield finding(
            RULES["REP303"], ctx.rel, stmt,
            f"{label} writes into module-level {root!r}",
            hint="pooled code must not mutate module state; build and "
            "return a new value",
        )


def _is_dunder_class_write(target: ast.AST) -> bool:
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr == "__class__":
            return True
        node = node.value
    return False


def _concurrency_project_check(project: Project) -> Iterator[Finding]:
    for ctx, func, kind in _pooled_functions(project):
        yield from _scan_writes(ctx, func, kind)


def _check_mutable_defaults(ctx: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call) and isinstance(default.func, ast.Name):
                mutable = default.func.id in ("list", "dict", "set")
            if mutable:
                yield finding(
                    RULES["REP305"], ctx.rel, default,
                    f"function {node.name!r} has a mutable default argument",
                    hint="shared across calls and threads; use None plus an "
                    "in-body default",
                )


#: asyncio queue factories that accept a ``maxsize`` bound.
_ASYNC_QUEUES = {"asyncio.Queue", "asyncio.LifoQueue", "asyncio.PriorityQueue"}


def in_serve_path(ctx: SourceFile) -> bool:
    """Whether this file belongs to a serving layer (module or path)."""
    if "serve" in ctx.module.split("."):
        return True
    normalized = ctx.rel.replace("\\", "/")
    return any(part == "serve" for part in normalized.split("/"))


def _queue_is_unbounded(node: ast.Call) -> bool:
    """No maxsize, or an explicit literal 0 (asyncio's 'infinite')."""
    bound = None
    if node.args:
        bound = node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "maxsize":
            bound = keyword.value
    if bound is None:
        return True
    return isinstance(bound, ast.Constant) and bound.value == 0


def _check_unbounded_queues(ctx: SourceFile) -> Iterator[Finding]:
    if not in_serve_path(ctx):
        return
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        path = resolve_call(node.func, aliases)
        if path in _ASYNC_QUEUES and _queue_is_unbounded(node):
            name = path.rsplit(".", 1)[-1]
            yield finding(
                RULES["REP306"], ctx.rel, node,
                f"asyncio.{name}() without a maxsize in the serve path "
                "absorbs bursts instead of pushing back",
                hint="give every serve-side queue an explicit bound "
                "(maxsize=N) so overload sheds instead of growing memory",
            )


#: Engine/builder entry points that block the event loop when called
#: from a coroutine (each runs seconds of columnar numpy work).
_ENGINE_CALLS = {
    "repro.api.execute",
    "repro.api.dispatch.execute",
    "repro.api.build_artifact",
    "repro.api.dispatch.build_artifact",
}


def _coroutine_scope_calls(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Call nodes executed in the coroutine's own scope.

    Nested sync functions, lambdas and nested coroutines are skipped:
    the sync ones are the ``run_in_executor`` offload targets (where a
    direct engine call is exactly right), and nested coroutines get
    their own scan.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_loop_blocking_engine(ctx: SourceFile) -> Iterator[Finding]:
    if not in_serve_path(ctx):
        return
    aliases = import_aliases(ctx.tree)
    for func in ast.walk(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for node in _coroutine_scope_calls(func):
            path = resolve_call(node.func, aliases)
            if path in _ENGINE_CALLS:
                name = path.rsplit(".", 1)[-1]
                yield finding(
                    RULES["REP307"], ctx.rel, node,
                    f"coroutine {func.name!r} calls {name}() directly on "
                    "the event loop; the engine blocks every concurrent "
                    "request while it runs",
                    hint="dispatch engine work through run_in_executor or "
                    "the serve worker pool so the loop keeps answering",
                )


RULES = {
    "REP301": Rule(
        "REP301", "global-write", Severity.ERROR,
        "pooled code writing module globals",
        scope="project", project_checker=_concurrency_project_check,
    ),
    "REP302": Rule(
        "REP302", "class-attribute-write", Severity.ERROR,
        "pooled code writing class attributes",
        scope="project", project_checker=None,
    ),
    "REP303": Rule(
        "REP303", "module-state-mutation", Severity.ERROR,
        "pooled code mutating module-level state",
        scope="project", project_checker=None,
    ),
    "REP304": Rule(
        "REP304", "shared-study-write", Severity.ERROR,
        "builders writing instance state on the shared Study",
        scope="project", project_checker=None,
    ),
    "REP305": Rule(
        "REP305", "mutable-default", Severity.WARNING,
        "mutable default arguments",
        scope="file", file_checker=_check_mutable_defaults,
    ),
    "REP306": Rule(
        "REP306", "unbounded-serve-queue", Severity.ERROR,
        "unbounded asyncio queues in the serve path",
        scope="file", file_checker=_check_unbounded_queues,
    ),
    "REP307": Rule(
        "REP307", "loop-blocking-engine-call", Severity.ERROR,
        "engine calls awaited directly on the serve event loop",
        scope="file", file_checker=_check_loop_blocking_engine,
    ),
}

#: The single project checker that emits REP301-REP304.
PROJECT_RULES = ("REP301",)
