"""Shared AST helpers: import resolution, name chains, markers.

The determinism rules need to know that ``np.random.seed`` and
``numpy.random.seed`` are the same call regardless of how the module
was imported, so every file rule works on *resolved* dotted names:
the import table of the file maps each local alias to the fully
qualified prefix it stands for, and :func:`resolve_call` rewrites a
call's attribute chain through that table.
"""

from __future__ import annotations

import ast
import functools
import re
from typing import Dict, List, Optional, Sequence, Set

#: ``# parity: ...`` and ``# repro-checks: ignore[...]`` marker forms.
_IGNORE_RE = re.compile(r"repro-checks:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")
_PARITY_RE = re.compile(r"#\s*parity:")


@functools.lru_cache(maxsize=1024)
def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map every imported local name to its fully qualified prefix.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from numpy
    import random`` yields ``{"random": "numpy.random"}``; a bare
    ``import numpy.random`` binds the root ``{"numpy": "numpy"}``.

    Cached per tree object: every rule family asks for the same
    file's table, and the cross-module passes ask per function —
    re-walking the module each time dominated a cold run before the
    cache.  Trees are parsed once per run and never mutated, so the
    memo is safe; callers must treat the returned dict as read-only.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname:
                    aliases[item.asname] = item.name
                else:
                    root = item.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports cannot shadow numpy/random/time
            for item in node.names:
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """The attribute chain of a Name/Attribute node, outermost first."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def resolve_call(func: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Fully qualified dotted path of a call target, if import-rooted.

    Returns ``None`` for calls rooted at locals (``rng.normal(...)``)
    or expressions, so rules never misfire on threaded generators.
    """
    parts = dotted_name(func)
    if parts is None:
        return None
    root = parts[0]
    if root not in aliases:
        return None
    return ".".join([aliases[root]] + parts[1:])


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an Attribute/Subscript/Name chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def module_level_names(tree: ast.Module) -> Set[str]:
    """Every name bound at module level (assignments, imports, defs)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, ast.Import):
            for item in node.names:
                names.add(item.asname or item.name.split(".", 1)[0])
        elif isinstance(node, ast.ImportFrom):
            for item in node.names:
                names.add(item.asname or item.name)
    return names


def module_level_classes(tree: ast.Module) -> Set[str]:
    """Names of classes defined at module level."""
    return {n.name for n in tree.body if isinstance(n, ast.ClassDef)}


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_target_names(element))
    return names


def local_bindings(func: ast.AST) -> Set[str]:
    """Names bound locally inside a function (params, stores, defs)."""
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    names: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not func:
                names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


def signature_shape(func: ast.AST) -> List[str]:
    """A comparable, annotation-free rendering of a def's signature.

    Two kernels agree when their positional/keyword argument names,
    order, and literal defaults agree — exactly what the
    swap-by-name harness in ``dataset.reference`` relies on.
    """
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = func.args
    shape: List[str] = []
    defaults = list(args.defaults)
    positional = list(args.posonlyargs) + list(args.args)
    padding = len(positional) - len(defaults)
    for index, arg in enumerate(positional):
        entry = arg.arg
        if index >= padding:
            entry += "=" + _default_repr(defaults[index - padding])
        shape.append(entry)
    if args.vararg:
        shape.append("*" + args.vararg.arg)
    elif args.kwonlyargs:
        shape.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        entry = arg.arg
        if default is not None:
            entry += "=" + _default_repr(default)
        shape.append(entry)
    if args.kwarg:
        shape.append("**" + args.kwarg.arg)
    return shape


def _default_repr(node: ast.AST) -> str:
    if isinstance(node, ast.Constant):
        return repr(node.value)
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def has_marker(lines: Sequence[str], def_line: int, pattern: re.Pattern = _PARITY_RE) -> bool:
    """True if a marker comment sits on the def line or just above it.

    ``def_line`` is 1-based; decorator lines above the def also count,
    so the marker can sit above ``@property``.
    """
    for lineno in range(max(1, def_line - 2), def_line + 1):
        if lineno <= len(lines) and pattern.search(lines[lineno - 1]):
            return True
    return False


def suppressed_rules(line: str) -> Optional[Set[str]]:
    """Rule ids suppressed by an inline marker on ``line``.

    Returns ``None`` when there is no marker, the empty set for a bare
    ``repro-checks: ignore`` (suppress everything), or the specific
    ids of ``repro-checks: ignore[REP104]``.
    """
    match = _IGNORE_RE.search(line)
    if match is None:
        return None
    if match.group(1) is None:
        return set()
    return {part.strip() for part in match.group(1).split(",") if part.strip()}
