"""Domain-aware static analysis for the reproduction's invariants.

The repo's correctness rests on discipline no general-purpose linter
knows about: every random draw flows through explicitly seeded
``numpy.random.Generator`` substreams, the declarative artifact
registry stays resolvable and acyclic, builders stay pure under the
thread-pool executor, and the vectorized kernels stay paired with
their scalar reference twins.  This package enforces all four as
lint rules::

    python -m repro checks src              # scan, exit 1 on findings
    python -m repro checks --list-rules     # the invariant catalog
    python -m repro checks --format json    # editor/CI integration

Library use::

    from repro.checks import run_checks
    findings = run_checks(["src"], select=["REP1"])

Rule families: REP1xx determinism, REP2xx registry consistency,
REP3xx concurrency safety, REP4xx reference parity.  See DESIGN.md
for the invariant catalog.
"""

from repro.checks.baseline import apply_baseline, load_baseline, write_baseline
from repro.checks.engine import RULES, exit_code, run_checks
from repro.checks.model import Finding, Rule, Severity

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "Severity",
    "apply_baseline",
    "exit_code",
    "load_baseline",
    "run_checks",
    "write_baseline",
]
