"""Flow determinism rules (REP12x): seeds must trace to callers.

The REP10x family polices *syntactic* seeding discipline inside one
file; this family polices the *flow* of seed authority across call
boundaries, using the taint lattice in :mod:`repro.checks.dataflow`
and the project call graph:

* REP121 — a function creates ``default_rng(expr)`` where ``expr``
  references none of its parameters: the seed is hardcoded inside a
  helper, so callers cannot control (or even see) the stream —
  cross-module seed laundering;
* REP122 — a function that *receives* an rng-like parameter also
  calls ``default_rng`` unconditionally: it consumes a caller stream
  and reseeds behind the caller's back (the guarded
  ``if rng is None:`` fallback is REP106's territory and stays
  exempt);
* REP123 — a call edge where the caller has a seed-like parameter of
  its own but pins the callee's ``seed``/``rng`` argument to a
  constant, collapsing every caller seed onto one substream
  (project-scoped, resolved through the call graph);
* REP124 — a module-level ``Generator`` binding: a process-global
  stream whose state depends on import order and call history.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.checks.astutil import import_aliases, resolve_call
from repro.checks.callgraph import get_call_graph
from repro.checks.dataflow import (
    expr_is_traceable,
    iter_scoped_functions,
    nodes_under,
    param_names,
    tainted_names,
)
from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    finding,
)

#: Parameter names that carry a generator or seed across a call.
_RNG_PARAMS = {"rng", "generator"}
_SEED_PARAMS = {"seed", "seeds"}

_RNG_FACTORY = "numpy.random.default_rng"


def _seedlike_params(func: ast.AST) -> Set[str]:
    names = set()
    for name in param_names(func):
        if (
            name in _RNG_PARAMS
            or name in _SEED_PARAMS
            or name.endswith("_seed")
            or name.endswith("_rng")
        ):
            names.add(name)
    return names


def _rng_params(func: ast.AST) -> Set[str]:
    return {
        name
        for name in param_names(func)
        if name in _RNG_PARAMS or name.endswith("_rng")
    }


def _default_rng_calls(
    func: ast.AST, aliases: Dict[str, str]
) -> Iterator[ast.Call]:
    """default_rng calls in the function's own body (nested defs cut:
    each nested function is analyzed against its own parameters)."""
    for node in nodes_under(func):
        if (
            isinstance(node, ast.Call)
            and resolve_call(node.func, aliases) == _RNG_FACTORY
        ):
            yield node


def _seed_exprs(call: ast.Call) -> List[ast.AST]:
    return list(call.args) + [kw.value for kw in call.keywords]


def _is_unseeded(call: ast.Call) -> bool:
    """The REP105 shapes: no args, or a single literal ``None``."""
    exprs = _seed_exprs(call)
    if not exprs:
        return True
    return (
        len(exprs) == 1
        and isinstance(exprs[0], ast.Constant)
        and exprs[0].value is None
    )


def _assigns_to(call: ast.Call, func: ast.AST, names: Set[str]) -> bool:
    """Whether ``call`` is the RHS of an assignment to one of ``names``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        if node.value is not call:
            continue
        return any(
            isinstance(t, ast.Name) and t.id in names for t in node.targets
        )
    return False


def _statement_of(call: ast.Call, func: ast.AST) -> Optional[ast.stmt]:
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and any(
            inner is call for inner in ast.walk(node)
        ):
            return node
    return None


def _guarded_by_param(call: ast.Call, func: ast.AST, rng_names: Set[str]) -> bool:
    """Whether the call sits under an ``if rng is None:``-style guard.

    A statement that itself reads the rng parameter (``rng = rng or
    default_rng(seed)``) counts as guarded too: the caller's stream
    still wins when supplied.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.If) and (
            {n.id for n in ast.walk(node.test)
             if isinstance(n, ast.Name)} & rng_names
        ):
            if any(inner is call for inner in ast.walk(node)):
                return True
    statement = _statement_of(call, func)
    if statement is not None:
        reads = {
            n.id
            for n in ast.walk(statement)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
        if reads & rng_names:
            return True
    return False


def _check_hardcoded_seed(ctx: SourceFile) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    for func, inherited in iter_scoped_functions(ctx.tree):
        tainted = tainted_names(func, set(param_names(func)) | inherited)
        rng_names = _rng_params(func)
        for call in _default_rng_calls(func, aliases):
            if _is_unseeded(call):
                continue  # REP105's finding
            exprs = _seed_exprs(call)
            if any(expr_is_traceable(e, tainted) for e in exprs):
                continue
            if rng_names and _assigns_to(call, func, rng_names):
                continue  # the guarded-fallback shape: REP106's finding
            yield finding(
                RULES["REP121"], ctx.rel, call,
                f"function {func.name!r} seeds default_rng() from a value "
                "with no path to any of its parameters",
                hint="accept a seed=/rng= parameter and derive the stream "
                "from it (e.g. default_rng((seed, stream_index))) so "
                "callers keep seed authority",
            )


def _check_consume_and_reseed(ctx: SourceFile) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    for func, _inherited in iter_scoped_functions(ctx.tree):
        rng_names = _rng_params(func)
        if not rng_names:
            continue
        for call in _default_rng_calls(func, aliases):
            if _guarded_by_param(call, func, rng_names):
                continue
            yield finding(
                RULES["REP122"], ctx.rel, call,
                f"function {func.name!r} receives {sorted(rng_names)!r} but "
                "unconditionally builds its own generator, discarding the "
                "caller's stream",
                hint="draw from the passed rng, or guard the fallback with "
                "'if rng is None:' so a supplied stream wins",
            )


def _constant_only(expr: ast.AST) -> bool:
    """No names anywhere, and at least one non-None literal leaf."""
    has_literal = False
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            return False
        if isinstance(node, ast.Constant):
            if node.value is None:
                return False
            has_literal = True
        elif not isinstance(
            node, (ast.Tuple, ast.List, ast.UnaryOp, ast.USub, ast.UAdd,
                   ast.expr_context, ast.operator, ast.unaryop)
        ):
            return False
    return has_literal


def _pins_constant(expr: ast.AST, ctx: SourceFile) -> bool:
    if isinstance(expr, ast.Call):
        aliases = import_aliases(ctx.tree)
        if resolve_call(expr.func, aliases) == _RNG_FACTORY:
            exprs = _seed_exprs(expr)
            return bool(exprs) and all(_constant_only(e) for e in exprs)
        return False
    return _constant_only(expr)


def _check_seed_chain(project: Project) -> Iterator[Finding]:
    graph = get_call_graph(project)
    for site in graph.sites:
        if site.caller is None:
            continue
        caller_seeds = _seedlike_params(site.caller.node)
        if not caller_seeds:
            continue
        callee_seeds = _seedlike_params(site.callee.node)
        if not callee_seeds:
            continue
        for param, expr in site.bound_args().items():
            if param not in callee_seeds:
                continue
            if _pins_constant(expr, site.ctx):
                yield finding(
                    RULES["REP123"], site.ctx.rel, site.node,
                    f"{site.caller.name!r} has seed parameter(s) "
                    f"{sorted(caller_seeds)!r} but pins "
                    f"{site.callee.name!r}'s {param}= to a constant, "
                    "collapsing every caller seed onto one substream",
                    hint="derive the argument from the caller's seed "
                    "(e.g. seed=(seed, stream_index)) or thread the rng "
                    "through",
                )


def _check_module_generator(ctx: SourceFile) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    for node in nodes_under(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and resolve_call(value.func, aliases)
            in (_RNG_FACTORY, "numpy.random.Generator")
        ):
            yield finding(
                RULES["REP124"], ctx.rel, node,
                "module-level Generator is process-global mutable state; "
                "draw order couples every caller to import and call "
                "history",
                hint="construct generators inside the consuming function "
                "from an explicit seed parameter",
            )


RULES = {
    "REP121": Rule(
        "REP121", "hardcoded-seed-in-helper", Severity.ERROR,
        "default_rng seeded from values untraceable to any parameter",
        scope="file", file_checker=_check_hardcoded_seed,
    ),
    "REP122": Rule(
        "REP122", "consume-and-reseed", Severity.ERROR,
        "functions that take an rng but unconditionally reseed",
        scope="file", file_checker=_check_consume_and_reseed,
    ),
    "REP123": Rule(
        "REP123", "seed-chain-break", Severity.ERROR,
        "seeded callers pinning a callee's seed/rng to a constant",
        scope="project", project_checker=_check_seed_chain,
    ),
    "REP124": Rule(
        "REP124", "module-global-generator", Severity.ERROR,
        "module-level numpy Generator bindings",
        scope="file", file_checker=_check_module_generator,
    ),
}
