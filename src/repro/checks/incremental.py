"""Fingerprint-keyed finding cache for incremental re-runs.

The engine's cost is dominated by parsing and re-walking unchanged
files, which on a warm tree is all of them.  This module keeps the
PR-1 cache discipline (content-addressed keys, atomic writes, corrupt
entries evicted silently, never trusted across versions):

* each **file entry** is keyed by the sha256 of the file's source and
  stores that file's post-suppression findings — file-scoped rules
  only see one module, so source-identical means finding-identical
  (suppression comments live in the same source, so edits to them
  rotate the key too);
* the single **project entry** is keyed by the sha256 over every
  ``(rel, sha)`` pair of the run, because a project-scoped rule may
  react to any file changing, appearing, or vanishing;
* every entry embeds :data:`engine version <checks_version>` — the
  sha256 of the ``repro.checks`` package's own sources — so editing
  any rule invalidates the whole cache without a manual schema bump.

Cached findings are pre-``--select``/``--ignore``: the cache always
stores the full rule set's output and the engine filters afterwards,
so one cache serves every flag combination.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checks.model import Finding, Severity

#: Default cache location, sibling to the corpus caches of PR 1.
DEFAULT_CACHE_DIR = Path(".repro_cache") / "checks"

_CACHE_BASENAME = "findings.json"

_version_memo: Optional[str] = None


def checks_version() -> str:
    """sha256 over the checks package's own sources (memoized).

    Any edit to any rule, the engine, or this module rotates the
    version and silently drops every cached entry.
    """
    global _version_memo
    if _version_memo is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).parent
        for path in sorted(package_dir.glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _version_memo = digest.hexdigest()
    return _version_memo


def source_fingerprint(source: str) -> str:
    """Content key of one file: sha256 of its exact source text."""
    return hashlib.sha256(source.encode()).hexdigest()


def project_fingerprint(pairs: Sequence[Tuple[str, str]]) -> str:
    """Key of the whole scanned set: every ``(rel, sha)``, in order."""
    digest = hashlib.sha256()
    for rel, sha in sorted(pairs):
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(sha.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _finding_to_entry(item: Finding) -> Dict[str, object]:
    return {
        "rule": item.rule_id,
        "severity": item.severity.value,
        "path": item.path,
        "line": item.line,
        "col": item.col,
        "message": item.message,
        "hint": item.hint,
    }


def _finding_from_entry(entry: Dict[str, object]) -> Finding:
    return Finding(
        rule_id=str(entry["rule"]),
        severity=Severity(entry["severity"]),
        path=str(entry["path"]),
        line=int(entry["line"]),  # type: ignore[arg-type]
        col=int(entry["col"]),  # type: ignore[arg-type]
        message=str(entry["message"]),
        hint=str(entry.get("hint", "")),
    )


class FindingCache:
    """One run's view of the on-disk cache: load once, save once."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.path = self.root / _CACHE_BASENAME
        self.version = checks_version()
        self._files: Dict[str, Dict[str, object]] = {}
        self._project: Optional[Dict[str, object]] = None
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return  # missing or corrupt: start cold
        if not isinstance(raw, dict) or raw.get("version") != self.version:
            return  # stale engine: every entry is suspect
        files = raw.get("files")
        if isinstance(files, dict):
            self._files = files
        project = raw.get("project")
        if isinstance(project, dict):
            self._project = project

    # -- file entries -----------------------------------------------------

    def get_file(self, rel: str, sha: str) -> Optional[List[Finding]]:
        """Cached file-scope findings for ``rel`` at ``sha``, or None."""
        entry = self._files.get(rel)
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            findings = entry.get("findings")
            assert isinstance(findings, list)
            return [_finding_from_entry(item) for item in findings]
        except (KeyError, ValueError, TypeError, AssertionError):
            self._files.pop(rel, None)  # corrupt entry: evict
            self._dirty = True
            return None

    def put_file(self, rel: str, sha: str, findings: Sequence[Finding]) -> None:
        """Store a file's findings under its content hash."""
        self._files[rel] = {
            "sha": sha,
            "findings": [_finding_to_entry(item) for item in findings],
        }
        self._dirty = True

    # -- the project entry ------------------------------------------------

    def get_project(self, key: str) -> Optional[List[Finding]]:
        """Cached project-scope findings for fingerprint ``key``."""
        entry = self._project
        if entry is None or entry.get("key") != key:
            return None
        try:
            findings = entry.get("findings")
            assert isinstance(findings, list)
            return [_finding_from_entry(item) for item in findings]
        except (KeyError, ValueError, TypeError, AssertionError):
            self._project = None
            self._dirty = True
            return None

    def put_project(self, key: str, findings: Sequence[Finding]) -> None:
        """Store the project-scope findings under the set fingerprint."""
        self._project = {
            "key": key,
            "findings": [_finding_to_entry(item) for item in findings],
        }
        self._dirty = True

    # -- persistence ------------------------------------------------------

    def save(self) -> None:
        """Atomically persist (tmp + rename); no-op when unchanged."""
        if not self._dirty:
            return
        document = {
            "version": self.version,
            "files": self._files,
            "project": self._project,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.root, suffix=".tmp", delete=False
        )
        try:
            with handle as stream:
                json.dump(document, stream)
            os.replace(handle.name, self.path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
        self._dirty = False
