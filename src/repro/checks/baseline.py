"""Findings baseline: land new rules warn-only, promote later.

A baseline is a JSON snapshot of the findings a tree is known to
carry.  ``repro checks --write-baseline`` records the current
findings; subsequent runs with ``--baseline`` subtract them, so a new
rule can ship enforcing *new* violations immediately while the
existing backlog is burned down separately.

Fingerprints deliberately exclude line numbers — pure code motion
must not resurrect baselined findings — and are counted, so adding a
*second* occurrence of a baselined pattern in the same file still
fails the run.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.checks.model import Finding

_VERSION = 1


def fingerprint(item: Finding) -> str:
    """Stable, line-independent identity of one finding."""
    payload = f"{item.rule_id}::{item.path}::{item.message}"
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


def write_baseline(path: Path, findings: List[Finding]) -> int:
    """Snapshot ``findings`` to ``path``; returns the entry count."""
    counts = Counter(fingerprint(item) for item in findings)
    annotated = {}
    for item in findings:
        key = fingerprint(item)
        if key not in annotated:
            annotated[key] = {
                "count": counts[key],
                "rule": item.rule_id,
                "path": item.path,
                "message": item.message,
            }
    document = {"version": _VERSION, "findings": annotated}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return len(annotated)


def load_baseline(path: Path) -> Dict[str, int]:
    """The fingerprint -> allowed-count map of a snapshot."""
    document = json.loads(path.read_text())
    if document.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {document.get('version')!r} "
            f"in {path}"
        )
    return {
        key: int(entry.get("count", 1))
        for key, entry in document.get("findings", {}).items()
    }


def apply_baseline(
    findings: List[Finding], allowed: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Subtract baselined findings; returns (surviving, suppressed)."""
    budget = dict(allowed)
    surviving: List[Finding] = []
    suppressed = 0
    for item in findings:
        key = fingerprint(item)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            surviving.append(item)
    return surviving, suppressed
