"""Data model of the static-analysis pass: rules, findings, contexts.

A :class:`Rule` is a declarative description of one invariant — its
stable id (``REPxxx``), severity, and the checker callable that
enforces it.  Checkers come in two scopes:

* ``file`` rules receive one :class:`FileContext` (a parsed module)
  and yield :class:`Finding` records for that file alone;
* ``project`` rules receive the whole :class:`Project` (every parsed
  file of the run) and may cross-reference modules — the registry
  consistency and reference-parity families live here because their
  invariants span files.

Findings are plain frozen dataclasses so the CLI can render them as
text or JSON without any further lookups.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """How a finding affects the exit code: errors fail the run."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file position."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable report ordering: path, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """The one-line (plus optional hint) text-format rendering."""
        text = (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
            f"[{self.severity.value}] {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, object]:
        """The JSON-format representation (``--format json``)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class SourceFile:
    """One parsed python module of the run."""

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]

    def line_of(self, needle: str) -> int:
        """1-based line of the first occurrence of ``needle`` (or 1)."""
        for index, line in enumerate(self.lines, start=1):
            if needle in line:
                return index
        return 1


@dataclass
class Project:
    """Every file of one checker run, plus an on-demand parse cache."""

    files: List[SourceFile]
    by_module: Dict[str, SourceFile] = field(default_factory=dict)
    _sibling_cache: Dict[Path, Optional[SourceFile]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.by_module:
            self.by_module = {f.module: f for f in self.files}

    def module(self, name: str) -> Optional[SourceFile]:
        """The scanned file whose dotted module name is ``name``."""
        return self.by_module.get(name)

    def resolve_module(self, name: str, near: SourceFile) -> Optional[SourceFile]:
        """Find a module by dotted name, else by sibling-file fallback.

        The fallback lets the reference-parity rules work on fixture
        trees that mimic the package layout without being importable:
        ``repro.dataset.synthesis`` degrades to ``synthesis.py`` next
        to the referring file.
        """
        found = self.by_module.get(name)
        if found is not None:
            return found
        sibling = near.path.parent / (name.rsplit(".", 1)[-1] + ".py")
        return self.parse_path(sibling)

    def parse_path(self, path: Path) -> Optional[SourceFile]:
        """Parse a file outside the scanned set (memoized, best effort)."""
        if path in self._sibling_cache:
            return self._sibling_cache[path]
        parsed: Optional[SourceFile] = None
        if path.is_file():
            try:
                source = path.read_text()
                parsed = SourceFile(
                    path=path,
                    rel=str(path),
                    module=module_name_for(path),
                    source=source,
                    tree=ast.parse(source, filename=str(path)),
                    lines=tuple(source.splitlines()),
                )
            except (OSError, SyntaxError):
                parsed = None
        self._sibling_cache[path] = parsed
        return parsed


FileChecker = Callable[[SourceFile], Iterator[Finding]]
ProjectChecker = Callable[[Project], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """One enforceable invariant of the codebase."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    scope: str  # "file" | "project"
    file_checker: Optional[FileChecker] = None
    project_checker: Optional[ProjectChecker] = None


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` chain."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def finding(
    rule: "Rule",
    ctx_rel: str,
    node: ast.AST,
    message: str,
    hint: str = "",
) -> Finding:
    """A :class:`Finding` anchored at an AST node of ``ctx_rel``."""
    return Finding(
        rule_id=rule.rule_id,
        severity=rule.severity,
        path=ctx_rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
        hint=hint,
    )
