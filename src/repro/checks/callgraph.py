"""Project-wide symbol table and call graph for cross-module rules.

The file-scoped rule families (REP1xx determinism, REP50x robustness)
see one module at a time, so the two failure modes that matter most at
fleet scale — a seed laundered through a helper in another module, and
a resource escaping its creating function — are exactly the ones they
cannot express.  This module gives project-scoped rules the missing
structure:

* :func:`build_symbol_table` indexes every module-level function and
  class method of the scanned set under its dotted qualified name
  (``repro.dataset.synthesis.synthesize_jobs``,
  ``repro.cluster.sharded.ShardedFleetEngine.replay``);
* :func:`build_call_graph` resolves every call site whose target is a
  project symbol — through the file's import aliases, through local
  top-level defs, and through ``self.method()`` within a class — into
  :class:`CallSite` edges carrying the argument binding, so a rule can
  ask "which caller expression flows into parameter ``seed``?".

Resolution is deliberately conservative: a call rooted at an
unresolvable local (``engine.run()``) creates no edge, so dataflow
rules never misfire on objects they cannot see.  The graph is built
once per :class:`Project` and memoized on the instance
(:func:`get_call_graph`), because several rule families share it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checks.astutil import dotted_name, import_aliases
from repro.checks.model import Project, SourceFile

FunctionNode = ast.FunctionDef  # AsyncFunctionDef shares the shape


@dataclass(frozen=True)
class FunctionInfo:
    """One addressable function of the project: a def plus its home."""

    qualname: str
    ctx: SourceFile
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # enclosing class name for methods

    @property
    def name(self) -> str:
        return getattr(self.node, "name", "<lambda>")

    def params(self) -> Tuple[str, ...]:
        """Positional + keyword-only parameter names, in order."""
        args = self.node.args  # type: ignore[attr-defined]
        ordered = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        return tuple(arg.arg for arg in ordered)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee`` at ``node``."""

    ctx: SourceFile
    caller: Optional[FunctionInfo]  # None for module-level calls
    callee: FunctionInfo
    node: ast.Call

    def bound_args(self) -> Dict[str, ast.AST]:
        """Map callee parameter names to the caller expressions passed.

        Positional arguments bind in order (skipping ``self`` when the
        call goes through an instance receiver), keywords bind by name;
        ``*args``/``**kwargs`` at the call site end positional binding
        early rather than guess.
        """
        params = list(self.callee.params())
        if params and params[0] in ("self", "cls") and self._via_receiver():
            params = params[1:]
        bound: Dict[str, ast.AST] = {}
        for index, arg in enumerate(self.node.args):
            if isinstance(arg, ast.Starred) or index >= len(params):
                break
            bound[params[index]] = arg
        for keyword in self.node.keywords:
            if keyword.arg is not None:
                bound[keyword.arg] = keyword.value
        return bound

    def _via_receiver(self) -> bool:
        return self.callee.cls is not None and isinstance(
            self.node.func, ast.Attribute
        )


@dataclass
class CallGraph:
    """Every resolved call edge of the project, indexed both ways."""

    table: Dict[str, FunctionInfo]
    sites: List[CallSite] = field(default_factory=list)
    _callers: Dict[str, List[CallSite]] = field(default_factory=dict)
    _callees: Dict[str, List[CallSite]] = field(default_factory=dict)

    def add(self, site: CallSite) -> None:
        """Record a resolved site and index it by caller and callee."""
        self.sites.append(site)
        self._callers.setdefault(site.callee.qualname, []).append(site)
        if site.caller is not None:
            self._callees.setdefault(site.caller.qualname, []).append(site)

    def callers_of(self, qualname: str) -> List[CallSite]:
        """Every resolved site that invokes ``qualname``."""
        return self._callers.get(qualname, [])

    def calls_in(self, qualname: str) -> List[CallSite]:
        """Every resolved outgoing edge from inside ``qualname``."""
        return self._callees.get(qualname, [])


def build_symbol_table(project: Project) -> Dict[str, FunctionInfo]:
    """Qualified name -> FunctionInfo for every def in the project."""
    table: Dict[str, FunctionInfo] = {}
    for ctx in project.files:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(f"{ctx.module}.{node.name}", ctx, node)
                table[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info = FunctionInfo(
                            f"{ctx.module}.{node.name}.{item.name}",
                            ctx, item, cls=node.name,
                        )
                        table[info.qualname] = info
    return table


def _enclosing_functions(
    tree: ast.Module,
) -> List[Tuple[ast.AST, Optional[str], List[ast.Call]]]:
    """(function or None, enclosing class, calls) per execution scope."""
    scopes: List[Tuple[ast.AST, Optional[str], List[ast.Call]]] = []

    def visit(node: ast.AST, func: Optional[ast.AST], cls: Optional[str],
              calls: List[ast.Call]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner: List[ast.Call] = []
                scopes.append((child, cls, inner))
                visit(child, child, cls, inner)
            elif isinstance(child, ast.ClassDef):
                visit(child, func, child.name, calls)
            else:
                if isinstance(child, ast.Call):
                    calls.append(child)
                visit(child, func, cls, calls)

    module_calls: List[ast.Call] = []
    visit(tree, None, None, module_calls)
    scopes.append((tree, None, module_calls))
    return scopes


def _resolve_target(
    call: ast.Call,
    ctx: SourceFile,
    cls: Optional[str],
    aliases: Dict[str, str],
    local_defs: Dict[str, str],
    table: Dict[str, FunctionInfo],
) -> Optional[FunctionInfo]:
    func = call.func
    if isinstance(func, ast.Name):
        qual = local_defs.get(func.id)
        if qual is None and func.id in aliases:
            qual = aliases[func.id]
        if qual is not None:
            return table.get(qual)
        return None
    parts = dotted_name(func)
    if parts is None:
        return None
    root = parts[0]
    if root in ("self", "cls") and cls is not None and len(parts) == 2:
        return table.get(f"{ctx.module}.{cls}.{parts[1]}")
    if root in aliases:
        qual = ".".join([aliases[root]] + parts[1:])
        return table.get(qual)
    if root in local_defs and len(parts) == 2:
        # Top-level class accessed unqualified: ``Maker.build``.
        return table.get(f"{local_defs[root]}.{parts[1]}")
    return None


def build_call_graph(project: Project) -> CallGraph:
    """Resolve every project-internal call edge of the scanned set."""
    table = build_symbol_table(project)
    graph = CallGraph(table=table)
    for ctx in project.files:
        aliases = import_aliases(ctx.tree)
        local_defs = {
            node.name: f"{ctx.module}.{node.name}"
            for node in ctx.tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        }
        for scope, cls, calls in _enclosing_functions(ctx.tree):
            caller: Optional[FunctionInfo] = None
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                prefix = f"{ctx.module}.{cls}." if cls else f"{ctx.module}."
                caller = table.get(prefix + scope.name)
            for call in calls:
                callee = _resolve_target(
                    call, ctx, cls, aliases, local_defs, table
                )
                if callee is not None:
                    graph.add(
                        CallSite(ctx=ctx, caller=caller, callee=callee,
                                 node=call)
                    )
    return graph


def get_call_graph(project: Project) -> CallGraph:
    """The project's call graph, built once and memoized.

    Several rule families (flow determinism, resource lifetimes, the
    hot-path summaries) consult the graph in the same run; the memo
    keeps the engine's cost one traversal, not one per family.
    """
    cached = getattr(project, "_repro_callgraph", None)
    if cached is None:
        cached = build_call_graph(project)
        project._repro_callgraph = cached  # type: ignore[attr-defined]
    return cached
