"""CLI surface of the checker: ``python -m repro checks [paths]``.

Kept separate from :mod:`repro.cli` so the checker stays importable
(and testable) without dragging in the corpus/Study machinery.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import IO, List, Optional

from repro.checks.baseline import apply_baseline, load_baseline, write_baseline
from repro.checks.engine import RULES, exit_code, run_checks
from repro.checks.incremental import DEFAULT_CACHE_DIR, FindingCache
from repro.checks.model import Finding, Severity
from repro.checks.sarif import render_sarif


def add_checks_parser(commands: argparse._SubParsersAction) -> None:
    """Register the ``checks`` subcommand on the repro CLI."""
    checks = commands.add_parser(
        "checks",
        help=(
            "static analysis: determinism, registry, concurrency, "
            "parity, robustness, lifetimes, hot paths"
        ),
        description=(
            "AST-based enforcement of the repo's reproducibility "
            "invariants: seeded-rng discipline (REP10x) and "
            "cross-module seed flow (REP12x), registry and "
            "query-dispatch consistency (REP2xx), concurrency safety "
            "under the pooled executors (REP3xx), reference-kernel "
            "parity (REP4xx), failure-visibility robustness (REP50x), "
            "resource lifetimes through the call graph (REP51x), and "
            "hot-path performance discipline in the batch/sharded "
            "kernels (REP6xx)."
        ),
    )
    checks.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    checks.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule id prefixes to run (e.g. REP1,REP203)",
    )
    checks.add_argument(
        "--ignore", default=None, metavar="IDS",
        help="comma-separated rule id prefixes to skip",
    )
    checks.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="output_format", help="findings rendering (default: text)",
    )
    checks.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse and scan files across N processes (default: 1)",
    )
    checks.add_argument(
        "--changed", action="store_true",
        help="only report findings in files git sees as modified or "
        "untracked (all rules still run; pre-commit entry point)",
    )
    checks.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental finding cache for this run",
    )
    checks.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"finding cache location (default: {DEFAULT_CACHE_DIR})",
    )
    checks.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="subtract the findings recorded in this snapshot",
    )
    checks.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline (or "
        ".repro_checks_baseline.json) and exit 0",
    )
    checks.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    parts = [part.strip() for part in value.split(",") if part.strip()]
    return parts or None


def _render_text(findings: List[Finding], suppressed: int, out: IO[str]) -> None:
    for item in findings:
        print(item.render(), file=out)
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    summary = f"{errors} error(s), {warnings} warning(s)"
    if suppressed:
        summary += f", {suppressed} baselined"
    print(summary, file=out)


def _render_json(findings: List[Finding], suppressed: int, out: IO[str]) -> None:
    document = {
        "findings": [item.to_dict() for item in findings],
        "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
        "warnings": sum(
            1 for f in findings if f.severity is Severity.WARNING
        ),
        "baselined": suppressed,
    }
    print(json.dumps(document, indent=2), file=out)


def _list_rules(out: IO[str]) -> int:
    width = max(len(rule_id) for rule_id in RULES)
    for rule_id, rule in sorted(RULES.items()):
        print(
            f"{rule_id:<{width}}  [{rule.severity.value:<7}] "
            f"{rule.name}: {rule.description}",
            file=out,
        )
    return 0


def cmd_checks(args: argparse.Namespace, out: IO[str]) -> int:
    """Run the checker per parsed CLI args; returns the exit code."""
    if args.list_rules:
        return _list_rules(out)
    cache: Optional[FindingCache] = None
    if not getattr(args, "no_cache", False):
        cache_dir = getattr(args, "cache_dir", None)
        cache = FindingCache(Path(cache_dir) if cache_dir else None)
    findings = run_checks(
        args.paths,
        select=_split(args.select),
        ignore=_split(args.ignore),
        jobs=max(1, getattr(args, "jobs", 1) or 1),
        changed=getattr(args, "changed", False),
        cache=cache,
    )
    baseline_path = Path(args.baseline or ".repro_checks_baseline.json")
    if args.write_baseline:
        entries = write_baseline(baseline_path, findings)
        print(
            f"wrote {entries} baseline entr(ies) covering "
            f"{len(findings)} finding(s) to {baseline_path}",
            file=out,
        )
        return 0
    suppressed = 0
    if args.baseline is not None:
        findings, suppressed = apply_baseline(
            findings, load_baseline(baseline_path)
        )
    if args.output_format == "json":
        _render_json(findings, suppressed, out)
    elif args.output_format == "sarif":
        print(render_sarif(findings, RULES), file=out)
    else:
        _render_text(findings, suppressed, out)
    return exit_code(findings)
