"""Lightweight dataflow lattices the cross-module rules share.

Two abstract properties carry all three new rule families:

* **taint** — "derived from a caller-supplied parameter".  The flow
  determinism rules (REP12x) accept a ``default_rng(expr)`` only when
  ``expr`` references at least one name traceable to a parameter of
  the enclosing function (including ``self``-rooted attribute reads),
  so a constant seed buried in a helper is visible as laundering.
* **array-ness** — "bound to a numpy ndarray".  The hot-path rules
  (REP6xx) flag Python-level loops and per-element conversions only
  on values the analysis can prove array-like: numpy-call results,
  ndarray-annotated parameters, propagated copies/slices/arithmetic,
  and — through the call graph — results of project functions whose
  return statements are themselves array-like.

Both are forward fixpoints over *simple* assignments (``name = expr``
and tuple unpacking).  Attribute stores, containers, and anything the
lattice cannot prove stay out of the set, so the rules err toward
silence, never toward false findings.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.checks.astutil import import_aliases, resolve_call
from repro.checks.callgraph import get_call_graph
from repro.checks.model import Project, SourceFile


def param_names(func: ast.AST) -> List[str]:
    """Every parameter name of a def, in signature order."""
    args = func.args  # type: ignore[attr-defined]
    ordered = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    names = [arg.arg for arg in ordered]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def iter_scoped_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Set[str]]]:
    """Every def of a module with the names its enclosing scopes bind.

    Nested helpers inherit the parameters and locals of the functions
    they close over, so a closure drawing on an outer ``seed`` is
    still traceable.
    """

    def walk(node: ast.AST, inherited: Set[str]) -> Iterator[
        Tuple[ast.AST, Set[str]]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, set(inherited)
                own = inherited | set(param_names(child)) | _stored_names(child)
                yield from walk(child, own)
            else:
                yield from walk(child, inherited)

    yield from walk(tree, set())


def _stored_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def name_roots(expr: ast.AST) -> Set[str]:
    """Every Name read anywhere inside ``expr`` (chain roots included)."""
    roots: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            roots.add(node.id)
    return roots


def tainted_names(func: ast.AST, seeds: Set[str]) -> Set[str]:
    """Names transitively derived from ``seeds`` via simple assigns."""
    tainted = set(seeds)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            value = node.value
            if value is None or not (name_roots(value) & tainted):
                continue
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for name in _flatten_targets(target):
                    if name not in tainted:
                        tainted.add(name)
                        changed = True
    return tainted


def _flatten_targets(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)


def expr_is_traceable(expr: ast.AST, tainted: Set[str]) -> bool:
    """Whether ``expr`` references any parameter-derived name."""
    return bool(name_roots(expr) & tainted)


# ---------------------------------------------------------------------------
# array-ness
# ---------------------------------------------------------------------------

#: numpy call leaves that return Python-side scalars/containers, not arrays.
_NP_NON_ARRAY_LEAVES = {
    "float64", "float32", "int64", "intp", "bool_", "isscalar", "ndim",
    "shape", "size", "save", "savez", "seterr",
}

#: Array methods whose result is itself an array.
_ARRAY_PRESERVING_METHODS = {
    "copy", "astype", "reshape", "ravel", "flatten", "transpose", "clip",
    "cumsum", "round", "take", "repeat", "view", "squeeze", "compress",
}

#: Array methods/conversions that leave array-land.
_ARRAY_ESCAPING_METHODS = {"tolist", "item", "tobytes", "dump"}


def _annotation_is_array(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return False
    return "ndarray" in text or "NDArray" in text


def _call_is_array_source(
    node: ast.Call,
    aliases: Dict[str, str],
    summaries: Dict[str, bool],
    local_calls: Dict[int, str],
) -> bool:
    path = resolve_call(node.func, aliases)
    if path is not None and path.startswith("numpy."):
        leaf = path.rsplit(".", 1)[-1]
        return leaf not in _NP_NON_ARRAY_LEAVES
    qual = local_calls.get(id(node))
    if qual is not None:
        return summaries.get(qual, False)
    return False


class ArrayEvaluator:
    """Array-ness oracle for one function's expressions.

    Construction runs the forward fixpoint over the function's simple
    assignments; :meth:`is_array` then classifies arbitrary
    expressions against the resulting bound-name set.  ``summaries``
    maps project qualnames to "returns an array"; ``local_calls`` maps
    ``id(call_node)`` to the resolved qualname, both produced by
    :func:`array_summaries`.
    """

    def __init__(
        self,
        func: ast.AST,
        ctx: SourceFile,
        summaries: Optional[Dict[str, bool]] = None,
        local_calls: Optional[Dict[int, str]] = None,
    ):
        self._aliases = import_aliases(ctx.tree)
        self._summaries = summaries or {}
        self._local_calls = local_calls or {}
        self.bound: Set[str] = set()
        args = func.args  # type: ignore[attr-defined]
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if _annotation_is_array(arg.annotation):
                self.bound.add(arg.arg)
        changed = True
        while changed:
            changed = False
            for node in ast.walk(func):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                if node.value is None or not self.is_array(node.value):
                    continue
                targets = (
                    list(node.targets)
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id not in self.bound
                    ):
                        self.bound.add(target.id)
                        changed = True

    def is_array(self, expr: ast.AST) -> bool:
        """Whether ``expr`` provably evaluates to an ndarray."""
        if isinstance(expr, ast.Name):
            return expr.id in self.bound
        if isinstance(expr, ast.Subscript):
            return self.is_array(expr.value)
        if isinstance(expr, ast.BinOp):
            return self.is_array(expr.left) or self.is_array(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.is_array(expr.operand)
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Attribute):
                attr = expr.func.attr
                if attr in _ARRAY_ESCAPING_METHODS:
                    return False
                if attr in _ARRAY_PRESERVING_METHODS:
                    return self.is_array(expr.func.value)
            return _call_is_array_source(
                expr, self._aliases, self._summaries, self._local_calls
            )
        return False


def array_bound_names(
    func: ast.AST,
    ctx: SourceFile,
    summaries: Optional[Dict[str, bool]] = None,
    local_calls: Optional[Dict[int, str]] = None,
) -> Set[str]:
    """Names provably bound to ndarrays inside ``func``."""
    return ArrayEvaluator(func, ctx, summaries, local_calls).bound


def array_summaries(
    project: Project,
) -> Tuple[Dict[str, bool], Dict[int, str]]:
    """Project-wide "returns an ndarray" summaries plus call links.

    Two passes: the first classifies each function from local evidence
    only, the second folds the first pass's summaries back in through
    the call graph, so a wrapper returning ``helper_returning_array()``
    is classified too.  Memoized on the project instance.
    """
    cached = getattr(project, "_repro_array_summaries", None)
    if cached is not None:
        return cached
    graph = get_call_graph(project)
    local_calls: Dict[int, str] = {
        id(site.node): site.callee.qualname for site in graph.sites
    }
    summaries: Dict[str, bool] = {}
    for _ in range(2):
        for qualname, info in graph.table.items():
            bound = array_bound_names(
                info.node, info.ctx, summaries, local_calls
            )
            summaries[qualname] = _returns_array(
                info, bound, summaries, local_calls
            )
    result = (summaries, local_calls)
    project._repro_array_summaries = result  # type: ignore[attr-defined]
    return result


def _returns_array(
    info,
    bound: Set[str],
    summaries: Dict[str, bool],
    local_calls: Dict[int, str],
) -> bool:
    aliases = import_aliases(info.ctx.tree)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.Name) and value.id in bound:
            return True
        if isinstance(value, ast.Call) and _call_is_array_source(
            value, aliases, summaries, local_calls
        ):
            return True
        if _annotation_is_array(getattr(info.node, "returns", None)):
            return True
    return False


def loops_in(func: ast.AST) -> Iterator[ast.AST]:
    """Every for/while loop in a function's own body (nested defs cut)."""
    stack: List[ast.AST] = list(func.body)  # type: ignore[attr-defined]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def nodes_under(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))
