"""Robustness rules (REP50x): failures must stay visible and bounded.

The fault-tolerant execution layer (:mod:`repro.core.resilience`,
:mod:`repro.core.faults`) only delivers its contract — every failure
retried, recorded in the ledger, or quarantined — if no code path
swallows an exception or blocks forever first.  This family flags the
patterns that silently defeat it:

* REP501 — a bare ``except:`` handler catches ``KeyboardInterrupt``
  and ``SystemExit`` too, hiding even deliberate shutdown (a handler
  that re-raises is allowed);
* REP502 — a broad handler (``Exception``/``BaseException``/bare) in a
  pooled builder or worker that neither re-raises nor uses the caught
  exception swallows the failure: the executor's ledger never sees it
  and a wrong artifact looks like a built one;
* REP503 — an untimed pool wait (``wait()``/``as_completed()`` without
  ``timeout``, ``Future.result()`` with no arguments) can block the
  engine forever on one lost worker, reported as a warning;
* REP504 — ``raise NewError(...)`` inside an except handler without
  ``from`` drops the explicit cause chain the failure ledger records
  (``from err`` to chain, ``from None`` to suppress on purpose),
  reported as a warning;
* REP506 — an unbounded socket wait in the serve path: ``await
  x.drain()`` / ``await x.wait_closed()`` awaited directly (outside
  ``asyncio.wait_for``) parks the daemon's connection handler forever
  on one stuck peer, defeating the overload layer's promise that every
  wait is bounded by a deadline or an I/O timeout;
* REP505 — a ``multiprocessing.shared_memory.SharedMemory`` segment
  created (or attached) outside a context manager, in a scope with no
  ``try``/``finally`` that calls ``.close()``/``.unlink()``, leaks a
  kernel object past the process: the sharded fleet engine's
  broadcast/attach discipline is reclaim-on-every-path.  A segment
  that *escapes* its creating scope — returned, yielded, stored on
  ``self``, or passed onward — is exempt here: the obligation moves
  with it, and the REP51x lifetime family audits the receiving side
  through the call graph.

Builder/worker discovery for REP502 is shared with the concurrency
family: builders are ``Study`` methods named by literal
``ArtifactSpec`` calls anywhere in the scanned set, workers are
top-level functions passed by name inside pool-importing modules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.astutil import import_aliases, resolve_call
from repro.checks.concurrency import (
    _imports_pool,
    _pooled_functions,
    in_serve_path,
)
from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    finding,
)

#: Exception names whose handlers count as "broad" for REP502.
_BROAD_HANDLERS = {"Exception", "BaseException"}

#: Pool-synchronisation callables that accept a ``timeout`` keyword.
_TIMED_WAITS = {
    "concurrent.futures.wait",
    "concurrent.futures.as_completed",
}


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _check_bare_except(ctx: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler) or node.type is not None:
            continue
        if _handler_reraises(node):
            continue
        yield finding(
            RULES["REP501"], ctx.rel, node,
            "bare 'except:' also catches KeyboardInterrupt/SystemExit",
            hint="catch Exception (or a taxonomy class from "
            "repro.core.resilience) so shutdown stays deliverable",
        )


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    kinds = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(kind, ast.Name) and kind.id in _BROAD_HANDLERS
        for kind in kinds
    )


def _handler_uses_exception(handler: ast.ExceptHandler) -> bool:
    """Whether the body raises, or reads the bound exception name."""
    if any(isinstance(node, ast.Raise) for node in ast.walk(handler)):
        return True
    if handler.name is None:
        return False
    return any(
        isinstance(node, ast.Name)
        and node.id == handler.name
        and isinstance(node.ctx, ast.Load)
        for node in ast.walk(handler)
    )


def _check_swallowed(project: Project) -> Iterator[Finding]:
    for ctx, func, kind in _pooled_functions(project):
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(func):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _handler_is_broad(node) or _handler_uses_exception(node):
                continue
            yield finding(
                RULES["REP502"], ctx.rel, node,
                f"{kind} {func.name!r} swallows a broad exception; the "
                "failure never reaches the executor's ledger",
                hint="let it propagate (the engine retries/quarantines), "
                "or re-raise a taxonomy error with 'from exc'",
            )


def _check_untimed_waits(ctx: SourceFile) -> Iterator[Finding]:
    if not _imports_pool(ctx.tree):
        return
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        has_timeout = any(kw.arg == "timeout" for kw in node.keywords)
        path = resolve_call(node.func, aliases)
        if path in _TIMED_WAITS and not has_timeout:
            name = path.rsplit(".", 1)[-1]
            yield finding(
                RULES["REP503"], ctx.rel, node,
                f"{name}() without a timeout can block the engine forever "
                "on one lost worker",
                hint="wait in bounded ticks, e.g. "
                "wait(pending, timeout=_WAIT_TICK_S)",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "result"
            and not node.args
            and not has_timeout
        ):
            yield finding(
                RULES["REP503"], ctx.rel, node,
                "Future.result() without a timeout can block forever on a "
                "lost worker",
                hint="call result(timeout=0) on futures already reported "
                "done, or pass an explicit budget",
            )


def _raised_in_handlers(
    func_or_module: ast.AST,
) -> Iterator[ast.Raise]:
    for node in ast.walk(func_or_module):
        if not isinstance(node, ast.ExceptHandler):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                yield inner


def _check_unchained_raise(ctx: SourceFile) -> Iterator[Finding]:
    for node in _raised_in_handlers(ctx.tree):
        if node.exc is None or node.cause is not None:
            continue
        if not isinstance(node.exc, ast.Call):
            continue  # re-raising a bound name keeps its chain
        name = _callable_name(node.exc.func)
        yield finding(
            RULES["REP504"], ctx.rel, node,
            f"raise {name}(...) inside an except handler drops the "
            "explicit cause chain",
            hint="use 'raise ... from err' to chain (the failure ledger "
            "records the chain) or 'from None' to suppress on purpose",
        )


def _callable_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return "<exception>"


#: The shared-memory factory REP505 tracks (resolved through imports).
_SHM_FACTORY = "multiprocessing.shared_memory.SharedMemory"

#: Attribute calls in a ``finally`` that count as reclaiming a segment.
_SHM_FINALIZERS = {"close", "unlink"}


def _own_scope_nodes(body) -> Iterator[ast.AST]:
    """Every node of a scope's own body, not descending into nested defs."""
    stack = [
        node
        for node in body
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


def _scope_bodies(tree: ast.Module) -> Iterator[list]:
    """The module body plus every function/method body in the file."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _scope_reclaims(own_nodes) -> bool:
    """Whether any ``finally`` in the scope calls ``close``/``unlink``."""
    for node in own_nodes:
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for final in node.finalbody:
            for inner in ast.walk(final):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in _SHM_FINALIZERS
                ):
                    return True
    return False


def _check_leaked_sharedmem(ctx: SourceFile) -> Iterator[Finding]:
    from repro.checks.lifetime import analyze_scope

    aliases = import_aliases(ctx.tree)
    for body in _scope_bodies(ctx.tree):
        own = list(_own_scope_nodes(body))
        segments = [
            node
            for node in own
            if isinstance(node, ast.Call)
            and resolve_call(node.func, aliases) == _SHM_FACTORY
        ]
        if not segments:
            continue
        managed = set()
        for node in own:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for inner in ast.walk(item.context_expr):
                        managed.add(id(inner))
        use = analyze_scope(own)
        reclaimed = _scope_reclaims(own)
        for call in segments:
            if id(call) in managed or reclaimed:
                continue
            if id(call) in use.escaped_calls:
                continue  # handed onward: the REP51x family's territory
            names = use.bound_to.get(id(call), [])
            if names and any(n in use.escaped_names for n in names):
                continue
            yield finding(
                RULES["REP505"], ctx.rel, call,
                "SharedMemory segment is never reclaimed: the kernel "
                "object outlives the process unless every path calls "
                "close() (and unlink() on the owner)",
                hint="wrap the segment in try/finally calling "
                "close()/unlink(), or manage it with a context manager",
            )


#: Stream methods whose bare await can park a handler forever.
_UNBOUNDED_STREAM_WAITS = {"drain", "wait_closed"}


def _check_unbounded_stream_waits(ctx: SourceFile) -> Iterator[Finding]:
    if not in_serve_path(ctx):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Await):
            continue
        call = node.value
        if not isinstance(call, ast.Call):
            continue
        if not isinstance(call.func, ast.Attribute):
            continue
        if call.func.attr not in _UNBOUNDED_STREAM_WAITS:
            continue
        yield finding(
            RULES["REP506"], ctx.rel, node,
            f"bare 'await ....{call.func.attr}()' in the serve path can "
            "park the connection handler forever on one stuck peer",
            hint="bound it: await asyncio.wait_for("
            f"x.{call.func.attr}(), _IO_TIMEOUT_S)",
        )


RULES = {
    "REP501": Rule(
        "REP501", "bare-except", Severity.ERROR,
        "bare except handlers that do not re-raise",
        scope="file", file_checker=_check_bare_except,
    ),
    "REP502": Rule(
        "REP502", "swallowed-exception", Severity.ERROR,
        "pooled builders/workers swallowing broad exceptions",
        scope="project", project_checker=_check_swallowed,
    ),
    "REP503": Rule(
        "REP503", "untimed-pool-wait", Severity.WARNING,
        "pool waits and Future.result calls without a timeout",
        scope="file", file_checker=_check_untimed_waits,
    ),
    "REP504": Rule(
        "REP504", "unchained-raise", Severity.WARNING,
        "new exceptions raised in handlers without 'from'",
        scope="file", file_checker=_check_unchained_raise,
    ),
    "REP505": Rule(
        "REP505", "leaked-shared-memory", Severity.ERROR,
        "SharedMemory segments without close()/unlink() in a finally "
        "block or context manager",
        scope="file", file_checker=_check_leaked_sharedmem,
    ),
    "REP506": Rule(
        "REP506", "unbounded-stream-wait", Severity.ERROR,
        "bare await drain()/wait_closed() in the serve path (no "
        "enclosing asyncio.wait_for)",
        scope="file", file_checker=_check_unbounded_stream_waits,
    ),
}
