"""Resource-lifetime rules (REP51x): escapes must still reach close().

REP505 pins the single-function case for ``SharedMemory``; this family
generalizes the discipline to every kernel-visible resource the fleet
tiers hold — shared-memory segments, memmaps, pool executors, file
handles — and, through the call graph, to resources that *escape*
their creating function:

* REP511 — a function returns a resource it created (a *producer*);
  every resolved caller must either reclaim the result (``with``,
  ``try/finally``, an explicit ``.close()``/``.shutdown()``/
  ``.unlink()``), hand it onward (return it, store it, pass it to
  another function), or it owns a leak — flagged at the call site;
* REP512 — a method stores a resource on ``self`` but no method of
  the class ever reclaims that attribute: the object cannot be shut
  down at all;
* REP513 — a pool/file/memmap created in a scope is neither reclaimed
  nor escapes it (the REP505 pattern for the non-SharedMemory kinds,
  including the discarded ``open(p).read()`` shape).

"Reaches a close on every path" is approximated the way REP505 does
it: a ``with`` block or a reclaim call anywhere in the owning scope
counts, handing the resource onward transfers the obligation, and
anything the analysis cannot resolve stays silent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.astutil import import_aliases, resolve_call
from repro.checks.callgraph import CallSite, FunctionInfo, get_call_graph
from repro.checks.dataflow import nodes_under
from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    finding,
)


@dataclass(frozen=True)
class ResourceKind:
    """One tracked resource family and the calls that reclaim it."""

    name: str
    closers: frozenset

    def describe_closers(self) -> str:
        """The reclaiming call names, slash-joined for hints."""
        return "/".join(sorted(self.closers))


_SHARED_MEMORY = ResourceKind(
    "SharedMemory segment", frozenset({"close", "unlink"})
)
_POOL = ResourceKind(
    "pool executor", frozenset({"shutdown", "close", "terminate", "join"})
)
_FILE = ResourceKind("file handle", frozenset({"close"}))
_MEMMAP = ResourceKind("memmap", frozenset({"close", "flush"}))

#: Fully qualified factory paths -> the resource kind they create.
_FACTORIES: Dict[str, ResourceKind] = {
    "multiprocessing.shared_memory.SharedMemory": _SHARED_MEMORY,
    "concurrent.futures.ProcessPoolExecutor": _POOL,
    "concurrent.futures.ThreadPoolExecutor": _POOL,
    "concurrent.futures.process.ProcessPoolExecutor": _POOL,
    "concurrent.futures.thread.ThreadPoolExecutor": _POOL,
    "multiprocessing.Pool": _POOL,
    "multiprocessing.pool.Pool": _POOL,
    "numpy.memmap": _MEMMAP,
    "numpy.lib.format.open_memmap": _MEMMAP,
}

#: Kinds REP513 reports file-locally (SharedMemory stays REP505's).
_LOCAL_KINDS = {_POOL, _FILE, _MEMMAP}

_ALL_CLOSERS = frozenset().union(*(k.closers for k in _FACTORIES.values()))


def resource_kind_of(
    call: ast.Call, aliases: Dict[str, str], shadowed: Set[str]
) -> Optional[ResourceKind]:
    """The resource a call creates, or None for ordinary calls."""
    path = resolve_call(call.func, aliases)
    if path in _FACTORIES:
        return _FACTORIES[path]
    if (
        isinstance(call.func, ast.Name)
        and call.func.id == "open"
        and "open" not in aliases
        and "open" not in shadowed
    ):
        return _FILE
    return None


@dataclass
class ScopeUse:
    """How one scope treats the resources it sees."""

    with_managed: Set[int]
    reclaimed_names: Set[str]
    escaped_names: Set[str]
    escaped_calls: Set[int]
    bound_to: Dict[int, List[str]]


def _direct_names(expr: ast.AST) -> Set[str]:
    """Names ``expr`` hands onward *as objects*, not reads through them.

    ``return seg`` and ``return seg, view`` escape ``seg``;
    ``return bytes(seg.buf[:4])`` merely reads through it — the
    segment itself never leaves the scope, so the close obligation
    stays local.
    """
    if isinstance(expr, ast.Name):
        return {expr.id}
    if isinstance(expr, ast.Starred):
        return _direct_names(expr.value)
    if isinstance(expr, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in expr.elts:
            names |= _direct_names(element)
        return names
    return set()


def _direct_calls(expr: ast.AST) -> Set[int]:
    """Call nodes ``expr`` hands onward directly (incl. tuple elements)."""
    if isinstance(expr, ast.Call):
        return {id(expr)}
    if isinstance(expr, ast.Starred):
        return _direct_calls(expr.value)
    if isinstance(expr, (ast.Tuple, ast.List)):
        ids: Set[int] = set()
        for element in expr.elts:
            ids |= _direct_calls(element)
        return ids
    return set()


def analyze_scope(own: List[ast.AST]) -> ScopeUse:
    """Classify bindings, reclaims, and escapes over a scope's nodes."""
    with_managed: Set[int] = set()
    reclaimed: Set[str] = set()
    escaped_names: Set[str] = set()
    escaped_calls: Set[int] = set()
    bound_to: Dict[int, List[str]] = {}
    for node in own:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for inner in ast.walk(item.context_expr):
                    with_managed.add(id(inner))
                    if isinstance(inner, ast.Name):
                        # ``f = open(p)`` later entered via ``with f:``.
                        reclaimed.add(inner.id)
        elif isinstance(node, ast.Assign):
            names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if isinstance(node.value, ast.Call):
                bound_to.setdefault(id(node.value), []).extend(names)
            if isinstance(node.value, ast.Name):
                # Aliasing transfers the obligation to the alias.
                escaped_names.add(node.value.id)
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    escaped_names |= _direct_names(node.value)
                    escaped_calls |= _direct_calls(node.value)
        elif isinstance(node, (ast.Return, ast.Expr)):
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Return):
                value = node.value
            elif isinstance(node.value, (ast.Yield, ast.YieldFrom)):
                value = node.value.value
            if value is not None:
                escaped_names |= _direct_names(value)
                escaped_calls |= _direct_calls(value)
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _ALL_CLOSERS
            ):
                root = node.func.value
                if isinstance(root, ast.Name):
                    reclaimed.add(root.id)
            for arg in list(node.args) + [k.value for k in node.keywords]:
                escaped_names |= _direct_names(arg)
                escaped_calls |= _direct_calls(arg)
    return ScopeUse(with_managed, reclaimed, escaped_names, escaped_calls,
                    bound_to)


def _own_scope_nodes(body: List[ast.stmt]) -> List[ast.AST]:
    """Every node of a scope's own body, nested defs excluded."""
    collected: List[ast.AST] = []
    stack: List[ast.AST] = [
        node
        for node in body
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    while stack:
        node = stack.pop()
        collected.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)
    return collected


def _scope_bodies(tree: ast.Module) -> Iterator[List[ast.stmt]]:
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _local_shadows(own: List[ast.AST]) -> Set[str]:
    return {
        node.id
        for node in own
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store)
    }


def _check_local_leaks(ctx: SourceFile) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    for body in _scope_bodies(ctx.tree):
        own = _own_scope_nodes(body)
        shadowed = _local_shadows(own)
        creations = [
            (node, resource_kind_of(node, aliases, shadowed))
            for node in own
            if isinstance(node, ast.Call)
        ]
        creations = [
            (node, kind) for node, kind in creations
            if kind is not None and kind in _LOCAL_KINDS
        ]
        if not creations:
            continue
        use = analyze_scope(own)
        for call, kind in creations:
            if id(call) in use.with_managed or id(call) in use.escaped_calls:
                continue
            names = use.bound_to.get(id(call), [])
            if names:
                if any(
                    n in use.reclaimed_names or n in use.escaped_names
                    for n in names
                ):
                    continue
            yield finding(
                RULES["REP513"], ctx.rel, call,
                f"{kind.name} is neither reclaimed in this scope nor "
                "handed to a caller",
                hint=f"use a with-statement or call "
                f"{kind.describe_closers()}() in a finally block",
            )


def _producers(project: Project) -> Dict[str, ResourceKind]:
    """Functions that return a resource they created, by qualname.

    Memoized on the project: REP511 and REP512 both consult it.
    """
    cached = getattr(project, "_repro_resource_producers", None)
    if cached is not None:
        return cached
    graph = get_call_graph(project)
    producers: Dict[str, ResourceKind] = {}
    for qualname, info in graph.table.items():
        aliases = import_aliases(info.ctx.tree)
        own = _own_scope_nodes(info.node.body)  # type: ignore[attr-defined]
        shadowed = _local_shadows(own)
        created: Dict[int, ResourceKind] = {}
        created_names: Dict[str, ResourceKind] = {}
        use = analyze_scope(own)
        for node in own:
            if not isinstance(node, ast.Call):
                continue
            kind = resource_kind_of(node, aliases, shadowed)
            if kind is None:
                continue
            created[id(node)] = kind
            for name in use.bound_to.get(id(node), []):
                created_names[name] = kind
        if not created:
            continue
        for node in own:
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Call) and id(value) in created:
                producers[qualname] = created[id(value)]
            elif (
                isinstance(value, ast.Name)
                and value.id in created_names
            ):
                producers[qualname] = created_names[value.id]
    project._repro_resource_producers = producers  # type: ignore[attr-defined]
    return producers


def _check_escaped_resources(project: Project) -> Iterator[Finding]:
    graph = get_call_graph(project)
    producers = _producers(project)
    for qualname, kind in producers.items():
        for site in graph.callers_of(qualname):
            yield from _audit_call_site(site, qualname, kind)


def _audit_call_site(
    site: CallSite, producer: str, kind: ResourceKind
) -> Iterator[Finding]:
    scope: List[ast.stmt]
    if site.caller is not None:
        scope = site.caller.node.body  # type: ignore[attr-defined]
    else:
        scope = site.ctx.tree.body
    own = _own_scope_nodes(scope)
    use = analyze_scope(own)
    call_id = id(site.node)
    if call_id in use.with_managed or call_id in use.escaped_calls:
        return
    names = use.bound_to.get(call_id, [])
    if names and any(
        n in use.reclaimed_names or n in use.escaped_names for n in names
    ):
        return
    where = (
        f"{site.caller.name!r}" if site.caller is not None else "module scope"
    )
    short = producer.rsplit(".", 1)[-1]
    if not names:
        message = (
            f"{where} discards the {kind.name} returned by {short}() "
            "without reclaiming it"
        )
    else:
        message = (
            f"{where} binds the {kind.name} from {short}() but never "
            f"calls {kind.describe_closers()}() on it"
        )
    yield Finding(
        rule_id="REP511",
        severity=RULES["REP511"].severity,
        path=site.ctx.rel,
        line=getattr(site.node, "lineno", 1),
        col=getattr(site.node, "col_offset", 0),
        message=message,
        hint="reclaim in a finally/with, or hand the resource onward "
        "(return it / store it on an owner with a close method)",
    )


def _check_self_stored(project: Project) -> Iterator[Finding]:
    graph = get_call_graph(project)
    producers = _producers(project)
    local_calls = {id(site.node): site.callee.qualname for site in graph.sites}
    for ctx in project.files:
        aliases = import_aliases(ctx.tree)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from _audit_class(
                    ctx, node, aliases, producers, local_calls
                )


def _audit_class(
    ctx: SourceFile,
    cls: ast.ClassDef,
    aliases: Dict[str, str],
    producers: Dict[str, ResourceKind],
    local_calls: Dict[int, str],
) -> Iterator[Finding]:
    stored: List[Tuple[ast.Assign, str, ResourceKind]] = []
    reclaimed_attrs: Set[str] = set()
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                kind = resource_kind_of(node.value, aliases, set())
                if kind is None:
                    qual = local_calls.get(id(node.value))
                    if qual is not None:
                        kind = producers.get(qual)
                if kind is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        stored.append((node, target.attr, kind))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ALL_CLOSERS
            ):
                receiver = node.func.value
                if (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                ):
                    reclaimed_attrs.add(receiver.attr)
    for assign, attr, kind in stored:
        if attr in reclaimed_attrs:
            continue
        yield finding(
            RULES["REP512"], ctx.rel, assign,
            f"class {cls.name!r} stores a {kind.name} on self.{attr} but "
            "no method ever reclaims it",
            hint=f"add a close()/__exit__ that calls "
            f"self.{attr}.{sorted(kind.closers)[0]}()",
        )


RULES = {
    "REP511": Rule(
        "REP511", "escaped-resource-unreclaimed", Severity.ERROR,
        "resources returned by a producer and leaked by a caller",
        scope="project", project_checker=_check_escaped_resources,
    ),
    "REP512": Rule(
        "REP512", "unreclaimable-self-resource", Severity.ERROR,
        "resources stored on self with no reclaiming method",
        scope="project", project_checker=_check_self_stored,
    ),
    "REP513": Rule(
        "REP513", "local-resource-leak", Severity.ERROR,
        "pools/files/memmaps neither reclaimed nor escaping their scope",
        scope="file", file_checker=_check_local_leaks,
    ),
}
