"""The rule engine: collect files, run rules, filter, report.

:func:`run_checks` is the library entry point; the CLI in
:mod:`repro.checks.cli` is a thin wrapper over it.  The engine is
deliberately boring: parse every file once, hand each
:class:`SourceFile` to the file-scoped rules, hand the whole
:class:`Project` to the project-scoped rules, then apply inline
suppressions (``# repro-checks: ignore[REP104]``) and the
``--select``/``--ignore`` id filters.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.checks import (
    api_rules,
    concurrency,
    determinism,
    parity,
    registry_rules,
    robustness,
)
from repro.checks.astutil import suppressed_rules
from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    module_name_for,
)

#: Every shipped rule, id -> Rule, in catalog order.
RULES: Dict[str, Rule] = {}
for family in (determinism, registry_rules, api_rules, concurrency, parity,
               robustness):
    RULES.update(family.RULES)

#: Directories never scanned (caches, VCS metadata, build output).
_SKIP_DIRS = {"__pycache__", ".git", ".repro_cache", ".egg-info", "build"}


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Every python file under the given files/directories, sorted."""
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _skipped(candidate)
            )
        elif path.suffix == ".py":
            collected.append(path)
    unique: List[Path] = []
    seen = set()
    for path in collected:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _skipped(path: Path) -> bool:
    return any(
        part in _SKIP_DIRS or part.endswith(".egg-info")
        for part in path.parts
    )


def _rel(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd().resolve()))
    except ValueError:
        return str(path)


def load_project(paths: Sequence[str]) -> "LoadedProject":
    """Parse every file; syntax errors become REP001 findings."""
    files: List[SourceFile] = []
    parse_errors: List[Finding] = []
    for path in collect_files(paths):
        rel = _rel(path)
        try:
            source = path.read_text()
        except OSError as error:
            parse_errors.append(
                Finding("REP001", Severity.ERROR, rel, 1, 0,
                        f"unreadable file: {error}")
            )
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            parse_errors.append(
                Finding(
                    "REP001", Severity.ERROR, rel,
                    error.lineno or 1, error.offset or 0,
                    f"syntax error: {error.msg}",
                )
            )
            continue
        files.append(
            SourceFile(
                path=path,
                rel=rel,
                module=module_name_for(path),
                source=source,
                tree=tree,
                lines=tuple(source.splitlines()),
            )
        )
    return LoadedProject(Project(files=files), parse_errors)


class LoadedProject:
    """A parsed project plus its parse-time findings."""

    def __init__(self, project: Project, parse_errors: List[Finding]):
        self.project = project
        self.parse_errors = parse_errors


def _matches(rule_id: str, prefixes: Optional[Sequence[str]]) -> bool:
    if not prefixes:
        return False
    return any(rule_id.startswith(prefix) for prefix in prefixes)


def _selected(
    rule_id: str,
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> bool:
    if select and not _matches(rule_id, select):
        return False
    if ignore and _matches(rule_id, ignore):
        return False
    return True


def _apply_suppressions(
    findings: Iterable[Finding], project: Project
) -> List[Finding]:
    by_rel: Dict[str, SourceFile] = {f.rel: f for f in project.files}
    surviving: List[Finding] = []
    for item in findings:
        ctx = by_rel.get(item.path)
        if ctx is not None and 1 <= item.line <= len(ctx.lines):
            suppressed = suppressed_rules(ctx.lines[item.line - 1])
            if suppressed is not None and (
                not suppressed or item.rule_id in suppressed
            ):
                continue
        surviving.append(item)
    return surviving


def run_checks(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run every (selected) rule over ``paths``; sorted findings."""
    loaded = load_project(paths)
    project = loaded.project
    findings: List[Finding] = list(loaded.parse_errors)

    for rule in RULES.values():
        if rule.scope == "file" and rule.file_checker is not None:
            if not _selected(rule.rule_id, select, ignore):
                continue
            for ctx in project.files:
                findings.extend(rule.file_checker(ctx))
        elif rule.scope == "project" and rule.project_checker is not None:
            # A project checker emits sibling ids from its whole family
            # (REP401's checker also yields REP402/REP404), so run it when
            # *any* rule in the family survives select/ignore; the emitted
            # findings are re-filtered by exact id below.
            family = rule.rule_id[:4]
            if any(
                _selected(rule_id, select, ignore)
                for rule_id in RULES
                if rule_id.startswith(family)
            ):
                findings.extend(rule.project_checker(project))

    # Project checkers emit sibling rule ids (e.g. the concurrency pass
    # emits REP301-REP304); honor select/ignore on the emitted id too.
    findings = [
        item for item in findings
        if item.rule_id == "REP001" or _selected(item.rule_id, select, ignore)
    ]
    findings = _apply_suppressions(findings, project)
    return sorted(findings, key=Finding.sort_key)


def exit_code(findings: Sequence[Finding]) -> int:
    """1 when any error-severity finding survives, else 0."""
    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0
