"""The rule engine: collect files, run rules, filter, report.

:func:`run_checks` is the library entry point; the CLI in
:mod:`repro.checks.cli` is a thin wrapper over it.  The engine is
deliberately boring: parse every file once, hand each
:class:`SourceFile` to the file-scoped rules, hand the whole
:class:`Project` to the project-scoped rules, then apply inline
suppressions (``# repro-checks: ignore[REP104]``) and the
``--select``/``--ignore`` id filters.

Three run modes layer on top of that core without changing it:

* **incremental** — when given a :class:`FindingCache`, per-file
  findings are keyed by source sha and the project pass by the sha of
  the whole file set, so a warm rerun on an unchanged tree skips
  parsing entirely (the cache stores post-suppression,
  pre-``--select`` findings: one cache serves every flag combination);
* **parallel** — ``jobs > 1`` fans the per-file parse+scan out over a
  process pool; project-scoped rules still run in-process on the
  assembled tree set;
* **changed** — findings are filtered to files ``git status`` reports
  as modified/untracked, for pre-commit-sized feedback loops (all
  rules still run: a project rule may blame a changed file for an
  edit elsewhere).

Suppression scoping: a ``# repro-checks: ignore[...]`` comment on a
``def`` line suppresses matching findings anywhere in that function's
span — this is the documented escape hatch for project-scoped rules
(a cross-module finding is *attributed* to the function but reported
at a line the author may not control, e.g. a call site inside it).
Any other line suppresses only findings reported on that exact line.
"""

from __future__ import annotations

import ast
import subprocess
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.checks import (
    api_rules,
    concurrency,
    determinism,
    flow_determinism,
    hotpath,
    lifetime,
    parity,
    registry_rules,
    robustness,
)
from repro.checks.astutil import suppressed_rules
from repro.checks.incremental import (
    FindingCache,
    project_fingerprint,
    source_fingerprint,
)
from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    module_name_for,
)

#: Every shipped rule, id -> Rule, in catalog order.
RULES: Dict[str, Rule] = {}
for family in (determinism, flow_determinism, registry_rules, api_rules,
               concurrency, parity, robustness, lifetime, hotpath):
    RULES.update(family.RULES)

#: Directories never scanned (caches, VCS metadata, build output).
_SKIP_DIRS = {"__pycache__", ".git", ".repro_cache", ".egg-info", "build"}

#: Engine-synthesized finding ids that bypass --select (never in RULES).
_SYNTHETIC_IDS = ("REP001", "REP002")


def collect_files(
    paths: Sequence[str],
    warnings: Optional[List[Finding]] = None,
) -> List[Path]:
    """Every python file under the given files/directories, sorted.

    An explicitly passed path that cannot be scanned — a non-``.py``
    file, or a path that does not exist — is reported as a REP002
    warning on ``warnings`` instead of being dropped silently (a typo
    in a pre-commit hook's path list must not look like a clean run).
    """
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _skipped(candidate)
            )
        elif path.suffix == ".py" and path.exists():
            collected.append(path)
        elif warnings is not None:
            reason = (
                "path does not exist"
                if not path.exists()
                else "not a python file"
            )
            warnings.append(
                Finding(
                    "REP002", Severity.WARNING, str(path), 1, 0,
                    f"explicitly passed path was not scanned: {reason}",
                    hint="pass .py files or directories containing them",
                )
            )
    unique: List[Path] = []
    seen = set()
    for path in collected:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _skipped(path: Path) -> bool:
    return any(
        part in _SKIP_DIRS or part.endswith(".egg-info")
        for part in path.parts
    )


def _rel(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd().resolve()))
    except ValueError:
        return str(path)


def load_project(paths: Sequence[str]) -> "LoadedProject":
    """Parse every file; syntax errors become REP001 findings."""
    files: List[SourceFile] = []
    parse_errors: List[Finding] = []
    for path in collect_files(paths):
        rel = _rel(path)
        try:
            source = path.read_text()
        except OSError as error:
            parse_errors.append(
                Finding("REP001", Severity.ERROR, rel, 1, 0,
                        f"unreadable file: {error}")
            )
            continue
        ctx, parse_error = _build_source_file(path, rel, source)
        if parse_error is not None:
            parse_errors.append(parse_error)
        if ctx is not None:
            files.append(ctx)
    return LoadedProject(Project(files=files), parse_errors)


class LoadedProject:
    """A parsed project plus its parse-time findings."""

    def __init__(self, project: Project, parse_errors: List[Finding]):
        self.project = project
        self.parse_errors = parse_errors


def _build_source_file(
    path: Path, rel: str, source: str
) -> Tuple[Optional[SourceFile], Optional[Finding]]:
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, Finding(
            "REP001", Severity.ERROR, rel,
            error.lineno or 1, error.offset or 0,
            f"syntax error: {error.msg}",
        )
    return (
        SourceFile(
            path=path,
            rel=rel,
            module=module_name_for(path),
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
        ),
        None,
    )


def _matches(rule_id: str, prefixes: Optional[Sequence[str]]) -> bool:
    if not prefixes:
        return False
    return any(rule_id.startswith(prefix) for prefix in prefixes)


def _selected(
    rule_id: str,
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> bool:
    if select and not _matches(rule_id, select):
        return False
    if ignore and _matches(rule_id, ignore):
        return False
    return True


def _def_suppression_spans(
    ctx: SourceFile,
) -> List[Tuple[int, int, Set[str]]]:
    """(start, end, rule ids) for every def-line suppression comment.

    An empty id set means a blanket ``# repro-checks: ignore`` — every
    rule is suppressed across the span.
    """
    spans: List[Tuple[int, int, Set[str]]] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not (1 <= node.lineno <= len(ctx.lines)):
            continue
        suppressed = suppressed_rules(ctx.lines[node.lineno - 1])
        if suppressed is None:
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        spans.append((node.lineno, end, suppressed))
    return spans


def _suppress_for_file(
    findings: Iterable[Finding], ctx: SourceFile
) -> List[Finding]:
    """Drop findings covered by same-line or def-line suppressions."""
    spans = _def_suppression_spans(ctx)
    surviving: List[Finding] = []
    for item in findings:
        if 1 <= item.line <= len(ctx.lines):
            suppressed = suppressed_rules(ctx.lines[item.line - 1])
            if suppressed is not None and (
                not suppressed or item.rule_id in suppressed
            ):
                continue
        if any(
            lo <= item.line <= hi and (not ids or item.rule_id in ids)
            for lo, hi, ids in spans
        ):
            continue
        surviving.append(item)
    return surviving


def _apply_suppressions(
    findings: Iterable[Finding], project: Project
) -> List[Finding]:
    by_rel: Dict[str, SourceFile] = {f.rel: f for f in project.files}
    surviving: List[Finding] = []
    for item in findings:
        ctx = by_rel.get(item.path)
        if ctx is not None and _suppress_for_file([item], ctx) == []:
            continue
        surviving.append(item)
    return surviving


def _scan_source_file(
    ctx: Optional[SourceFile], parse_error: Optional[Finding]
) -> List[Finding]:
    """Every file-scoped rule over one parsed file, post-suppression."""
    if ctx is None:
        assert parse_error is not None
        return [parse_error]
    findings: List[Finding] = []
    for rule in RULES.values():
        if rule.scope == "file" and rule.file_checker is not None:
            findings.extend(rule.file_checker(ctx))
    return _suppress_for_file(findings, ctx)


def _scan_payload(
    payload: Tuple[str, str, str],
) -> Tuple[str, List[Finding]]:
    """Process-pool worker: parse one file and run the file rules.

    Only findings travel back to the parent — AST trees pickle so
    slowly that returning them costs more than the parent re-parsing
    the file (the parent needs trees anyway for the project pass).
    Findings come back post-suppression so they are cacheable as-is.
    """
    path_str, rel, source = payload
    ctx, parse_error = _build_source_file(Path(path_str), rel, source)
    return rel, _scan_source_file(ctx, parse_error)


def _git_changed_rels() -> Set[str]:
    """Files ``git status`` reports touched (modified, added, untracked).

    Paths come back repo-root-relative, which matches the engine's
    ``rel`` keys when the checker runs from the repo root (the
    pre-commit and CI entry points both do).
    """
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=30, check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return set()
    if proc.returncode != 0:
        return set()
    changed: Set[str] = set()
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        entry = line[3:]
        if " -> " in entry:  # rename: blame the new path
            entry = entry.split(" -> ", 1)[1]
        entry = entry.strip().strip('"')
        if entry.endswith(".py"):
            changed.add(entry)
    return changed


def run_checks(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    changed: bool = False,
    cache: Optional[FindingCache] = None,
) -> List[Finding]:
    """Run every (selected) rule over ``paths``; sorted findings."""
    warnings: List[Finding] = []
    findings: List[Finding] = []
    entries: List[Tuple[Path, str, str, str]] = []
    for path in collect_files(paths, warnings=warnings):
        rel = _rel(path)
        try:
            source = path.read_text()
        except OSError as error:
            findings.append(
                Finding("REP001", Severity.ERROR, rel, 1, 0,
                        f"unreadable file: {error}")
            )
            continue
        entries.append((path, rel, source, source_fingerprint(source)))
    findings.extend(warnings)

    project_key = project_fingerprint(
        [(rel, sha) for _, rel, _, sha in entries]
    )
    cached_project = (
        cache.get_project(project_key) if cache is not None else None
    )
    file_hits: Dict[str, List[Finding]] = {}
    if cache is not None:
        for _, rel, _, sha in entries:
            hit = cache.get_file(rel, sha)
            if hit is not None:
                file_hits[rel] = hit

    if cached_project is not None and len(file_hits) == len(entries):
        # Fully warm: every per-file entry and the project entry hit,
        # so nothing needs parsing at all.
        for per_file in file_hits.values():
            findings.extend(per_file)
        findings.extend(cached_project)
    else:
        misses = [e for e in entries if e[1] not in file_hits]
        fresh: Dict[str, List[Finding]] = {}
        if jobs > 1 and len(misses) > 1:
            from concurrent.futures import ProcessPoolExecutor

            payloads = [
                (str(path), rel, source) for path, rel, source, _ in misses
            ]
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for rel, per_file in pool.map(
                    _scan_payload, payloads, chunksize=4
                ):
                    fresh[rel] = per_file

        files: List[SourceFile] = []
        for path, rel, source, sha in entries:
            ctx, parse_error = _build_source_file(path, rel, source)
            if rel in file_hits:
                per_file = file_hits[rel]
            else:
                per_file = fresh.get(rel)
                if per_file is None:
                    per_file = _scan_source_file(ctx, parse_error)
                if cache is not None:
                    cache.put_file(rel, sha, per_file)
            findings.extend(per_file)
            if ctx is not None:
                files.append(ctx)

        project = Project(files=files)
        if cached_project is None:
            project_findings: List[Finding] = []
            for rule in RULES.values():
                if rule.scope == "project" and rule.project_checker:
                    project_findings.extend(rule.project_checker(project))
            cached_project = _apply_suppressions(project_findings, project)
            if cache is not None:
                cache.put_project(project_key, cached_project)
        findings.extend(cached_project)

    if cache is not None:
        cache.save()

    findings = [
        item for item in findings
        if item.rule_id in _SYNTHETIC_IDS
        or _selected(item.rule_id, select, ignore)
    ]
    if changed:
        touched = _git_changed_rels()
        findings = [
            item for item in findings
            if item.path in touched or item.rule_id == "REP002"
        ]
    return sorted(findings, key=Finding.sort_key)


def exit_code(findings: Sequence[Finding]) -> int:
    """1 when any error-severity finding survives, else 0."""
    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0
