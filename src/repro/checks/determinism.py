"""Determinism rules (REP10x): seeded streams only, no wall clocks.

The reproduction's headline numbers (the Eq. 2 fit, the EP trend, the
batch-vs-event engine agreement) are only comparable across runs and
machines because every random draw flows through an explicitly seeded
``numpy.random.Generator`` and nothing reads the wall clock inside a
kernel.  These rules make that discipline mechanical:

* REP101 — ``np.random.seed`` / ``random.seed`` reseed process-global
  state and break substream isolation;
* REP102 — legacy ``np.random.<dist>`` module-level draws consume the
  hidden global stream;
* REP103 — stdlib ``random`` calls are unseeded (or globally seeded)
  and unreproducible across processes;
* REP104 — wall-clock reads inside kernels leak nondeterminism into
  results (timing belongs to the executor's metrics layer);
* REP105 — ``default_rng()`` with no/None seed pulls OS entropy;
* REP106 — an optional ``rng`` parameter silently falling back to a
  constant-seeded generator hides seed coupling from callers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.astutil import import_aliases, resolve_call
from repro.checks.model import Finding, Rule, Severity, SourceFile, finding

#: numpy.random attributes that are legitimate under the Generator API.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Wall-clock call paths forbidden outside the instrumentation layer.
_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Modules allowed to read clocks: build observability, not results.
_CLOCK_ALLOWLIST = {
    "repro.core.executor",
    "repro.core.cache",
    "repro.core.resilience",
    "repro.api.dispatch",
    "repro.serve.app",
    "repro.serve.daemon",
    "repro.serve.client",
    "repro.serve.resilience",
}


def _check_np_seed(ctx: SourceFile) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        path = resolve_call(node.func, aliases)
        if path in ("numpy.random.seed", "random.seed"):
            yield finding(
                RULES["REP101"],
                ctx.rel,
                node,
                f"call to {path}() reseeds process-global random state",
                hint="thread a seeded np.random.default_rng(seed) through "
                "the call chain instead",
            )


def _check_legacy_np_random(ctx: SourceFile) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        path = resolve_call(node.func, aliases)
        if path is None or not path.startswith("numpy.random."):
            continue
        leaf = path.rsplit(".", 1)[-1]
        if leaf == "seed" or leaf in _NP_RANDOM_ALLOWED:
            continue
        yield finding(
            RULES["REP102"],
            ctx.rel,
            node,
            f"legacy module-level draw {path}() uses the hidden global stream",
            hint=f"use rng.{leaf}(...) on an explicitly seeded "
            "np.random.Generator",
        )


def _check_stdlib_random(ctx: SourceFile) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        path = resolve_call(node.func, aliases)
        if path is None:
            continue
        if path == "random.seed":
            continue  # REP101's finding
        if path == "random" or path.startswith("random."):
            yield finding(
                RULES["REP103"],
                ctx.rel,
                node,
                f"stdlib {path}() draw is not seed-stable across processes",
                hint="all randomness must flow through numpy Generators "
                "seeded from explicit values",
            )


def _check_wall_clock(ctx: SourceFile) -> Iterator[Finding]:
    if ctx.module in _CLOCK_ALLOWLIST:
        return
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        path = resolve_call(node.func, aliases)
        if path in _WALL_CLOCKS:
            yield finding(
                RULES["REP104"],
                ctx.rel,
                node,
                f"wall-clock read {path}() makes results time-dependent",
                hint="pass timestamps in as parameters; timing belongs to "
                "the executor's metrics layer (repro.core.executor)",
            )


def _is_default_rng(node: ast.Call, aliases: dict) -> bool:
    path = resolve_call(node.func, aliases)
    return path == "numpy.random.default_rng"


def _check_unseeded_rng(ctx: SourceFile) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not _is_default_rng(node, aliases):
            continue
        unseeded = not node.args and not node.keywords
        if not unseeded and len(node.args) == 1 and not node.keywords:
            arg = node.args[0]
            unseeded = isinstance(arg, ast.Constant) and arg.value is None
        if unseeded:
            yield finding(
                RULES["REP105"],
                ctx.rel,
                node,
                "default_rng() without a seed draws OS entropy",
                hint="seed from an explicit value or a threaded seed tuple, "
                "e.g. default_rng((seed, stream_index))",
            )


def _optional_rng_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Functions with an ``rng=None``-style optional generator param."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        names = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        defaults = list(args.defaults) + list(args.kw_defaults)
        has_optional_rng = any(arg.arg == "rng" for arg in names) and any(
            isinstance(d, ast.Constant) and d.value is None
            for d in defaults
            if d is not None
        )
        if has_optional_rng:
            yield node


def _check_hidden_fallback(ctx: SourceFile) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    for func in _optional_rng_functions(ctx.tree):
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "rng" not in targets:
                continue
            value = node.value
            if not isinstance(value, ast.Call) or not _is_default_rng(value, aliases):
                continue
            if value.args and isinstance(value.args[0], ast.Constant):
                yield finding(
                    RULES["REP106"],
                    ctx.rel,
                    node,
                    "optional rng parameter silently falls back to "
                    f"default_rng({value.args[0].value!r})",
                    hint="require an explicit seed= or rng= from the caller "
                    "(raise ValueError when both are absent) so seed "
                    "coupling stays visible at call sites",
                )


RULES = {
    "REP101": Rule(
        "REP101", "global-reseed", Severity.ERROR,
        "np.random.seed / random.seed reseed process-global state",
        scope="file", file_checker=_check_np_seed,
    ),
    "REP102": Rule(
        "REP102", "legacy-np-random", Severity.ERROR,
        "legacy np.random.<dist> module-level draws",
        scope="file", file_checker=_check_legacy_np_random,
    ),
    "REP103": Rule(
        "REP103", "stdlib-random", Severity.ERROR,
        "stdlib random module calls",
        scope="file", file_checker=_check_stdlib_random,
    ),
    "REP104": Rule(
        "REP104", "wall-clock", Severity.ERROR,
        "wall-clock reads outside the instrumentation allowlist",
        scope="file", file_checker=_check_wall_clock,
    ),
    "REP105": Rule(
        "REP105", "unseeded-rng", Severity.ERROR,
        "default_rng() without an explicit seed",
        scope="file", file_checker=_check_unseeded_rng,
    ),
    "REP106": Rule(
        "REP106", "hidden-seed-fallback", Severity.ERROR,
        "optional rng params silently defaulting to a constant seed",
        scope="file", file_checker=_check_hidden_fallback,
    ),
}
