"""SARIF 2.1.0 rendering of checker findings (``--format sarif``).

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI systems ingest natively — GitHub code scanning, VS Code's
SARIF viewer, and artifact archival all speak it.  One run object,
one result per finding, the rule catalog embedded in the driver so a
viewer can show the rule description next to each result without the
repo checked out.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.checks.model import Finding, Rule, Severity

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Pseudo-rules the engine emits outside the catalog (parse/path).
_SYNTHETIC_RULES = {
    "REP001": "file could not be read or parsed",
    "REP002": "explicitly passed path was not scannable",
}


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _driver_rules(
    findings: Sequence[Finding], rules: Dict[str, Rule]
) -> List[Dict[str, object]]:
    used = sorted({item.rule_id for item in findings})
    catalog: List[Dict[str, object]] = []
    for rule_id in used:
        rule = rules.get(rule_id)
        if rule is not None:
            catalog.append(
                {
                    "id": rule_id,
                    "name": rule.name,
                    "shortDescription": {"text": rule.description},
                    "defaultConfiguration": {
                        "level": _level(rule.severity)
                    },
                }
            )
        elif rule_id in _SYNTHETIC_RULES:
            catalog.append(
                {
                    "id": rule_id,
                    "shortDescription": {"text": _SYNTHETIC_RULES[rule_id]},
                }
            )
    return catalog


def _result(item: Finding) -> Dict[str, object]:
    text = item.message
    if item.hint:
        text += f" (hint: {item.hint})"
    return {
        "ruleId": item.rule_id,
        "level": _level(item.severity),
        "message": {"text": text},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": item.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(item.line, 1),
                        "startColumn": max(item.col, 0) + 1,
                    },
                }
            }
        ],
    }


def to_sarif(
    findings: Sequence[Finding], rules: Dict[str, Rule]
) -> Dict[str, object]:
    """The findings as one SARIF 2.1.0 document (a JSON-able dict)."""
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-checks",
                        "informationUri": (
                            "https://example.invalid/repro-checks"
                        ),
                        "rules": _driver_rules(findings, rules),
                    }
                },
                "results": [_result(item) for item in findings],
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], rules: Dict[str, Rule]
) -> str:
    """The SARIF document serialized with stable formatting."""
    return json.dumps(to_sarif(findings, rules), indent=2, sort_keys=True)
