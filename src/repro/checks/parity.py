"""Reference-parity rules (REP40x): keep the bit-identity harness honest.

The vectorized corpus kernels are only trustworthy because
:mod:`repro.dataset.reference` preserves the original scalar kernels
and the test suite asserts bit-identical output.  The harness swaps
kernels **by name** through the module-level ``_SWAPS`` table — which
means a renamed kernel or a drifted signature silently degrades the
equality test into comparing a function with itself.  These rules make
the pairing structural:

* REP401 — every ``_SWAPS`` entry must resolve: the live module
  defines the kernel, the reference module defines the replacement;
* REP402 — a live kernel and its reference replacement must keep the
  same signature (argument names, order, literal defaults) — the swap
  reroutes call sites without adapting them;
* REP403 — a ``Batch<X>`` class must keep the same public-method
  signatures as its event-driven counterpart ``<X>`` unless the
  divergence carries a ``# parity:`` marker;
* REP404 — a seeded-stream kernel (any top-level function with an
  ``rng`` parameter) in a swap-target module must either have a
  reference replacement or carry a ``# parity:`` marker naming the
  test that pins its output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from repro.checks.astutil import (
    dotted_name,
    has_marker,
    import_aliases,
    signature_shape,
)
from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    finding,
)

__all__ = ["RULES", "PROJECT_RULES"]


@dataclass(frozen=True)
class SwapEntry:
    """One (module alias, kernel name, replacement) triple of ``_SWAPS``."""

    module_alias: str
    kernel: str
    replacement: str
    node: ast.AST


def _find_swaps(ctx: SourceFile) -> List[SwapEntry]:
    entries: List[SwapEntry] = []
    for node in ctx.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "_SWAPS" for t in node.targets
        ):
            continue
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            continue
        for element in node.value.elts:
            if not isinstance(element, (ast.Tuple, ast.List)):
                continue
            if len(element.elts) != 3:
                continue
            alias_node, name_node, replacement_node = element.elts
            alias = dotted_name(alias_node)
            replacement = dotted_name(replacement_node)
            if (
                alias is None
                or replacement is None
                or not isinstance(name_node, ast.Constant)
                or not isinstance(name_node.value, str)
            ):
                continue
            entries.append(
                SwapEntry(
                    module_alias=alias[0],
                    kernel=name_node.value,
                    replacement=replacement[-1],
                    node=element,
                )
            )
    return entries


def _top_level_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _swap_targets(
    project: Project, ctx: SourceFile, entries: List[SwapEntry]
) -> Dict[str, Optional[SourceFile]]:
    aliases = import_aliases(ctx.tree)
    targets: Dict[str, Optional[SourceFile]] = {}
    for entry in entries:
        if entry.module_alias in targets:
            continue
        qualified = aliases.get(entry.module_alias, entry.module_alias)
        targets[entry.module_alias] = project.resolve_module(qualified, ctx)
    return targets


def _check_reference_pairs(project: Project) -> Iterator[Finding]:
    for ctx in project.files:
        entries = _find_swaps(ctx)
        if not entries:
            continue
        reference_defs = _top_level_functions(ctx.tree)
        targets = _swap_targets(project, ctx, entries)
        swapped_by_module: Dict[str, Set[str]] = {}
        for entry in entries:
            target = targets[entry.module_alias]
            if target is None:
                yield finding(
                    RULES["REP401"], ctx.rel, entry.node,
                    f"_SWAPS names module alias {entry.module_alias!r} that "
                    "resolves to no scanned or sibling module",
                    hint="the swap harness patches kernels by module "
                    "attribute; a dangling module breaks the equality test",
                )
                continue
            swapped_by_module.setdefault(target.rel, set()).add(entry.kernel)
            live_defs = _top_level_functions(target.tree)
            live = live_defs.get(entry.kernel)
            replacement = reference_defs.get(entry.replacement)
            if live is None:
                yield finding(
                    RULES["REP401"], ctx.rel, entry.node,
                    f"_SWAPS kernel {entry.kernel!r} is not defined in "
                    f"{target.rel}",
                    hint="renaming a vectorized kernel without updating "
                    "_SWAPS leaves the reference harness patching a dead "
                    "name",
                )
            if replacement is None:
                yield finding(
                    RULES["REP401"], ctx.rel, entry.node,
                    f"_SWAPS replacement {entry.replacement!r} is not "
                    f"defined in {ctx.rel}",
                )
            if live is not None and replacement is not None:
                live_shape = signature_shape(live)
                ref_shape = signature_shape(replacement)
                if live_shape != ref_shape:
                    yield finding(
                        RULES["REP402"], ctx.rel, replacement,
                        f"signature drift between {entry.kernel!r} "
                        f"({', '.join(live_shape)}) and "
                        f"{entry.replacement!r} ({', '.join(ref_shape)})",
                        hint="the swap reroutes call sites by name without "
                        "adapting arguments; signatures must stay identical",
                    )
        yield from _check_unmirrored_kernels(ctx, targets, swapped_by_module)


def _check_unmirrored_kernels(
    reference_ctx: SourceFile,
    targets: Dict[str, Optional[SourceFile]],
    swapped_by_module: Dict[str, Set[str]],
) -> Iterator[Finding]:
    for target in targets.values():
        if target is None or target.rel == reference_ctx.rel:
            continue
        swapped = swapped_by_module.get(target.rel, set())
        for name, func in _top_level_functions(target.tree).items():
            if name in swapped:
                continue
            takes_rng = any(
                arg.arg == "rng"
                for arg in (
                    list(func.args.posonlyargs)
                    + list(func.args.args)
                    + list(func.args.kwonlyargs)
                )
            )
            if not takes_rng:
                continue
            if has_marker(target.lines, func.lineno):
                continue
            yield finding(
                RULES["REP404"], target.rel, func,
                f"seeded-stream kernel {name!r} has no reference "
                "replacement and no parity marker",
                hint="add it to _SWAPS with a scalar reference, or mark it "
                "'# parity: <how its output is pinned>' above the def",
            )


def _check_batch_pairs(ctx: SourceFile) -> Iterator[Finding]:
    classes = {
        node.name: node
        for node in ctx.tree.body
        if isinstance(node, ast.ClassDef)
    }
    for name, batch_cls in classes.items():
        if not name.startswith("Batch"):
            continue
        event_cls = classes.get(name[len("Batch"):])
        if event_cls is None:
            continue
        yield from _compare_class_pair(ctx, event_cls, batch_cls)


def _methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, ast.FunctionDef)
    }


def _compare_class_pair(
    ctx: SourceFile, event_cls: ast.ClassDef, batch_cls: ast.ClassDef
) -> Iterator[Finding]:
    event_methods = _methods(event_cls)
    for name, batch_method in _methods(batch_cls).items():
        if name.startswith("_"):
            continue
        event_method = event_methods.get(name)
        if event_method is None:
            continue
        if signature_shape(event_method) == signature_shape(batch_method):
            continue
        if has_marker(ctx.lines, batch_method.lineno):
            continue
        yield finding(
            RULES["REP403"], ctx.rel, batch_method,
            f"{batch_cls.name}.{name} diverges from {event_cls.name}.{name} "
            "without a parity marker",
            hint="the batch engine is the event engine's drop-in "
            "replacement; mark intentional divergence with '# parity: ...' "
            "above the def",
        )


RULES = {
    "REP401": Rule(
        "REP401", "dangling-swap", Severity.ERROR,
        "_SWAPS entries must resolve to live and reference kernels",
        scope="project", project_checker=_check_reference_pairs,
    ),
    "REP402": Rule(
        "REP402", "kernel-signature-drift", Severity.ERROR,
        "vectorized and reference kernel signatures must match",
        scope="project", project_checker=None,
    ),
    "REP403": Rule(
        "REP403", "batch-engine-drift", Severity.ERROR,
        "Batch<X> public methods must match <X> or carry a parity marker",
        scope="file", file_checker=_check_batch_pairs,
    ),
    "REP404": Rule(
        "REP404", "unmirrored-kernel", Severity.ERROR,
        "rng kernels in swap-target modules need a reference or marker",
        scope="project", project_checker=None,
    ),
}

#: The single project checker that emits REP401/REP402/REP404.
PROJECT_RULES = ("REP401",)
