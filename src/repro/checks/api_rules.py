"""Query-dispatch rules (REP21x): one API surface, fully wired.

PR 6 routed every public query path -- CLI subcommands, ``Study``
methods, the serve daemon -- through the single
:mod:`repro.api.dispatch` table.  These rules keep that invariant
from eroding:

* REP211 -- every request family declared in ``repro.api.requests``
  must be registered in the dispatch table, carry a unique non-empty
  ``family`` tag, be a frozen dataclass, and appear in the
  ``REQUEST_TYPES`` catalog;
* REP212 -- a CLI command implementation (any ``_cmd_*`` function)
  must route through ``repro.api`` / ``repro.serve`` rather than
  calling engine internals directly.

REP211 runs only when the scanned set contains both halves of the API
package (so fixture trees and partial scans stay quiet); REP212 is a
plain per-file pass.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.checks.astutil import dotted_name, import_aliases, resolve_call
from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    finding,
)

_REQUESTS_MODULE = "repro.api.requests"
_DISPATCH_MODULE = "repro.api.dispatch"

#: Call targets that satisfy REP212 (prefix match on the resolved path).
_DISPATCH_PREFIXES = ("repro.api.", "repro.serve.")


def _class_defs(tree: ast.Module) -> List[ast.ClassDef]:
    return [node for node in tree.body if isinstance(node, ast.ClassDef)]


def _request_classes(tree: ast.Module) -> Dict[str, ast.ClassDef]:
    """Concrete ``QueryRequest`` subclasses, by class name (transitive)."""
    classes = {node.name: node for node in _class_defs(tree)}
    request_like: Set[str] = {"QueryRequest"}
    grew = True
    while grew:
        grew = False
        for name, node in classes.items():
            if name in request_like:
                continue
            bases = {
                base.id for base in node.bases if isinstance(base, ast.Name)
            }
            if bases & request_like:
                request_like.add(name)
                grew = True
    request_like.discard("QueryRequest")
    return {name: classes[name] for name in sorted(request_like)}


def _family_tag(node: ast.ClassDef) -> Optional[str]:
    """The literal ``family`` ClassVar value, if assigned."""
    for item in node.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and item.target.id == "family"
            and isinstance(item.value, ast.Constant)
            and isinstance(item.value.value, str)
        ):
            return item.value.value
    return None


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name is None or name[-1] != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _catalog_names(tree: ast.Module) -> Set[str]:
    """Class names listed in the ``REQUEST_TYPES`` tuple literal."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "REQUEST_TYPES":
                if isinstance(value, (ast.Tuple, ast.List)):
                    return {
                        element.id
                        for element in value.elts
                        if isinstance(element, ast.Name)
                    }
    return set()


def _registered_handlers(tree: ast.Module) -> Set[str]:
    """Request class names wired via ``@handler(X)`` in the dispatch."""
    registered: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            name = dotted_name(decorator.func)
            if name is None or name[-1] != "handler":
                continue
            for argument in decorator.args:
                if isinstance(argument, ast.Name):
                    registered.add(argument.id)
    return registered


def _api_registration_check(project: Project) -> Iterator[Finding]:
    """REP211: the request catalog and the dispatch table must agree."""
    requests_ctx = project.module(_REQUESTS_MODULE)
    dispatch_ctx = project.module(_DISPATCH_MODULE)
    if requests_ctx is None or dispatch_ctx is None:
        return
    classes = _request_classes(requests_ctx.tree)
    registered = _registered_handlers(dispatch_ctx.tree)
    catalog = _catalog_names(requests_ctx.tree)
    seen_families: Dict[str, str] = {}
    for name, node in classes.items():
        tag = _family_tag(node)
        if not tag:
            yield finding(
                RULES["REP211"], requests_ctx.rel, node,
                f"request class {name} declares no literal 'family' tag",
                hint="add `family: ClassVar[str] = \"...\"` to the class body",
            )
        elif tag in seen_families:
            yield finding(
                RULES["REP211"], requests_ctx.rel, node,
                f"request class {name} reuses family tag {tag!r} "
                f"(already taken by {seen_families[tag]})",
                hint="family tags key the wire protocol; keep them unique",
            )
        else:
            seen_families[tag] = name
        if not _is_frozen_dataclass(node):
            yield finding(
                RULES["REP211"], requests_ctx.rel, node,
                f"request class {name} is not a frozen dataclass",
                hint="decorate with @dataclass(frozen=True); requests are "
                "hashed and shared across threads",
            )
        if name not in registered:
            yield finding(
                RULES["REP211"], requests_ctx.rel, node,
                f"request class {name} has no @handler registration in "
                f"{_DISPATCH_MODULE}",
                hint="every family must be executable through the one "
                "dispatch table",
            )
        if catalog and name not in catalog:
            yield finding(
                RULES["REP211"], requests_ctx.rel, node,
                f"request class {name} is missing from REQUEST_TYPES",
                hint="append it to the catalog tuple so request_from_dict "
                "and the serve daemon can see it",
            )


def _dispatches_through_api(node: ast.AST, aliases: Dict[str, str]) -> bool:
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        path = resolve_call(child.func, aliases)
        if path is not None and path.startswith(_DISPATCH_PREFIXES):
            return True
    return False


def _cli_dispatch_check(ctx: SourceFile) -> Iterator[Finding]:
    """REP212: ``_cmd_*`` functions must call into repro.api/repro.serve."""
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not node.name.startswith("_cmd_"):
            continue
        if not _dispatches_through_api(node, aliases):
            yield finding(
                RULES["REP212"], ctx.rel, node,
                f"CLI command {node.name} does not route through the "
                "repro.api dispatch table",
                hint="build a QueryRequest and call repro.api.execute "
                "(or repro.serve) instead of engine internals",
            )


#: The REP21x catalog.
RULES: Dict[str, Rule] = {
    "REP211": Rule(
        "REP211", "unregistered-query-family", Severity.ERROR,
        "request families missing dispatch registration, frozen "
        "dataclass form, unique family tags, or catalog membership",
        scope="project", project_checker=_api_registration_check,
    ),
    "REP212": Rule(
        "REP212", "cli-bypasses-dispatch", Severity.ERROR,
        "CLI command implementations that bypass the repro.api dispatch "
        "table",
        scope="file", file_checker=_cli_dispatch_check,
    ),
}
