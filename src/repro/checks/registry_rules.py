"""Registry-consistency rules (REP20x).

The declarative registry (:mod:`repro.core.registry`) is the spine of
the artifact engine: the executor trusts that every
``ArtifactSpec.depends`` id resolves, that the dependency graph is
acyclic, and that every builder matches the engine's calling
convention (a zero-argument bound method after ``spec.bind(study)``).
A typo there fails at run time, deep inside a thread pool — these
rules fail it at lint time instead.

Two complementary passes share the rule ids:

* the **AST pass** runs on any scanned file that constructs specs
  (``_spec(...)`` / ``ArtifactSpec(...)`` calls with literal ids), so
  fixtures and future registries are checked without importing them;
* the **import pass** runs only when ``repro.core.registry`` itself is
  in the scanned set, and cross-checks what the AST cannot see: that
  builder strings resolve to real ``Study`` methods, that ``sweep:N``
  resources name real Table II servers, and that the exported
  ``FIGURE_IDS`` tuple is in sync.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    finding,
)

#: The tag vocabulary of the registry; anything else is a typo.
ALLOWED_TAGS = {"figure", "table", "scalar", "extension", "cluster", "testbed"}

#: Names that construct an ArtifactSpec with literal arguments.
_SPEC_CALLEES = {"ArtifactSpec", "_spec"}


@dataclass
class SpecLiteral:
    """One ``ArtifactSpec``/``_spec`` call recovered from the AST."""

    artifact_id: str
    node: ast.Call
    builder: Optional[ast.AST] = None
    depends: List[ast.AST] = field(default_factory=list)
    depends_literal: bool = False
    tags: List[ast.AST] = field(default_factory=list)
    tags_literal: bool = False


def _callee_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def extract_spec_literals(tree: ast.Module) -> List[SpecLiteral]:
    """Every spec-constructing call with a literal artifact id."""
    specs: List[SpecLiteral] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _callee_name(node.func) not in _SPEC_CALLEES:
            continue
        positional = list(node.args)
        if not positional or not isinstance(positional[0], ast.Constant):
            continue
        artifact_id = positional[0].value
        if not isinstance(artifact_id, str):
            continue
        spec = SpecLiteral(artifact_id=artifact_id, node=node)
        if len(positional) > 1:
            spec.builder = positional[1]
        sequenced = {3: "depends", 4: "tags"}
        for index, name in sequenced.items():
            if len(positional) > index:
                _fill_sequence(spec, name, positional[index])
        for keyword in node.keywords:
            if keyword.arg in ("depends", "tags"):
                _fill_sequence(spec, keyword.arg, keyword.value)
            elif keyword.arg == "builder":
                spec.builder = keyword.value
        specs.append(spec)
    return specs


def _fill_sequence(spec: SpecLiteral, name: str, node: ast.AST) -> None:
    literal = isinstance(node, (ast.Tuple, ast.List))
    elements = list(node.elts) if isinstance(node, (ast.Tuple, ast.List)) else []
    if name == "depends":
        spec.depends, spec.depends_literal = elements, literal
    else:
        spec.tags, spec.tags_literal = elements, literal


def _depend_key(element: ast.AST) -> Optional[str]:
    """The resolvable string form of one depends entry, if static."""
    if isinstance(element, ast.Constant) and isinstance(element.value, str):
        return element.value
    if isinstance(element, ast.Name) and element.id == "CORPUS":
        return "corpus"
    if isinstance(element, ast.Call):
        callee = _callee_name(element.func)
        if callee == "sweep_resource" and element.args:
            arg = element.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                return f"sweep:{arg.value}"
    return None


def _resolvable(key: str, artifact_ids: Set[str]) -> bool:
    if key == "corpus":
        return True
    if key.startswith("sweep:"):
        suffix = key.split(":", 1)[1]
        return suffix.isdigit()
    return key in artifact_ids


def _check_depends_ast(ctx: SourceFile) -> Iterator[Finding]:
    specs = extract_spec_literals(ctx.tree)
    ids = {spec.artifact_id for spec in specs}
    for spec in specs:
        for element in spec.depends:
            key = _depend_key(element)
            if key is None:
                yield finding(
                    RULES["REP201"], ctx.rel, element,
                    f"artifact {spec.artifact_id!r}: dependency is not a "
                    "resolvable resource literal",
                    hint="use CORPUS, sweep_resource(N), or another "
                    "artifact id string",
                )
            elif not _resolvable(key, ids):
                yield finding(
                    RULES["REP201"], ctx.rel, element,
                    f"artifact {spec.artifact_id!r}: dependency {key!r} "
                    "resolves to no known resource or artifact",
                    hint="known resources are 'corpus' and 'sweep:<N>'; "
                    "anything else must be a registered artifact id",
                )


def _check_cycles_ast(ctx: SourceFile) -> Iterator[Finding]:
    specs = extract_spec_literals(ctx.tree)
    ids = {spec.artifact_id for spec in specs}
    edges: Dict[str, List[str]] = {}
    for spec in specs:
        edges[spec.artifact_id] = [
            key
            for key in (_depend_key(e) for e in spec.depends)
            if key in ids
        ]
    state: Dict[str, int] = {}
    stack: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        state[node] = 1
        stack.append(node)
        for successor in edges.get(node, ()):
            if state.get(successor) == 1:
                return stack[stack.index(successor):] + [successor]
            if state.get(successor, 0) == 0:
                cycle = visit(successor)
                if cycle is not None:
                    return cycle
        stack.pop()
        state[node] = 2
        return None

    for spec in specs:
        if state.get(spec.artifact_id, 0) == 0:
            cycle = visit(spec.artifact_id)
            if cycle is not None:
                yield finding(
                    RULES["REP202"], ctx.rel, spec.node,
                    "artifact dependency cycle: " + " -> ".join(cycle),
                    hint="the executor topologically sorts builds; a cycle "
                    "deadlocks the schedule",
                )
                return  # one cycle report per file is enough


def _check_builders_ast(ctx: SourceFile) -> Iterator[Finding]:
    study_methods = _study_methods(ctx.tree)
    if study_methods is None:
        return  # cross-file resolution is the import pass's job
    for spec in extract_spec_literals(ctx.tree):
        builder = spec.builder
        if isinstance(builder, ast.Constant) and isinstance(builder.value, str):
            if builder.value not in study_methods:
                yield finding(
                    RULES["REP203"], ctx.rel, builder,
                    f"artifact {spec.artifact_id!r}: builder "
                    f"{builder.value!r} is not a Study method",
                    hint="the executor calls REGISTRY[id].bind(study)(); a "
                    "missing method fails mid-run inside the pool",
                )


def _study_methods(tree: ast.Module) -> Optional[Set[str]]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "Study":
            return {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    return None


def _check_tags_ast(ctx: SourceFile) -> Iterator[Finding]:
    for spec in extract_spec_literals(ctx.tree):
        if spec.tags_literal and not spec.tags:
            yield finding(
                RULES["REP204"], ctx.rel, spec.node,
                f"artifact {spec.artifact_id!r}: empty tags tuple",
                hint=f"classify with at least one of {sorted(ALLOWED_TAGS)}",
            )
        for element in spec.tags:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                if element.value not in ALLOWED_TAGS:
                    yield finding(
                        RULES["REP204"], ctx.rel, element,
                        f"artifact {spec.artifact_id!r}: unknown tag "
                        f"{element.value!r}",
                        hint=f"allowed tags: {sorted(ALLOWED_TAGS)}",
                    )


def _check_duplicates_ast(ctx: SourceFile) -> Iterator[Finding]:
    seen: Dict[str, ast.Call] = {}
    for spec in extract_spec_literals(ctx.tree):
        if spec.artifact_id in seen:
            yield finding(
                RULES["REP205"], ctx.rel, spec.node,
                f"duplicate artifact id {spec.artifact_id!r}",
                hint="a dict-comprehension registry silently keeps only the "
                "last spec; the earlier one becomes dead code",
            )
        else:
            seen[spec.artifact_id] = spec.node


# -- import pass ---------------------------------------------------------------


def _registry_import_check(project: Project) -> Iterator[Finding]:
    ctx = project.module("repro.core.registry")
    if ctx is None:
        return
    from repro.core.registry import FIGURE_IDS, REGISTRY
    from repro.core.study import Study
    from repro.hwexp.testbed import TESTBED

    for artifact_id, spec in REGISTRY.items():
        where = ctx.line_of(f'"{artifact_id}"')
        if spec.artifact_id != artifact_id:
            yield Finding(
                "REP206", RULES["REP206"].severity, ctx.rel, where, 0,
                f"registry key {artifact_id!r} disagrees with "
                f"spec.artifact_id {spec.artifact_id!r}",
            )
        for dependency in spec.depends:
            if dependency == "corpus" or dependency in REGISTRY:
                continue
            if dependency.startswith("sweep:"):
                suffix = dependency.split(":", 1)[1]
                if suffix.isdigit() and int(suffix) in TESTBED:
                    continue
                yield Finding(
                    "REP201", RULES["REP201"].severity, ctx.rel, where, 0,
                    f"artifact {artifact_id!r}: {dependency!r} names no "
                    f"Table II server (have {sorted(TESTBED)})",
                )
                continue
            yield Finding(
                "REP201", RULES["REP201"].severity, ctx.rel, where, 0,
                f"artifact {artifact_id!r}: dependency {dependency!r} "
                "resolves to no resource or registered artifact",
            )
        yield from _check_builder_runtime(ctx, artifact_id, spec, Study, where)
        if not spec.description:
            yield Finding(
                "REP206", RULES["REP206"].severity, ctx.rel, where, 0,
                f"artifact {artifact_id!r} has an empty description",
            )
    if tuple(REGISTRY) != FIGURE_IDS:
        yield Finding(
            "REP206", RULES["REP206"].severity, ctx.rel,
            ctx.line_of("FIGURE_IDS"), 0,
            "FIGURE_IDS is out of sync with the REGISTRY keys",
        )


def _check_builder_runtime(
    ctx: SourceFile,
    artifact_id: str,
    spec: object,
    study_cls: type,
    where: int,
) -> Iterator[Finding]:
    import inspect

    builder = getattr(spec, "builder", None)
    if isinstance(builder, str):
        method = getattr(study_cls, builder, None)
        if method is None or not callable(method):
            yield Finding(
                "REP203", RULES["REP203"].severity, ctx.rel, where, 0,
                f"artifact {artifact_id!r}: builder {builder!r} is not a "
                "Study method",
            )
            return
        parameters = list(inspect.signature(method).parameters.values())
        extra = [
            p for p in parameters[1:]
            if p.default is inspect.Parameter.empty
            and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]
        if extra:
            yield Finding(
                "REP203", RULES["REP203"].severity, ctx.rel, where, 0,
                f"artifact {artifact_id!r}: builder {builder!r} requires "
                f"arguments {[p.name for p in extra]} the executor never "
                "passes",
            )
    elif callable(builder):
        parameters = [
            p for p in inspect.signature(builder).parameters.values()
            if p.default is inspect.Parameter.empty
            and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]
        if len(parameters) != 1:
            yield Finding(
                "REP203", RULES["REP203"].severity, ctx.rel, where, 0,
                f"artifact {artifact_id!r}: callable builder must take "
                "exactly one required argument (the Study)",
            )


RULES = {
    "REP201": Rule(
        "REP201", "dangling-dependency", Severity.ERROR,
        "ArtifactSpec.depends ids must resolve to known resources",
        scope="file", file_checker=_check_depends_ast,
    ),
    "REP202": Rule(
        "REP202", "dependency-cycle", Severity.ERROR,
        "the artifact dependency graph must stay acyclic",
        scope="file", file_checker=_check_cycles_ast,
    ),
    "REP203": Rule(
        "REP203", "unresolved-builder", Severity.ERROR,
        "builders must match the executor's calling convention",
        scope="file", file_checker=_check_builders_ast,
    ),
    "REP204": Rule(
        "REP204", "unknown-tag", Severity.ERROR,
        "artifact tags must come from the known vocabulary",
        scope="file", file_checker=_check_tags_ast,
    ),
    "REP205": Rule(
        "REP205", "duplicate-artifact-id", Severity.ERROR,
        "artifact ids must be unique",
        scope="file", file_checker=_check_duplicates_ast,
    ),
    "REP206": Rule(
        "REP206", "registry-drift", Severity.ERROR,
        "the imported REGISTRY must agree with its exported views",
        scope="project", project_checker=_registry_import_check,
    ),
}

#: Import-pass checks piggyback on REP201/REP203 ids; register the one
#: project checker once under REP206.
PROJECT_RULES = ("REP206",)
