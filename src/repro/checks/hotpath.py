"""Hot-path performance lints (REP6xx): keep batch kernels batch.

The columnar and sharded tiers earn their 39x/out-of-core headlines by
never dropping to Python-level per-element work.  A single accidental
``for row in arr:`` or ``float(arr[i])`` inside one of those kernels
is bit-identical and test-invisible — it only shows up as a 100x wall
slowdown at fleet scale.  This family makes the discipline mechanical,
scoped so the rest of the tree keeps its freedom:

* a function is **hot** when its module is one of the batch/sharded
  kernels (``batch_placement``, ``batch_trace``, ``fleet_arrays``,
  ``sharded``) or when it carries a ``# hot`` marker on or just above
  its ``def`` line;
* array-ness comes from the dataflow lattice, including cross-module
  "returns an ndarray" summaries through the call graph, so a loop
  over ``helper()`` in another file is still caught.

Rules (deliberate scalar fallbacks — the bit-identity take-loops —
stay, excused by an inline ``# repro-checks: ignore[REP60x]`` or a
def-line suppression that documents why):

* REP601 — ``for``/``while`` iterating an ndarray (including
  ``range(len(arr))`` counting loops) runs the interpreter per
  element;
* REP602 — ``.item()``/``.tolist()``/``float()``/``int()`` applied
  per element inside a loop boxes every scalar;
* REP603 — a Python scalar accumulator folded over array elements
  upcasts through Python floats and serializes the reduction
  (warning: the parity folds do this on purpose);
* REP604 — ``np.append`` anywhere, or concatenation inside a loop,
  reallocates the array per iteration;
* REP605 — ``.copy()`` on a freshly materialized temporary copies
  memory nobody else references (warning).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.checks.astutil import has_marker, import_aliases, resolve_call
from repro.checks.dataflow import (
    ArrayEvaluator,
    array_summaries,
    iter_scoped_functions,
    loops_in,
    name_roots,
    nodes_under,
)
from repro.checks.model import (
    Finding,
    Project,
    Rule,
    Severity,
    SourceFile,
    finding,
)

#: Module leaves whose every function is hot (the batch/sharded tiers).
HOT_MODULE_LEAVES = {
    "batch_placement", "batch_trace", "fleet_arrays", "sharded",
}

#: ``# hot`` (optionally ``# hot: why``) on/above a def marks it hot.
HOT_MARKER_RE = re.compile(r"#\s*hot\b")

#: numpy growth calls: append is quadratic anywhere, the rest in loops.
_GROWTH_ANYWHERE = {"numpy.append"}
_GROWTH_IN_LOOP = {
    "numpy.concatenate", "numpy.vstack", "numpy.hstack",
    "numpy.column_stack", "numpy.stack", "numpy.row_stack",
}


def hot_functions(
    project: Project,
) -> Iterator[Tuple[SourceFile, ast.AST]]:
    """Every function in hot scope: hot modules plus ``# hot`` marks."""
    for ctx in project.files:
        module_hot = ctx.module.rsplit(".", 1)[-1] in HOT_MODULE_LEAVES
        for func, _inherited in iter_scoped_functions(ctx.tree):
            if module_hot or has_marker(
                ctx.lines, func.lineno, HOT_MARKER_RE
            ):
                yield ctx, func


def _evaluator(
    func: ast.AST, ctx: SourceFile, project: Project
) -> ArrayEvaluator:
    summaries, local_calls = array_summaries(project)
    return ArrayEvaluator(func, ctx, summaries, local_calls)


def _loop_iterates_array(
    loop: ast.AST, arrays: ArrayEvaluator
) -> Optional[str]:
    """A description of the array iteration, or None when clean."""
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        iterator = loop.iter
        if arrays.is_array(iterator):
            return "iterates an ndarray element by element"
        if (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Name)
            and iterator.func.id == "range"
            and len(iterator.args) == 1
        ):
            inner = iterator.args[0]
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "len"
                and len(inner.args) == 1
                and arrays.is_array(inner.args[0])
            ):
                return "counts over range(len(<ndarray>))"
        return None
    test = getattr(loop, "test", None)
    if test is not None and arrays.is_array(test):
        return "spins on an ndarray condition"
    return None


def _check_loops(
    ctx: SourceFile, func: ast.AST, arrays: ArrayEvaluator
) -> Iterator[Finding]:
    for loop in loops_in(func):
        reason = _loop_iterates_array(loop, arrays)
        if reason is not None:
            yield finding(
                RULES["REP601"], ctx.rel, loop,
                f"hot function {func.name!r}: Python-level loop {reason}",
                hint="vectorize with ufuncs/fancy indexing, or document "
                "the deliberate scalar fallback with "
                "'# repro-checks: ignore[REP601]'",
            )


def _loop_bodies(func: ast.AST) -> Iterator[ast.AST]:
    for loop in loops_in(func):
        yield from nodes_under(loop)


def _check_per_element(
    ctx: SourceFile, func: ast.AST, arrays: ArrayEvaluator
) -> Iterator[Finding]:
    seen: Set[int] = set()
    for loop in loops_in(func):
        targets: Set[str] = set()
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            targets = {
                n.id
                for n in ast.walk(loop.target)
                if isinstance(n, ast.Name)
            }
        for node in nodes_under(loop):
            if not isinstance(node, ast.Call) or id(node) in seen:
                continue
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in ("item", "tolist") and arrays.is_array(
                    node.func.value
                ):
                    seen.add(id(node))
                    yield finding(
                        RULES["REP602"], ctx.rel, node,
                        f"hot function {func.name!r}: per-element "
                        f".{node.func.attr}() inside a loop boxes every "
                        "scalar",
                        hint="convert once outside the loop (.tolist() the "
                        "whole column) or stay in array land",
                    )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in ("float", "int")
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Subscript)
                and arrays.is_array(node.args[0])
                # Per element means indexed by the loop variable; a
                # once-per-chunk boxing (index constant or derived
                # inside the body) is the out-of-core idiom, not a
                # lint.
                and bool(name_roots(node.args[0].slice) & targets)
            ):
                seen.add(id(node))
                yield finding(
                    RULES["REP602"], ctx.rel, node,
                    f"hot function {func.name!r}: {node.func.id}(arr[i]) "
                    "inside a loop converts one element per iteration",
                    hint="use arr.astype(...) / .tolist() once outside the "
                    "loop",
                )


def _scalar_locals(func: ast.AST) -> Set[str]:
    """Names assigned a numeric literal somewhere in the function."""
    scalars: Set[str] = set()
    for node in nodes_under(func):
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Constant
        ):
            if isinstance(node.value.value, (int, float)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        scalars.add(target.id)
    return scalars


def _reads_array_element(expr: ast.AST, arrays: ArrayEvaluator) -> bool:
    return any(
        isinstance(node, ast.Subscript) and arrays.is_array(node.value)
        for node in ast.walk(expr)
    )


def _check_scalar_reduction(
    ctx: SourceFile, func: ast.AST, arrays: ArrayEvaluator
) -> Iterator[Finding]:
    scalars = _scalar_locals(func)
    for node in _loop_bodies(func):
        target: Optional[ast.AST] = None
        value: Optional[ast.AST] = None
        if isinstance(node, ast.AugAssign):
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(node.value, ast.BinOp)
                and any(
                    isinstance(n, ast.Name) and n.id == target.id
                    for n in ast.walk(node.value)
                )
            ):
                value = node.value
        if (
            target is not None
            and value is not None
            and isinstance(target, ast.Name)
            and target.id in scalars
            and _reads_array_element(value, arrays)
        ):
            yield finding(
                RULES["REP603"], ctx.rel, node,
                f"hot function {func.name!r}: Python scalar "
                f"{target.id!r} accumulates ndarray elements one at a "
                "time (upcasts through Python floats, serializes the "
                "reduction)",
                hint="use np.sum/np.add.reduce, or mark the deliberate "
                "bit-identity fold with '# repro-checks: ignore[REP603]'",
            )


def _check_growth(
    ctx: SourceFile, func: ast.AST
) -> Iterator[Finding]:
    aliases = import_aliases(ctx.tree)
    in_loop = {id(node) for node in _loop_bodies(func)}
    for node in nodes_under(func):
        if not isinstance(node, ast.Call):
            continue
        path = resolve_call(node.func, aliases)
        if path in _GROWTH_ANYWHERE:
            yield finding(
                RULES["REP604"], ctx.rel, node,
                f"hot function {func.name!r}: np.append reallocates the "
                "whole array per call",
                hint="collect into a list and concatenate once, or "
                "preallocate with np.empty",
            )
        elif path in _GROWTH_IN_LOOP and id(node) in in_loop:
            leaf = path.rsplit(".", 1)[-1]
            yield finding(
                RULES["REP604"], ctx.rel, node,
                f"hot function {func.name!r}: np.{leaf} inside a loop "
                "grows the array quadratically",
                hint="append parts to a list in the loop and "
                f"np.{leaf} once after it",
            )


def _check_redundant_copy(
    ctx: SourceFile, func: ast.AST, arrays: ArrayEvaluator
) -> Iterator[Finding]:
    for node in nodes_under(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "copy"
            and not node.args
            and not node.keywords
        ):
            continue
        receiver = node.func.value
        fresh = isinstance(receiver, (ast.BinOp, ast.UnaryOp)) or (
            isinstance(receiver, ast.Call)
        )
        if fresh and arrays.is_array(receiver):
            yield finding(
                RULES["REP605"], ctx.rel, node,
                f"hot function {func.name!r}: .copy() of a freshly "
                "materialized temporary duplicates memory nobody else "
                "references",
                hint="drop the .copy(); the expression already owns its "
                "buffer",
            )


def _hotpath_project_check(project: Project) -> Iterator[Finding]:
    for ctx, func in hot_functions(project):
        arrays = _evaluator(func, ctx, project)
        yield from _check_loops(ctx, func, arrays)
        yield from _check_per_element(ctx, func, arrays)
        yield from _check_scalar_reduction(ctx, func, arrays)
        yield from _check_growth(ctx, func)
        yield from _check_redundant_copy(ctx, func, arrays)


RULES = {
    "REP601": Rule(
        "REP601", "ndarray-python-loop", Severity.ERROR,
        "Python for/while loops iterating ndarrays in hot functions",
        scope="project", project_checker=_hotpath_project_check,
    ),
    "REP602": Rule(
        "REP602", "per-element-conversion", Severity.ERROR,
        "per-element item()/tolist()/float() conversions in hot loops",
        scope="project", project_checker=None,
    ),
    "REP603": Rule(
        "REP603", "python-scalar-reduction", Severity.WARNING,
        "Python scalar accumulators folding ndarray elements in hot "
        "loops",
        scope="project", project_checker=None,
    ),
    "REP604": Rule(
        "REP604", "array-growth-in-loop", Severity.ERROR,
        "np.append / concatenate-in-loop array growth in hot functions",
        scope="project", project_checker=None,
    ),
    "REP605": Rule(
        "REP605", "redundant-temporary-copy", Severity.WARNING,
        ".copy() on freshly materialized array temporaries in hot "
        "functions",
        scope="project", project_checker=None,
    ),
}
