"""Declarative registry of the paper's reproducible artifacts.

Every artifact is described by an :class:`ArtifactSpec`: the
:class:`~repro.core.study.Study` builder that regenerates it, a
one-line description of what the paper shows there, the shared
resources it depends on (for example the Table II hardware sweeps,
which several figures reuse), and classification tags.  The execution
engine in :mod:`repro.core.executor` consumes these specs to schedule
builds topologically and share dependency work.

Compatibility: ``REGISTRY[fid]`` used to be a plain
``(method-name, description)`` tuple.  :class:`ArtifactSpec` still
unpacks and indexes like that 2-tuple (with a ``DeprecationWarning``),
so pre-existing callers keep working; new code should read the named
attributes instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.study import FigureResult, Study

#: Resource key for the shared corpus (every corpus-derived artifact).
CORPUS = "corpus"


def sweep_resource(number: int) -> str:
    """The resource key for the Table II server ``number`` sweep."""
    return f"sweep:{number}"


@dataclass(frozen=True)
class ArtifactSpec:
    """One reproducible artifact: builder, description, dependencies.

    ``builder`` is either the name of a :class:`Study` method or a
    callable taking a :class:`Study` and returning a
    :class:`FigureResult`.  ``depends`` lists the shared resources the
    build consumes (``"corpus"``, ``"sweep:N"``); the executor resolves
    each resource exactly once and orders builds after their
    dependencies.  ``tags`` classify the artifact (``"figure"``,
    ``"table"``, ``"scalar"``, ``"extension"``, ...).
    """

    artifact_id: str
    builder: Union[str, Callable[["Study"], "FigureResult"]]
    description: str
    depends: Tuple[str, ...] = (CORPUS,)
    tags: Tuple[str, ...] = field(default=("figure",))

    def bind(self, study: "Study") -> Callable[[], "FigureResult"]:
        """The zero-argument build callable for ``study``."""
        if callable(self.builder):
            return lambda: self.builder(study)
        method = getattr(study, self.builder)
        return method

    @property
    def builder_name(self) -> str:
        """A printable name for the builder (method name or callable)."""
        if callable(self.builder):
            return getattr(self.builder, "__name__", repr(self.builder))
        return self.builder

    # -- legacy (method-name, description) tuple shim -------------------------

    def _as_tuple(self) -> Tuple[str, str]:
        return (self.builder_name, self.description)

    def _warn_tuple_access(self) -> None:
        warnings.warn(
            "REGISTRY entries are ArtifactSpec dataclasses now; use "
            ".builder/.description instead of tuple indexing/unpacking",
            DeprecationWarning,
            stacklevel=3,
        )

    def __iter__(self) -> Iterator[str]:
        """Unpack like the legacy ``(method, description)`` tuple."""
        self._warn_tuple_access()
        return iter(self._as_tuple())

    def __getitem__(self, index: int) -> str:
        """Index like the legacy ``(method, description)`` tuple."""
        self._warn_tuple_access()
        return self._as_tuple()[index]

    def __len__(self) -> int:
        """Length of the legacy tuple form (always 2)."""
        return 2


def _spec(
    artifact_id: str,
    builder: str,
    description: str,
    depends: Tuple[str, ...] = (CORPUS,),
    tags: Tuple[str, ...] = ("figure",),
) -> ArtifactSpec:
    return ArtifactSpec(artifact_id, builder, description, depends, tags)


#: artifact id -> ArtifactSpec, in paper order.
REGISTRY: Dict[str, ArtifactSpec] = {
    spec.artifact_id: spec
    for spec in (
        _spec("fig1", "_fig01", "Energy proportionality curve of the 2016 exemplar (score 12212, EP~1.02)"),
        _spec("fig2", "_fig02", "EP and EE evolution by hardware availability year (scatter)"),
        _spec("fig3", "_fig03", "EP statistics trend: min/avg/median/max per year"),
        _spec("fig4", "_fig04", "EE and peak-EE statistics trend per year"),
        _spec("fig5", "_fig05", "CDF of energy proportionality"),
        _spec("fig6", "_fig06", "Server counts by CPU microarchitecture family"),
        _spec("fig7", "_fig07", "Average EP by microarchitecture codename"),
        _spec("fig8", "_fig08", "Microarchitecture mix of 2012-2016"),
        _spec("fig9", "_fig09", "Pencil-head chart: all EP curves and their envelope"),
        _spec("fig10", "_fig10", "Selected EP curves and ideal-line intersections"),
        _spec("fig11", "_fig11", "Almond chart: all relative-EE curves and their envelope"),
        _spec("fig12", "_fig12", "Selected relative-EE curves and 0.8x/1.0x crossings"),
        _spec("fig13", "_fig13", "EP and EE vs. server node count"),
        _spec("fig14", "_fig14", "EP and EE of single-node servers vs. chip count"),
        _spec("fig15", "_fig15", "2-chip single-node servers vs. all servers"),
        _spec("fig16", "_fig16", "Chronological shifting of the peak-EE utilization spot"),
        _spec("fig17", "_fig17", "Corpus EP and EE by memory-per-core configuration"),
        _spec("fig18", "_fig18", "Server #1: EE vs. memory-per-core and frequency",
              depends=(sweep_resource(1),), tags=("figure", "testbed")),
        _spec("fig19", "_fig19", "Server #2: EE vs. memory-per-core and frequency",
              depends=(sweep_resource(2),), tags=("figure", "testbed")),
        _spec("fig20", "_fig20", "Server #4: EE vs. memory-per-core and frequency",
              depends=(sweep_resource(4),), tags=("figure", "testbed")),
        _spec("fig21", "_fig21", "Server #4: EE and peak power vs. frequency and memory",
              depends=(sweep_resource(4),), tags=("figure", "testbed")),
        _spec("table1", "_table1", "Memory-per-core statistics of the published servers",
              tags=("table",)),
        _spec("table2", "_table2", "Base configuration of the tested 2U servers",
              depends=(), tags=("table", "testbed")),
        _spec("eq2", "_eq2", "Idle-power regression (Eq. 2) and corr(EP, idle)",
              tags=("scalar",)),
        _spec("reorg", "_reorg", "Published-year vs. hardware-availability-year deltas",
              tags=("scalar",)),
        _spec("asynchrony", "_asynchrony", "EP/EE top-decile asynchrony (Section IV.B)",
              tags=("scalar",)),
        _spec("placement", "_placement", "EP-aware placement vs. pack-to-full (Section V.C)",
              tags=("scalar", "cluster")),
        _spec("wong", "_wong", "Peak-spot shares vs. Wong ISCA'16's ~60% claim (Section VI)",
              tags=("scalar",)),
        # -- extensions beyond the paper's figures (related work + future work) --
        _spec("gap", "_gap", "Proportionality-gap trend and low-utilization lag (Wong & Annavaram)",
              tags=("extension",)),
        _spec("metric_family", "_metric_family", "EP/ER/IPR/LD/PG rank-correlation matrix (Hsu & Poole)",
              tags=("extension",)),
        _spec("forecast", "_forecast", "EP headroom (Eq. 2) and peak-spot drift projections",
              tags=("extension",)),
        _spec("workloads", "_workloads", "Per-workload EP/EE characterization of server #4 (future work)",
              depends=(), tags=("extension", "testbed")),
        _spec("trace", "_trace", "Diurnal-trace placement: daily energy per policy (Section V.C)",
              tags=("extension", "cluster")),
        _spec("jobs", "_jobs", "Job-granular scheduling: peak-spot-aware vs first-fit (Wong ISCA'16)",
              tags=("extension", "cluster")),
        _spec("procurement", "_procurement", "Capacity planning: peak EE is the wrong buying criterion (Section I)",
              tags=("extension", "cluster")),
        _spec("prior_work", "_prior_work", "Prior-work windows re-examined: the 0.83 -> 0.741 correlation drift",
              tags=("extension",)),
    )
}

#: Artifact ids in paper order.
FIGURE_IDS = tuple(REGISTRY)


def register(spec: ArtifactSpec) -> ArtifactSpec:
    """Register an additional artifact (extension point for new studies).

    The id must be new and the builder resolvable; returns the spec so
    the call can be used as a decorator helper.
    """
    if spec.artifact_id in REGISTRY:
        raise ValueError(f"artifact {spec.artifact_id!r} already registered")
    if not spec.artifact_id:
        raise ValueError("artifact id must be non-empty")
    REGISTRY[spec.artifact_id] = spec
    return spec


def description_of(artifact_id: str) -> str:
    """The registered one-line description for ``artifact_id``."""
    return REGISTRY[artifact_id].description
