"""Registry of the paper's reproducible artifacts.

Every entry maps a stable artifact id to the :class:`~repro.core.study.Study`
builder method that regenerates it and a one-line description of what
the paper shows there.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: artifact id -> (Study method name, description)
REGISTRY: Dict[str, Tuple[str, str]] = {
    "fig1": ("_fig01", "Energy proportionality curve of the 2016 exemplar (score 12212, EP~1.02)"),
    "fig2": ("_fig02", "EP and EE evolution by hardware availability year (scatter)"),
    "fig3": ("_fig03", "EP statistics trend: min/avg/median/max per year"),
    "fig4": ("_fig04", "EE and peak-EE statistics trend per year"),
    "fig5": ("_fig05", "CDF of energy proportionality"),
    "fig6": ("_fig06", "Server counts by CPU microarchitecture family"),
    "fig7": ("_fig07", "Average EP by microarchitecture codename"),
    "fig8": ("_fig08", "Microarchitecture mix of 2012-2016"),
    "fig9": ("_fig09", "Pencil-head chart: all EP curves and their envelope"),
    "fig10": ("_fig10", "Selected EP curves and ideal-line intersections"),
    "fig11": ("_fig11", "Almond chart: all relative-EE curves and their envelope"),
    "fig12": ("_fig12", "Selected relative-EE curves and 0.8x/1.0x crossings"),
    "fig13": ("_fig13", "EP and EE vs. server node count"),
    "fig14": ("_fig14", "EP and EE of single-node servers vs. chip count"),
    "fig15": ("_fig15", "2-chip single-node servers vs. all servers"),
    "fig16": ("_fig16", "Chronological shifting of the peak-EE utilization spot"),
    "fig17": ("_fig17", "Corpus EP and EE by memory-per-core configuration"),
    "fig18": ("_fig18", "Server #1: EE vs. memory-per-core and frequency"),
    "fig19": ("_fig19", "Server #2: EE vs. memory-per-core and frequency"),
    "fig20": ("_fig20", "Server #4: EE vs. memory-per-core and frequency"),
    "fig21": ("_fig21", "Server #4: EE and peak power vs. frequency and memory"),
    "table1": ("_table1", "Memory-per-core statistics of the published servers"),
    "table2": ("_table2", "Base configuration of the tested 2U servers"),
    "eq2": ("_eq2", "Idle-power regression (Eq. 2) and corr(EP, idle)"),
    "reorg": ("_reorg", "Published-year vs. hardware-availability-year deltas"),
    "asynchrony": ("_asynchrony", "EP/EE top-decile asynchrony (Section IV.B)"),
    "placement": ("_placement", "EP-aware placement vs. pack-to-full (Section V.C)"),
    "wong": ("_wong", "Peak-spot shares vs. Wong ISCA'16's ~60% claim (Section VI)"),
    # -- extensions beyond the paper's figures (related work + future work) --
    "gap": ("_gap", "Proportionality-gap trend and low-utilization lag (Wong & Annavaram)"),
    "metric_family": ("_metric_family", "EP/ER/IPR/LD/PG rank-correlation matrix (Hsu & Poole)"),
    "forecast": ("_forecast", "EP headroom (Eq. 2) and peak-spot drift projections"),
    "workloads": ("_workloads", "Per-workload EP/EE characterization of server #4 (future work)"),
    "trace": ("_trace", "Diurnal-trace placement: daily energy per policy (Section V.C)"),
    "jobs": ("_jobs", "Job-granular scheduling: peak-spot-aware vs first-fit (Wong ISCA'16)"),
    "procurement": ("_procurement", "Capacity planning: peak EE is the wrong buying criterion (Section I)"),
    "prior_work": ("_prior_work", "Prior-work windows re-examined: the 0.83 -> 0.741 correlation drift"),
}

#: Artifact ids in paper order.
FIGURE_IDS = tuple(REGISTRY)
