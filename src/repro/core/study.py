"""The one-call study: every paper artifact from a single corpus.

Typical use::

    from repro import Study

    study = Study()                  # generates the calibrated corpus
    print(study.figure("fig3").text) # EP trend table
    results = study.run_all()        # every artifact

    # parallel + cached, with per-artifact run metrics:
    report = study.run_all(jobs=4, cache=ArtifactCache(), report=True)
    print(report.render())

Each :class:`FigureResult` carries the underlying data (``series``, a
plain dict of labeled values or point lists) and a terminal rendering
(``text``), so the benchmark harness and the examples share one code
path with the tests.  ``run_all`` delegates to the execution engine in
:mod:`repro.core.executor`, which schedules builds topologically
(shared sweep resources are computed once), optionally consults the
content-addressed cache in :mod:`repro.core.cache`, and times every
build.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.asynchrony import asynchrony_report, year_share_in_top
from repro.analysis.cdf import decile_shares, ep_cdf
from repro.analysis.envelopes import curve_envelope, intersection_ordering, selected_curves
from repro.analysis.grouping import (
    best_memory_per_core,
    codename_ep_table,
    family_table,
    memory_per_core_table,
    mix_by_year,
    stagnation_explanation,
)
from repro.analysis.peak_shift import (
    era_comparison,
    first_diverse_year,
    peak_spot_shares,
    peak_spot_trend,
    total_spots,
    wong_comparison,
)
from repro.analysis.regression_study import ep_score_correlation, idle_regression
from repro.analysis.scale import chip_scaling, node_scaling, two_chip_comparison
from repro.analysis.temporal import (
    delta_range,
    ep_step_changes,
    mismatch_fraction,
    reorganization_deltas,
    yearly_trend,
)
from repro._compat import warn_positional
from repro.cluster.placement import ep_aware_placement, pack_to_full_placement
from repro.core.registry import description_of
from repro.dataset.corpus import Corpus
from repro.dataset.synthesis import generate_corpus
from repro.hwexp.sweeps import SweepResult, run_sweep
from repro.hwexp.testbed import TESTBED, testbed_table
from repro.metrics.ep import UTILIZATION_LEVELS
from repro.viz.ascii_chart import line_chart, scatter_chart
from repro.viz.tables import format_table


@dataclass(frozen=True)
class FigureResult:
    """One regenerated paper artifact."""

    figure_id: str
    title: str
    series: Dict[str, object]
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.figure_id}: {self.title} ==\n{self.text}"


class Study:
    """Owns a corpus and regenerates every figure/table of the paper.

    ``fleet_backend`` selects the cluster-layer implementation for the
    fleet artifacts (placement, trace, jobs): ``"auto"`` (default)
    routes large uniform fleets onto the columnar engines, ``"scalar"``
    forces the reference loops, ``"columnar"`` forces the vectorized
    path.  All three produce bit-identical artifacts.
    """

    @warn_positional("seed", "Study(corpus=...) or Study.query(QueryRequest)")
    def __init__(
        self,
        corpus: Optional[Corpus] = None,
        seed: int = 2016,
        fleet_backend: str = "auto",
    ):
        self.seed = seed
        self.fleet_backend = fleet_backend
        self._corpus = corpus if corpus is not None else generate_corpus(seed)
        self._sweeps: Dict[int, SweepResult] = {}
        self._sweep_locks: Dict[int, threading.Lock] = {
            number: threading.Lock() for number in TESTBED
        }

    @property
    def corpus(self) -> Corpus:
        return self._corpus

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the owned corpus (cache key input)."""
        return self._corpus.fingerprint()

    # -- dispatch -----------------------------------------------------------------

    def figure(self, figure_id: str) -> FigureResult:
        """Regenerate one artifact by its registry id.

        Delegates to the canonical :func:`repro.api.dispatch.build_artifact`
        path, so the Study, the CLI and the serve daemon all build
        artifacts through the same code.
        """
        from repro.api.dispatch import build_artifact

        return build_artifact(self, figure_id)

    def query(self, request: "QueryRequest") -> "QueryResult":
        """Answer one :class:`repro.api.QueryRequest` against this study.

        The request's ``seed`` is ignored in favor of this study's
        corpus: the study adopts itself into a fresh query context, so
        ``Study(corpus).query(StatsQuery(metric="ep"))`` analyses the
        corpus the study already owns.
        """
        from repro.api.dispatch import QueryContext, execute
        from repro.api.requests import QueryRequest as _QueryRequest

        if not isinstance(request, _QueryRequest):
            raise TypeError(
                f"expected a repro.api.QueryRequest, got {type(request).__name__}"
            )
        if request.seed != self.seed or request.fleet_backend != self.fleet_backend:
            request = dataclasses.replace(
                request, seed=self.seed, fleet_backend=self.fleet_backend
            )
        context = QueryContext()
        context.adopt_study(self)
        return execute(request, context)

    def run_all(
        self,
        jobs: int = 1,
        cache: Union[bool, "ArtifactCache", None] = None,
        report: bool = False,
        on_error: str = "raise",
        retry: Optional["RetryPolicy"] = None,
        timeout_s: Optional[float] = None,
        faults: Optional["FaultPlan"] = None,
    ) -> Union[Dict[str, FigureResult], "RunReport"]:
        """Regenerate every artifact, in paper order.

        ``jobs`` widens the engine's thread pool (1 = serial; parallel
        runs produce identical results).  ``cache`` selects the
        content-addressed artifact cache: pass an
        :class:`~repro.core.cache.ArtifactCache` to use a specific
        store, ``True`` for the default store, and ``False``/``None``
        to disable caching.  With ``report=True`` the full
        :class:`~repro.core.executor.RunReport` — a mapping of results
        that additionally carries per-artifact wall times and
        cache-hit flags — is returned instead of a plain dict.

        Failure semantics (see :mod:`repro.core.resilience`):
        ``on_error="isolate"`` quarantines a failing artifact plus its
        downstream dependents and returns a *partial* report whose
        ``failures`` ledger records what went wrong, instead of
        raising; ``retry`` bounds deterministic retries of transient
        failures; ``timeout_s`` is a per-artifact wall-clock budget;
        ``faults`` threads a deterministic
        :class:`~repro.core.faults.FaultPlan` through the engine's
        injection sites.  ``on_error="isolate"`` implies
        ``report=True`` (a plain dict cannot carry the ledger).
        """
        from repro.core.executor import ArtifactExecutor

        run_report = ArtifactExecutor(
            self,
            jobs=jobs,
            cache=cache,
            on_error=on_error,
            retry=retry,
            timeout_s=timeout_s,
            faults=faults,
        ).run()
        if on_error == "isolate":
            return run_report
        return run_report if report else run_report.results

    def ensemble(
        self,
        seeds: Union[int, Sequence[int]] = 5,
        jobs: int = 1,
        structural_effects: bool = True,
        faults: Optional["FaultPlan"] = None,
    ) -> "EnsembleResult":
        """Across-seed stability of the paper's headline statistics.

        ``seeds`` is either an ensemble size — that many consecutive
        seeds starting from this study's own seed — or an explicit seed
        sequence.  ``jobs`` > 1 distributes the per-seed corpus
        generation and analysis over a process pool; serial and
        parallel runs return exactly equal results, and a crashed
        worker degrades (bounded re-runs, then serial) instead of
        killing the run.  See :mod:`repro.core.ensemble`.
        """
        from repro.core.ensemble import run_ensemble

        return run_ensemble(
            seeds,
            jobs=jobs,
            base_seed=self.seed,
            structural_effects=structural_effects,
            faults=faults,
        )

    def _sweep(self, number: int) -> SweepResult:
        with self._sweep_locks[number]:
            if number not in self._sweeps:
                self._sweeps[number] = run_sweep(TESTBED[number])
        return self._sweeps[number]

    # -- Section II / III exemplar ---------------------------------------------------

    def _fig01(self) -> FigureResult:
        exemplar = max(
            self._corpus.by_hw_year(2016),
            key=lambda result: result.ep,
        )
        loads, powers = exemplar.curve()
        peak = powers[-1]
        normalized = [p / peak for p in powers]
        chart = line_chart(
            {
                "server": list(zip(loads, normalized)),
                "ideal": [(u, u) for u in loads],
            },
            title=f"EP curve, {exemplar.hw_year} server, score "
            f"{exemplar.overall_score:.0f}, EP={exemplar.ep:.2f}",
        )
        return FigureResult(
            figure_id="fig1",
            title=description_of("fig1"),
            series={
                "utilization": loads,
                "normalized_power": normalized,
                "ep": exemplar.ep,
                "score": exemplar.overall_score,
            },
            text=chart,
        )

    def _fig02(self) -> FigureResult:
        points_ep = [(r.hw_year, r.ep) for r in self._corpus]
        points_ee = [(r.hw_year, r.overall_score) for r in self._corpus]
        text = scatter_chart(
            {"EP": points_ep}, title="EP by hardware availability year"
        )
        text += "\n" + scatter_chart(
            {"EE": points_ee}, title="Overall EE score by hardware availability year"
        )
        return FigureResult(
            figure_id="fig2",
            title=description_of("fig2"),
            series={"ep_points": points_ep, "ee_points": points_ee},
            text=text,
        )

    def _trend_result(self, figure_id: str, metric: str) -> FigureResult:
        trend = yearly_trend(self._corpus, metric, "hw")
        years = trend.years()
        rows = [
            [
                year,
                trend.by_year[year].minimum,
                trend.by_year[year].mean,
                trend.by_year[year].median,
                trend.by_year[year].maximum,
                trend.by_year[year].count,
            ]
            for year in years
        ]
        table = format_table(
            ["year", "min", "avg", "median", "max", "n"],
            rows,
            title=f"{metric} statistics by hardware availability year",
        )
        series = {
            "years": years,
            "min": trend.series("min"),
            "avg": trend.series("avg"),
            "median": trend.series("median"),
            "max": trend.series("max"),
        }
        return FigureResult(
            figure_id=figure_id,
            title=description_of(figure_id),
            series=series,
            text=table,
        )

    def _fig03(self) -> FigureResult:
        result = self._trend_result("fig3", "ep")
        steps = ep_step_changes(self._corpus)
        extra = (
            f"\nEP step changes: 2008->2009 avg {steps['avg_2008_2009']:+.1%} "
            f"(paper +48.65%), median {steps['median_2008_2009']:+.1%} (paper +51.35%); "
            f"2011->2012 avg {steps['avg_2011_2012']:+.1%} (paper +24.24%), "
            f"median {steps['median_2011_2012']:+.1%} (paper +26.87%)"
        )
        series = dict(result.series)
        series["step_changes"] = steps
        return FigureResult(
            figure_id="fig3",
            title=result.title,
            series=series,
            text=result.text + extra,
        )

    def _fig04(self) -> FigureResult:
        score = yearly_trend(self._corpus, "score", "hw")
        peak = yearly_trend(self._corpus, "peak_ee", "hw")
        years = score.years()
        rows = [
            [
                year,
                score.by_year[year].mean,
                score.by_year[year].median,
                score.by_year[year].maximum,
                score.by_year[year].minimum,
                peak.by_year[year].mean,
                peak.by_year[year].maximum,
            ]
            for year in years
        ]
        table = format_table(
            ["year", "avg EE", "med EE", "max EE", "min EE", "avg peak EE", "max peak EE"],
            rows,
            title="Energy-efficiency statistics by hardware availability year",
            float_format="{:.0f}",
        )
        return FigureResult(
            figure_id="fig4",
            title=description_of("fig4"),
            series={
                "years": years,
                "avg_ee": score.series("avg"),
                "median_ee": score.series("median"),
                "max_ee": score.series("max"),
                "min_ee": score.series("min"),
                "avg_peak_ee": peak.series("avg"),
                "max_peak_ee": peak.series("max"),
            },
            text=table,
        )

    def _fig05(self) -> FigureResult:
        cdf = ep_cdf(self._corpus)
        xs, ys = cdf.series()
        shares = decile_shares(cdf)
        landmarks = {
            "share_06_07": cdf.share_in(0.6, 0.7),
            "share_08_09": cdf.share_in(0.8, 0.9),
            "share_below_1": cdf(1.0 - 1e-12),
        }
        chart = line_chart(
            {"CDF": list(zip(xs, ys))}, title="CDF of energy proportionality"
        )
        text = chart + (
            f"\nshare in [0.6,0.7): {landmarks['share_06_07']:.2%} (paper 25.21%)"
            f"\nshare in [0.8,0.9): {landmarks['share_08_09']:.2%} (paper 17.44%)"
            f"\nshare below 1.0:    {landmarks['share_below_1']:.2%} (paper 99.58%)"
        )
        return FigureResult(
            figure_id="fig5",
            title=description_of("fig5"),
            series={"x": xs, "F": ys, "landmarks": landmarks, "deciles": shares},
            text=text,
        )

    # -- microarchitecture ---------------------------------------------------------------

    def _fig06(self) -> FigureResult:
        table = family_table(self._corpus)
        rows = [[stat.label, stat.count, stat.ep.mean] for stat in table]
        rendered = format_table(
            ["family", "servers", "avg EP"],
            rows,
            title="Servers by CPU microarchitecture family",
        )
        return FigureResult(
            figure_id="fig6",
            title=description_of("fig6"),
            series={stat.label: {"count": stat.count, "avg_ep": stat.ep.mean} for stat in table},
            text=rendered,
        )

    def _fig07(self) -> FigureResult:
        table = codename_ep_table(self._corpus)
        rows = [[stat.label, stat.count, stat.ep.mean, stat.ep.median] for stat in table]
        rendered = format_table(
            ["codename", "servers", "avg EP", "median EP"],
            rows,
            title="EP by microarchitecture codename",
        )
        explanation = stagnation_explanation(self._corpus)
        text = rendered + (
            f"\n2013-2014 observed avg EP {explanation['observed_2013_2014']:.3f} vs "
            f"{explanation['counterfactual_2012_mix']:.3f} under the 2012 mix; "
            f"2015-2016 recovers to {explanation['observed_2015_2016']:.3f}"
        )
        return FigureResult(
            figure_id="fig7",
            title=description_of("fig7"),
            series={
                "codenames": {
                    stat.label: {"count": stat.count, "avg_ep": stat.ep.mean}
                    for stat in table
                },
                "stagnation": explanation,
            },
            text=text,
        )

    def _fig08(self) -> FigureResult:
        mix = mix_by_year(self._corpus)
        rows = []
        for year, counts in mix.items():
            for codename, count in sorted(counts.items(), key=lambda kv: -kv[1]):
                rows.append([year, codename.value, count])
        rendered = format_table(
            ["year", "codename", "servers"],
            rows,
            title="Microarchitecture mix, 2012-2016",
        )
        from repro.viz.stacked import stacked_bars

        rendered += "\n\n" + stacked_bars(
            {
                year: {codename.value: count for codename, count in counts.items()}
                for year, counts in mix.items()
            },
            title="mix per year (100%-stacked)",
        )
        return FigureResult(
            figure_id="fig8",
            title=description_of("fig8"),
            series={
                year: {codename.value: count for codename, count in counts.items()}
                for year, counts in mix.items()
            },
            text=rendered,
        )

    # -- curve charts ---------------------------------------------------------------------

    def _fig09(self) -> FigureResult:
        env = curve_envelope(self._corpus, "power")
        chart = line_chart(
            {
                "upper (least proportional)": list(zip(env.utilization, env.upper)),
                "lower (most proportional)": list(zip(env.utilization, env.lower)),
                "ideal": [(u, u) for u in env.utilization],
            },
            title="Pencil-head chart envelope (all 477 EP curves lie between)",
        )
        lowest = self._corpus.get(env.upper_id)
        highest = self._corpus.get(env.lower_id)
        text = chart + (
            f"\nupper envelope hugged by {env.upper_id} (EP {lowest.ep:.2f}), "
            f"lower by {env.lower_id} (EP {highest.ep:.2f})"
        )
        return FigureResult(
            figure_id="fig9",
            title=description_of("fig9"),
            series={
                "utilization": list(env.utilization),
                "upper": list(env.upper),
                "lower": list(env.lower),
                "upper_ep": lowest.ep,
                "lower_ep": highest.ep,
            },
            text=text,
        )

    def _fig10(self) -> FigureResult:
        curves = selected_curves(self._corpus)
        chart_series = {
            f"{c.hw_year} EP={c.ep:.2f}": list(
                zip(UTILIZATION_LEVELS, c.power_curve)
            )
            for c in curves[:4]
        }
        chart_series["ideal"] = [(u, u) for u in UTILIZATION_LEVELS]
        ordering = intersection_ordering(curves)
        rows = [
            [
                f"{c.hw_year} EP={c.ep:.2f}",
                len(c.ideal_intersections),
                c.ideal_intersections[0] if c.ideal_intersections else float("nan"),
                c.peak_spot,
            ]
            for c in curves
        ]
        table = format_table(
            ["curve", "ideal crossings", "first crossing", "peak spot"],
            rows,
            title="Selected EP curves (Fig. 10)",
        )
        return FigureResult(
            figure_id="fig10",
            title=description_of("fig10"),
            series={
                "curves": {
                    f"{c.hw_year}:{c.ep:.2f}": list(c.power_curve) for c in curves
                },
                "intersection_ordering": ordering,
            },
            text=line_chart(chart_series, title="Selected EP curves (4 shown)")
            + "\n"
            + table,
        )

    def _fig11(self) -> FigureResult:
        env = curve_envelope(self._corpus, "ee")
        chart = line_chart(
            {
                "upper (most proportional)": list(zip(env.utilization, env.upper)),
                "lower (least proportional)": list(zip(env.utilization, env.lower)),
            },
            title="Almond chart envelope (all relative-EE curves lie between)",
        )
        return FigureResult(
            figure_id="fig11",
            title=description_of("fig11"),
            series={
                "utilization": list(env.utilization),
                "upper": list(env.upper),
                "lower": list(env.lower),
            },
            text=chart,
        )

    def _fig12(self) -> FigureResult:
        curves = selected_curves(self._corpus)
        rows = [
            [
                f"{c.hw_year} EP={c.ep:.2f}",
                c.crossing_08,
                c.crossing_10,
                c.peak_spot,
            ]
            for c in curves
        ]
        table = format_table(
            ["curve", "0.8x crossing", "1.0x crossing", "peak spot"],
            rows,
            title="Relative-EE crossings of the selected curves (Fig. 12)",
        )
        high_ep = [c for c in curves if c.ep > 1.0]
        notes = [
            f"{c.hw_year} EP={c.ep:.2f}: 0.8x at {c.crossing_08:.2f} "
            f"(paper: before 30%), 1.0x at {c.crossing_10:.2f} (paper: before 40%)"
            for c in high_ep
        ]
        return FigureResult(
            figure_id="fig12",
            title=description_of("fig12"),
            series={
                "curves": {
                    f"{c.hw_year}:{c.ep:.2f}": list(c.ee_curve) for c in curves
                },
                "crossings": {
                    f"{c.hw_year}:{c.ep:.2f}": (c.crossing_08, c.crossing_10)
                    for c in curves
                },
            },
            text=table + ("\n" + "\n".join(notes) if notes else ""),
        )

    # -- economies of scale ------------------------------------------------------------------

    def _fig13(self) -> FigureResult:
        stats = node_scaling(self._corpus)
        rows = [
            [stat.key, stat.count, stat.ep.mean, stat.ep.median, stat.score.mean, stat.score.median]
            for stat in stats
        ]
        table = format_table(
            ["nodes", "servers", "avg EP", "med EP", "avg EE", "med EE"],
            rows,
            title="EP/EE vs. server node count (Fig. 13)",
        )
        return FigureResult(
            figure_id="fig13",
            title=description_of("fig13"),
            series={
                stat.key: {
                    "count": stat.count,
                    "avg_ep": stat.ep.mean,
                    "median_ep": stat.ep.median,
                    "avg_ee": stat.score.mean,
                    "median_ee": stat.score.median,
                }
                for stat in stats
            },
            text=table,
        )

    def _fig14(self) -> FigureResult:
        stats = chip_scaling(self._corpus)
        rows = [
            [stat.key, stat.count, stat.ep.mean, stat.ep.median, stat.score.mean, stat.score.median]
            for stat in stats
        ]
        table = format_table(
            ["chips", "servers", "avg EP", "med EP", "avg EE", "med EE"],
            rows,
            title="Single-node EP/EE vs. chip count (Fig. 14)",
        )
        return FigureResult(
            figure_id="fig14",
            title=description_of("fig14"),
            series={
                stat.key: {
                    "count": stat.count,
                    "avg_ep": stat.ep.mean,
                    "median_ep": stat.ep.median,
                    "avg_ee": stat.score.mean,
                    "median_ee": stat.score.median,
                }
                for stat in stats
            },
            text=table,
        )

    def _fig15(self) -> FigureResult:
        comparison = two_chip_comparison(self._corpus)
        rows = [
            ["avg EP", comparison.avg_ep_gain, 0.0294],
            ["avg EE", comparison.avg_ee_gain, 0.0413],
            ["median EP", comparison.median_ep_gain, 0.0118],
            ["median EE", comparison.median_ee_gain, 0.0626],
        ]
        table = format_table(
            ["statistic", "measured gain", "paper gain"],
            rows,
            title="2-chip single-node servers vs. all servers (Fig. 15)",
        )
        return FigureResult(
            figure_id="fig15",
            title=description_of("fig15"),
            series={
                "avg_ep_gain": comparison.avg_ep_gain,
                "avg_ee_gain": comparison.avg_ee_gain,
                "median_ep_gain": comparison.median_ep_gain,
                "median_ee_gain": comparison.median_ee_gain,
            },
            text=table,
        )

    # -- peak shifting ---------------------------------------------------------------------------

    def _fig16(self) -> FigureResult:
        trend = peak_spot_trend(self._corpus)
        shares = peak_spot_shares(self._corpus)
        eras = era_comparison(self._corpus)
        rows = []
        for year, spots in trend.items():
            for spot, share in sorted(spots.items()):
                rows.append([year, f"{spot:.0%}", share])
        table = format_table(
            ["year", "peak spot", "share"],
            rows,
            title="Peak-efficiency utilization spot per year (Fig. 16)",
        )
        era_lines = []
        for era in eras:
            parts = ", ".join(
                f"{spot:.0%}: {share:.1%}" for spot, share in sorted(era.shares.items())
            )
            era_lines.append(f"{era.era[0]}-{era.era[1]} ({era.servers} servers): {parts}")
        from repro.viz.stacked import stacked_bars

        bars = stacked_bars(
            {
                year: {f"{spot:.0%}": share for spot, share in spots.items()}
                for year, spots in trend.items()
            },
            title="peak-EE spot share per year (the Fig. 16 stack)",
            category_order=["100%", "90%", "80%", "70%", "60%"],
        )
        text = table + "\n\n" + bars + "\n" + "\n".join(era_lines) + (
            f"\ntotal spots {total_spots(self._corpus)} for {len(self._corpus)} "
            f"servers (paper: 478 for 477); diversity starts "
            f"{first_diverse_year(self._corpus)} (paper: 2010)"
        )
        return FigureResult(
            figure_id="fig16",
            title=description_of("fig16"),
            series={
                "trend": {year: dict(spots) for year, spots in trend.items()},
                "shares": shares,
                "eras": {f"{e.era[0]}-{e.era[1]}": dict(e.shares) for e in eras},
            },
            text=text,
        )

    def _fig17(self) -> FigureResult:
        table = memory_per_core_table(self._corpus)
        best = best_memory_per_core(self._corpus)
        rows = [
            [stat.label, stat.count, stat.ep.mean, stat.score.mean] for stat in table
        ]
        rendered = format_table(
            ["GB/core", "servers", "avg EP", "avg EE"],
            rows,
            title="EP/EE by memory per core (Fig. 17)",
        )
        text = rendered + (
            f"\nbest GB/core for EP: {best['ep']:g} (paper 1.5); "
            f"for EE: {best['ee']:g} (paper 1.78)"
        )
        return FigureResult(
            figure_id="fig17",
            title=description_of("fig17"),
            series={
                "buckets": {
                    stat.label: {
                        "count": stat.count,
                        "avg_ep": stat.ep.mean,
                        "avg_ee": stat.score.mean,
                    }
                    for stat in table
                },
                "best": best,
            },
            text=text,
        )

    # -- hardware experiments ------------------------------------------------------------------------

    def _sweep_figure(self, figure_id: str, number: int) -> FigureResult:
        sweep = self._sweep(number)
        server = sweep.server
        rows = []
        frequencies: List[object] = list(server.frequencies_ghz) + ["ondemand"]
        for mpc in server.tested_memory_per_core:
            for frequency in frequencies:
                cell = sweep.cell(mpc, frequency)
                rows.append(
                    [
                        f"{mpc:g}",
                        frequency if isinstance(frequency, str) else f"{frequency:g}",
                        cell.overall_efficiency,
                        cell.peak_power_w,
                    ]
                )
        table = format_table(
            ["GB/core", "freq (GHz)", "EE (ops/W)", "peak W"],
            rows,
            title=f"Server #{number} ({server.name}) memory x frequency sweep",
            float_format="{:.1f}",
        )
        from repro.viz.heatmap import sweep_heatmap

        text = table + "\n\n" + sweep_heatmap(sweep) + (
            f"\nbest GB/core: {sweep.best_memory_per_core():g}; ondemand tracks "
            f"top frequency: {sweep.ondemand_tracks_top_frequency()}"
        )
        return FigureResult(
            figure_id=figure_id,
            title=description_of(figure_id),
            series={
                "best_memory_per_core": sweep.best_memory_per_core(),
                "cells": {
                    (cell.memory_per_core_gb, cell.frequency): {
                        "ee": cell.overall_efficiency,
                        "peak_w": cell.peak_power_w,
                    }
                    for cell in sweep.cells
                },
            },
            text=text,
        )

    def _fig18(self) -> FigureResult:
        return self._sweep_figure("fig18", 1)

    def _fig19(self) -> FigureResult:
        return self._sweep_figure("fig19", 2)

    def _fig20(self) -> FigureResult:
        return self._sweep_figure("fig20", 4)

    def _fig21(self) -> FigureResult:
        sweep = self._sweep(4)
        server = sweep.server
        ee_series = {}
        power_series = {}
        for mpc in server.tested_memory_per_core:
            ee = sweep.efficiency_by_frequency(mpc)
            pw = sweep.peak_power_by_frequency(mpc)
            ee_series[f"EE MPC={mpc:g}"] = sorted(ee.items())
            power_series[f"P MPC={mpc:g}"] = sorted(pw.items())
        text = line_chart(ee_series, title="Server #4 EE vs frequency (Fig. 21)")
        text += "\n" + line_chart(
            power_series, title="Server #4 peak power vs frequency (Fig. 21)"
        )
        return FigureResult(
            figure_id="fig21",
            title=description_of("fig21"),
            series={"ee": ee_series, "peak_power": power_series},
            text=text,
        )

    # -- tables ------------------------------------------------------------------------------------------

    def _table1(self) -> FigureResult:
        table = memory_per_core_table(self._corpus)
        rows = [[stat.label, stat.count] for stat in table]
        rendered = format_table(
            ["memory per core (GB/core)", "count"],
            rows,
            title="Table I: memory-per-core statistics",
        )
        return FigureResult(
            figure_id="table1",
            title=description_of("table1"),
            series={stat.label: stat.count for stat in table},
            text=rendered,
        )

    def _table2(self) -> FigureResult:
        rows = testbed_table()
        rendered = format_table(
            ["No", "Name", "Year", "CPU", "Cores", "TDP (W)", "Memory (GB)", "Disk"],
            rows,
            title="Table II: base configuration of the tested 2U servers",
        )
        return FigureResult(
            figure_id="table2",
            title=description_of("table2"),
            series={"rows": rows},
            text=rendered,
        )

    # -- scalar findings -----------------------------------------------------------------------------------

    def _eq2(self) -> FigureResult:
        regression = idle_regression(self._corpus)
        score_corr = ep_score_correlation(self._corpus)
        text = (
            f"EP = {regression.fit.amplitude:.4f} * exp({regression.fit.rate:.3f} * idle)\n"
            f"R^2 = {regression.fit.r_squared:.3f} (paper 0.892)\n"
            f"corr(EP, idle%) = {regression.correlation:.3f} (paper -0.92)\n"
            f"corr(EP, score) = {score_corr:.3f} (paper 0.741)\n"
            f"predicted EP at 5% idle: {regression.predicted_ep(0.05):.3f} (paper 1.17)\n"
            f"EP ceiling (idle -> 0): {regression.ceiling:.3f} (paper 1.297)"
        )
        return FigureResult(
            figure_id="eq2",
            title=description_of("eq2"),
            series={
                "amplitude": regression.fit.amplitude,
                "rate": regression.fit.rate,
                "r_squared": regression.fit.r_squared,
                "corr_ep_idle": regression.correlation,
                "corr_ep_score": score_corr,
            },
            text=text,
        )

    def _reorg(self) -> FigureResult:
        lines = []
        series = {"mismatch_fraction": mismatch_fraction(self._corpus)}
        lines.append(
            f"results with published != hardware year: "
            f"{series['mismatch_fraction']:.1%} (paper 15.5%)"
        )
        for metric, label in (("ep", "EP"), ("score", "EE")):
            for field_name in ("avg", "median"):
                deltas = reorganization_deltas(self._corpus, metric, field_name)
                low, high = delta_range(deltas)
                series[f"{metric}_{field_name}_range"] = (low, high)
                lines.append(
                    f"{field_name} {label} shift across years: "
                    f"{low:+.1%} .. {high:+.1%}"
                )
        lines.append(
            "(paper: avg EP -6.2%..8.7%, median EP -8.6%..13.1%, "
            "avg EE -2.2%..16.6%, median EE -5.0%..20.8%)"
        )
        return FigureResult(
            figure_id="reorg",
            title=description_of("reorg"),
            series=series,
            text="\n".join(lines),
        )

    def _asynchrony(self) -> FigureResult:
        report = asynchrony_report(self._corpus)
        ep_shares = year_share_in_top(self._corpus, "ep")
        ee_shares = year_share_in_top(self._corpus, "score")
        text = (
            f"top-10% EP from 2012: {report.top_ep_share_2012:.1%} (paper 91.7%)\n"
            f"top-10% EE from 2012: {report.top_ee_share_2012:.1%} (paper 16.7%)\n"
            f"2012 population share: {report.population_share_2012:.1%} (paper 27.4%)\n"
            f"EP/EE top-decile overlap: {report.overlap_fraction:.1%} (paper 14.6%)\n"
            f"2015-2016 servers in top-10% EE: {report.recent_in_top_ee}/"
            f"{report.recent_servers} (paper: all)"
        )
        return FigureResult(
            figure_id="asynchrony",
            title=description_of("asynchrony"),
            series={
                "report": report,
                "top_ep_by_year": ep_shares,
                "top_ee_by_year": ee_shares,
            },
            text=text,
        )

    def _placement(self) -> FigureResult:
        fleet = list(self._corpus.by_hw_year_range(2013, 2016))
        capacity = sum(
            level.ssj_ops
            for server in fleet
            for level in server.levels
            if level.target_load == 1.0
        )
        demand = 0.5 * capacity
        packed = pack_to_full_placement(
            fleet, demand, fleet_backend=self.fleet_backend
        )
        aware = ep_aware_placement(fleet, demand, fleet_backend=self.fleet_backend)
        saving = 1.0 - aware.total_power_w / packed.total_power_w
        text = (
            f"fleet: {len(fleet)} servers (2013-2016), demand = 50% of capacity\n"
            f"pack-to-full: {packed.servers_used} servers, "
            f"{packed.total_power_w:.0f} W, {packed.fleet_efficiency:.1f} ops/W\n"
            f"EP-aware:     {aware.servers_used} servers, "
            f"{aware.total_power_w:.0f} W, {aware.fleet_efficiency:.1f} ops/W\n"
            f"power saving from EP-aware placement: {saving:.1%}"
        )
        return FigureResult(
            figure_id="placement",
            title=description_of("placement"),
            series={
                "demand_ops": demand,
                "pack_power_w": packed.total_power_w,
                "aware_power_w": aware.total_power_w,
                "saving": saving,
            },
            text=text,
        )

    # -- extensions -----------------------------------------------------------------------------

    def _gap(self) -> FigureResult:
        from repro.analysis.gap import gap_trend, low_band_lag

        trend = gap_trend(self._corpus)
        lag = low_band_lag(self._corpus)
        rows = [
            [year, mean, low]
            for year, mean, low in zip(
                trend.years, trend.mean_gap, trend.low_band_gap
            )
        ]
        table = format_table(
            ["year", "mean gap", "gap @10-30%"],
            rows,
            title="Proportionality gap by hardware availability year",
        )
        text = table + (
            f"\nmodern cohort (2013-2016): avg EP {lag['modern_avg_ep']:.2f}, "
            f"yet the 10-30% band still gaps {lag['low_band_gap']:.3f} above "
            f"ideal ({lag['low_minus_mid']:+.3f} vs the 50-80% band)"
        )
        return FigureResult(
            figure_id="gap",
            title=description_of("gap"),
            series={"trend": trend, "lag": lag},
            text=text,
        )

    def _metric_family(self) -> FigureResult:
        from repro.analysis.metric_comparison import (
            METRIC_FAMILY,
            equal_ep_different_ld,
            rank_correlation_matrix,
        )

        matrix = rank_correlation_matrix(self._corpus)
        rows = [
            [a] + [matrix[(a, b)] for b in METRIC_FAMILY] for a in METRIC_FAMILY
        ]
        table = format_table(
            ["metric"] + list(METRIC_FAMILY),
            rows,
            title="Spearman correlations of the proportionality-metric family",
        )
        pairs = equal_ep_different_ld(self._corpus)
        text = table + (
            f"\nequal-EP pairs with clearly different LD: {len(pairs)} "
            f"(the scalar conceals curve shape)"
        )
        return FigureResult(
            figure_id="metric_family",
            title=description_of("metric_family"),
            series={"matrix": matrix, "equal_ep_pairs": pairs},
            text=text,
        )

    def _forecast(self) -> FigureResult:
        from repro.analysis.forecast import ep_headroom, spot_drift_forecast

        headroom = ep_headroom(self._corpus)
        drift = spot_drift_forecast(self._corpus)
        lines = [
            f"fleet today: mean EP {headroom.current_mean_ep:.2f} at mean idle "
            f"{headroom.current_mean_idle:.0%} "
            f"({headroom.banked_fraction:.0%} of the Eq. 2 ceiling "
            f"{headroom.fitted_ceiling:.3f})",
        ]
        for idle, ep in sorted(headroom.projections.items(), reverse=True):
            lines.append(f"  at {idle:.0%} idle -> projected EP {ep:.2f}")
        lines.append(
            f"peak-spot drift since 2010: {drift.slope_per_year:+.3f}/year; "
            f"mean spot reaches 50% utilization ~{drift.year_reaching(0.5)} "
            f"(paper: '50% or even 40% in the near future')"
        )
        return FigureResult(
            figure_id="forecast",
            title=description_of("forecast"),
            series={"headroom": headroom, "drift": drift},
            text="\n".join(lines),
        )

    def _workloads(self) -> FigureResult:
        from repro.hwexp.workloads import compare_workloads, ep_spread
        from repro.ssj.variants import VARIANTS

        results = compare_workloads(TESTBED[4], list(VARIANTS.values()))
        rows = [
            [name, outcome.ep, outcome.overall_ee, outcome.power_w[-1]]
            for name, outcome in sorted(
                results.items(), key=lambda kv: -kv[1].ep
            )
        ]
        table = format_table(
            ["workload", "EP", "EE (ops/W)", "peak W"],
            rows,
            title="Server #4 under four workload personalities",
        )
        spread = ep_spread(results)
        return FigureResult(
            figure_id="workloads",
            title=description_of("workloads"),
            series={"results": results, "ep_spread": spread},
            text=table + f"\nEP spread across workloads: {spread:.3f}",
        )

    def _trace(self) -> FigureResult:
        from repro.cluster.trace import compare_policies, daily_saving, diurnal_trace

        fleet = list(self._corpus.by_hw_year_range(2014, 2016))
        trace = diurnal_trace(steps_per_day=24, noise=0.0)
        outcomes = compare_policies(fleet, trace, fleet_backend=self.fleet_backend)
        saving = daily_saving(outcomes)
        rows = [
            [
                outcome.policy,
                outcome.energy_kwh,
                outcome.served_gops,
                outcome.energy_per_gop * 1000.0,
            ]
            for outcome in outcomes.values()
        ]
        table = format_table(
            ["policy", "energy (kWh/day)", "served (Gops)", "Wh per Gop"],
            rows,
            title=f"One diurnal day over {len(fleet)} servers (2014-2016)",
        )
        return FigureResult(
            figure_id="trace",
            title=description_of("trace"),
            series={"outcomes": outcomes, "saving": saving},
            text=table + f"\nEP-aware daily energy saving: {saving:.1%}",
        )

    def _jobs(self) -> FigureResult:
        from repro.cluster.jobs import compare_schedulers, synthesize_jobs

        fleet = list(self._corpus.by_hw_year_range(2014, 2016))
        jobs = synthesize_jobs(fleet, demand_fraction=0.5, seed=4)
        schedules = compare_schedulers(
            fleet, jobs, fleet_backend=self.fleet_backend
        )
        rows = [
            [
                schedule.policy,
                schedule.servers_loaded,
                schedule.total_power_w,
                len(schedule.unplaced),
            ]
            for schedule in schedules.values()
        ]
        table = format_table(
            ["scheduler", "servers loaded", "fleet W", "unplaced jobs"],
            rows,
            title=f"{len(jobs)} jobs at 50% of fleet capacity",
        )
        ffd = schedules["first-fit-decreasing"].total_power_w
        spot = schedules["peak-spot-aware"].total_power_w
        saving = 1.0 - spot / ffd
        return FigureResult(
            figure_id="jobs",
            title=description_of("jobs"),
            series={"schedules": schedules, "saving": saving, "jobs": len(jobs)},
            text=table + f"\npeak-spot-aware power saving: {saving:+.1%}",
        )

    def _procurement(self) -> FigureResult:
        from repro.cluster.procurement import (
            build_controlled_candidates,
            plan_procurement,
        )
        from repro.cluster.trace import diurnal_trace

        # The controlled pair isolates the Section I caution: identical
        # platforms except that one trades proportionality for a higher
        # headline (peak) efficiency.
        controlled = plan_procurement(
            build_controlled_candidates(), 5e5, trace=diurnal_trace(noise=0.0)
        )
        # Context: a realistic shortlist of the best 2016 corpus models.
        shortlist = plan_procurement(
            sorted(
                self._corpus.by_hw_year(2016),
                key=lambda result: -result.overall_score,
            )[:6],
            5e6,
            trace=diurnal_trace(noise=0.0),
        )
        rows = [
            [
                evaluation.candidate.model,
                evaluation.ep,
                evaluation.peak_ee,
                evaluation.servers_needed,
                evaluation.daily_energy_kwh,
            ]
            for evaluation in controlled.evaluations
        ]
        table = format_table(
            ["candidate", "EP", "peak EE", "servers", "kWh/day"],
            rows,
            title="Controlled pair: throughput champion vs proportional design",
        )
        corpus_rows = [
            [
                evaluation.candidate.result_id,
                evaluation.ep,
                evaluation.peak_ee,
                evaluation.daily_energy_kwh,
            ]
            for evaluation in shortlist.evaluations
        ]
        corpus_table = format_table(
            ["2016 model", "EP", "peak EE", "kWh/day"],
            corpus_rows,
            title="Context: the six highest-scoring 2016 corpus models",
        )
        text = table + (
            f"\nbuying by peak EE picks the throughput champion and costs "
            f"{controlled.naive_penalty:+.1%} daily energy\n\n"
        ) + corpus_table
        return FigureResult(
            figure_id="procurement",
            title=description_of("procurement"),
            series={
                "controlled": controlled,
                "shortlist": shortlist,
                "naive_penalty": controlled.naive_penalty,
                "naive_matches": controlled.naive_choice_matches,
            },
            text=text,
        )

    def _prior_work(self) -> FigureResult:
        from repro.analysis.prior_subsets import (
            ep_score_correlation_drift,
            high_ep_peak_spot_comparison,
            mean_ep_drift,
        )

        correlation = ep_score_correlation_drift(self._corpus)
        mean_ep = mean_ep_drift(self._corpus)
        wong = high_ep_peak_spot_comparison(self._corpus)
        text = (
            f"Hsu & Poole window (published <= 2014, {correlation.subset_size} "
            f"results): corr(EP, score) = {correlation.subset_value:.3f} "
            f"(they reported 0.83)\n"
            f"full record ({len(self._corpus)} results): "
            f"{correlation.full_value:.3f} (paper: 0.741)\n"
            f"Wong MICRO'12 window ({mean_ep.subset_size} results): mean EP "
            f"{mean_ep.subset_value:.2f}; full record {mean_ep.full_value:.2f}\n"
            f"Wong ISCA'16 dispute: {wong['high_ep_low_spot_share_full']:.0%} "
            f"of high-EP servers do peak at <=70% utilization, but only "
            f"{wong['share_60_full']:.1%} of the population peaks at 60%"
        )
        return FigureResult(
            figure_id="prior_work",
            title=description_of("prior_work"),
            series={
                "correlation_drift": correlation,
                "mean_ep_drift": mean_ep,
                "wong": wong,
            },
            text=text,
        )

    def _wong(self) -> FigureResult:
        comparison = wong_comparison(self._corpus)
        text = (
            f"servers peaking at 100%: {comparison['share_100']:.2%} (paper 69.25%)\n"
            f"servers peaking at 60%:  {comparison['share_60']:.2%} (paper 1.88%)\n"
            f"60%-peakers: {comparison['count_60']:.0f} servers, average peak EE "
            f"{comparison['avg_peak_ee_60']:.0f} ops/W"
        )
        return FigureResult(
            figure_id="wong",
            title=description_of("wong"),
            series=comparison,
            text=text,
        )
