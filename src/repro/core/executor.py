"""Parallel artifact execution engine with caching and run metrics.

:class:`ArtifactExecutor` turns the declarative registry
(:mod:`repro.core.registry`) into an execution plan:

1. every requested artifact is first probed against the
   content-addressed cache (:mod:`repro.core.cache`) — hits skip both
   the build *and* its dependencies;
2. the remaining artifacts and the shared resources they declare
   (``"corpus"``, ``"sweep:N"``) form a dependency graph that is
   topologically scheduled across a thread pool, so a sweep shared by
   several figures (e.g. server #4 feeding fig20 and fig21) is
   computed exactly once;
3. every build is timed, and the :class:`RunReport` returned by
   :meth:`ArtifactExecutor.run` carries per-artifact wall time and
   cache-hit flags next to the results.

Threads (not processes) carry the parallelism: builders share the
memoized corpus metrics and sweep results in place, the hot loops sit
in numpy, and results need no cross-process pickling.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Mapping
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from graphlib import TopologicalSorter
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Union

from repro.core.cache import ArtifactCache
from repro.core.registry import CORPUS, FIGURE_IDS, REGISTRY, ArtifactSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.study import FigureResult, Study


def default_jobs() -> int:
    """Worker count when none is requested: capped CPU count."""
    return min(8, os.cpu_count() or 1)


@dataclass(frozen=True)
class ArtifactMetric:
    """Build observability for one artifact in one run."""

    artifact_id: str
    seconds: float
    cache_hit: bool

    @property
    def source(self) -> str:
        """Where the result came from: ``"cache"`` or ``"built"``."""
        return "cache" if self.cache_hit else "built"


@dataclass
class RunReport(Mapping):
    """Results plus per-artifact metrics for one engine run.

    Behaves as a read-only mapping of ``artifact id -> FigureResult``
    (so existing ``run_all()`` consumers can iterate it unchanged) and
    additionally exposes ``metrics``, resource timings, and a
    :meth:`render` summary table.
    """

    results: Dict[str, "FigureResult"]
    metrics: Dict[str, ArtifactMetric]
    resource_seconds: Dict[str, float]
    jobs: int
    total_seconds: float
    cache_dir: Optional[str] = None
    errors: List[str] = field(default_factory=list)

    def __getitem__(self, artifact_id: str) -> "FigureResult":
        return self.results[artifact_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def cache_hits(self) -> int:
        """How many artifacts were served from the cache."""
        return sum(1 for metric in self.metrics.values() if metric.cache_hit)

    @property
    def built(self) -> int:
        """How many artifacts were computed this run."""
        return len(self.metrics) - self.cache_hits

    def render(self) -> str:
        """A terminal table of per-artifact timings and sources."""
        from repro.viz.tables import format_table

        rows = [
            [metric.artifact_id, metric.source, metric.seconds * 1000.0]
            for metric in self.metrics.values()
        ]
        table = format_table(
            ["artifact", "source", "ms"],
            rows,
            title=f"engine run: {len(self.results)} artifacts, "
            f"{self.cache_hits} cached, jobs={self.jobs}",
            float_format="{:.2f}",
        )
        summary = (
            f"total {self.total_seconds * 1000.0:.1f} ms"
            + (f", cache at {self.cache_dir}" if self.cache_dir else ", cache off")
        )
        if self.resource_seconds:
            shared = ", ".join(
                f"{name} {seconds * 1000.0:.1f} ms"
                for name, seconds in self.resource_seconds.items()
                if name != CORPUS
            )
            if shared:
                summary += f"\nshared resources: {shared}"
        return table + "\n" + summary


class ArtifactExecutor:
    """Schedules artifact builds for one :class:`Study`.

    ``jobs`` sets the thread-pool width (1 = serial, ``None`` = capped
    CPU count); ``cache`` is an :class:`ArtifactCache` keyed on the
    study's corpus fingerprint, ``True`` for the default store, or
    ``False``/``None`` for no caching.  Parallel and serial runs
    produce identical results: builders only read shared state, and
    the memoized sweep resources are resolved before any dependent
    artifact starts.
    """

    def __init__(self, study: "Study", jobs: Optional[int] = None,
                 cache: Union[bool, ArtifactCache, None] = None):
        self.study = study
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if isinstance(cache, bool):
            cache = ArtifactCache() if cache else None
        self.cache = cache
        self._lock = threading.Lock()

    # -- graph construction -------------------------------------------------------

    def _specs(self, artifact_ids: Optional[Sequence[str]]) -> List[ArtifactSpec]:
        ids = list(FIGURE_IDS) if artifact_ids is None else list(artifact_ids)
        unknown = [fid for fid in ids if fid not in REGISTRY]
        if unknown:
            raise KeyError(f"unknown artifact(s) {unknown!r}")
        return [REGISTRY[fid] for fid in ids]

    def _resolve_resource(self, key: str) -> None:
        """Materialize one shared resource on the study (memoized there)."""
        if key == CORPUS:
            self.study.corpus  # already materialized at construction
        elif key.startswith("sweep:"):
            self.study._sweep(int(key.split(":", 1)[1]))
        else:
            raise KeyError(f"unknown resource {key!r}")

    # -- execution ----------------------------------------------------------------

    def run(self, artifact_ids: Optional[Sequence[str]] = None) -> RunReport:
        """Regenerate the requested artifacts (all of them by default)."""
        started = time.perf_counter()
        specs = self._specs(artifact_ids)
        results: Dict[str, "FigureResult"] = {}
        metrics: Dict[str, ArtifactMetric] = {}
        resource_seconds: Dict[str, float] = {}
        errors: List[str] = []

        fingerprint = self.study.fingerprint if self.cache is not None else ""
        to_build: List[ArtifactSpec] = []
        for spec in specs:
            if self.cache is not None:
                probe_started = time.perf_counter()
                cached = self.cache.get(fingerprint, spec.artifact_id)
                if cached is not None:
                    results[spec.artifact_id] = cached
                    metrics[spec.artifact_id] = ArtifactMetric(
                        spec.artifact_id,
                        time.perf_counter() - probe_started,
                        cache_hit=True,
                    )
                    continue
            to_build.append(spec)

        if to_build:
            self._build(to_build, fingerprint, results, metrics,
                        resource_seconds, errors)

        ordered_ids = [spec.artifact_id for spec in specs]
        return RunReport(
            results={fid: results[fid] for fid in ordered_ids},
            metrics={fid: metrics[fid] for fid in ordered_ids},
            resource_seconds=resource_seconds,
            jobs=self.jobs,
            total_seconds=time.perf_counter() - started,
            cache_dir=str(self.cache.root) if self.cache is not None else None,
            errors=errors,
        )

    def _build(self, specs: List[ArtifactSpec], fingerprint: str,
               results: Dict[str, "FigureResult"],
               metrics: Dict[str, ArtifactMetric],
               resource_seconds: Dict[str, float],
               errors: List[str]) -> None:
        build_ids = {spec.artifact_id for spec in specs}
        graph: Dict[str, set] = {}
        for spec in specs:
            graph[spec.artifact_id] = set(spec.depends)
            for resource in spec.depends:
                graph.setdefault(resource, set())

        def run_node(node: str) -> None:
            node_started = time.perf_counter()
            if node in build_ids:
                result = REGISTRY[node].bind(self.study)()
                elapsed = time.perf_counter() - node_started
                if self.cache is not None:
                    self.cache.put(fingerprint, node, result)
                with self._lock:
                    results[node] = result
                    metrics[node] = ArtifactMetric(node, elapsed, cache_hit=False)
            else:
                self._resolve_resource(node)
                with self._lock:
                    resource_seconds[node] = time.perf_counter() - node_started

        sorter: TopologicalSorter = TopologicalSorter(graph)
        if self.jobs == 1:
            for node in sorter.static_order():
                run_node(node)
            return

        sorter.prepare()
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            pending: Dict[object, str] = {}
            while sorter.is_active():
                for node in sorter.get_ready():
                    pending[pool.submit(run_node, node)] = node
                if not pending:  # pragma: no cover - defensive
                    break
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    node = pending.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        errors.append(f"{node}: {exc!r}")
                        for remaining in pending:
                            remaining.cancel()
                        raise exc
                    sorter.done(node)
