"""Parallel artifact execution engine with caching, retries, isolation.

:class:`ArtifactExecutor` turns the declarative registry
(:mod:`repro.core.registry`) into an execution plan:

1. every requested artifact is first probed against the
   content-addressed cache (:mod:`repro.core.cache`) — hits skip both
   the build *and* its dependencies;
2. the remaining artifacts and the shared resources they declare
   (``"corpus"``, ``"sweep:N"``) form a dependency graph that is
   topologically scheduled across a thread pool, so a sweep shared by
   several figures (e.g. server #4 feeding fig20 and fig21) is
   computed exactly once;
3. every build is timed, and the :class:`RunReport` returned by
   :meth:`ArtifactExecutor.run` carries per-artifact wall time and
   cache-hit flags next to the results.

Failure semantics (:mod:`repro.core.resilience`) are explicit:

* ``retry=RetryPolicy(...)`` retries transient per-node failures on a
  bounded, deterministic (seeded-jitter) backoff schedule;
* ``timeout_s`` puts a wall-clock budget on every node;
* ``on_error="raise"`` (default) aborts on the first unrecovered
  failure — after *draining* in-flight builds, so no worker mutates
  shared state past the raise;
* ``on_error="isolate"`` quarantines the failing node plus its
  downstream dependents, finishes everything else, and returns a
  partial report whose :attr:`RunReport.failures` ledger records every
  root failure and quarantine;
* a ``faults=FaultPlan(...)`` threads the deterministic fault harness
  (:mod:`repro.core.faults`) through every ``builder.<id>`` /
  ``resource.<key>`` site, which is how all of the above is tested.

Threads (not processes) carry the parallelism: builders share the
memoized corpus metrics and sweep results in place, the hot loops sit
in numpy, and results need no cross-process pickling.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Mapping
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from graphlib import TopologicalSorter
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro.core.cache import ArtifactCache
from repro.core.faults import FaultPlan, fire
from repro.core.registry import CORPUS, FIGURE_IDS, REGISTRY, ArtifactSpec
from repro.core.resilience import (
    FailureLedger,
    RetryPolicy,
    failure_record,
    quarantine_record,
    run_with_timeout,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.study import FigureResult, Study

#: The recognized ``on_error`` modes of :meth:`ArtifactExecutor.run`.
ON_ERROR_MODES = ("raise", "isolate")

#: Tick for bounded waits on the pool (keeps every wait timed without
#: ever giving up on a healthy long build).
_WAIT_TICK_S = 0.25

#: How long an aborting run waits for in-flight builds to drain.
_DRAIN_TIMEOUT_S = 60.0


def default_jobs() -> int:
    """Worker count when none is requested: capped CPU count."""
    return min(8, os.cpu_count() or 1)


@dataclass(frozen=True)
class ArtifactMetric:
    """Build observability for one artifact in one run."""

    artifact_id: str
    seconds: float
    cache_hit: bool

    @property
    def source(self) -> str:
        """Where the result came from: ``"cache"`` or ``"built"``."""
        return "cache" if self.cache_hit else "built"


@dataclass(frozen=True)
class _NodeFailure:
    """Internal: one node's unrecovered failure, with retry context."""

    node: str
    error: BaseException
    attempts: int
    elapsed_s: float


@dataclass
class RunReport(Mapping):
    """Results plus per-artifact metrics for one engine run.

    Behaves as a read-only mapping of ``artifact id -> FigureResult``
    (so existing ``run_all()`` consumers can iterate it unchanged) and
    additionally exposes ``metrics``, resource timings, the
    ``failures`` ledger of an isolate-mode run, and a :meth:`render`
    summary table.
    """

    results: Dict[str, "FigureResult"]
    metrics: Dict[str, ArtifactMetric]
    resource_seconds: Dict[str, float]
    jobs: int
    total_seconds: float
    cache_dir: Optional[str] = None
    errors: List[str] = field(default_factory=list)
    failures: FailureLedger = field(default_factory=FailureLedger)
    on_error: str = "raise"

    def __getitem__(self, artifact_id: str) -> "FigureResult":
        return self.results[artifact_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def cache_hits(self) -> int:
        """How many artifacts were served from the cache."""
        return sum(1 for metric in self.metrics.values() if metric.cache_hit)

    @property
    def built(self) -> int:
        """How many artifacts were computed this run."""
        return len(self.metrics) - self.cache_hits

    @property
    def ok(self) -> bool:
        """Whether every requested artifact was produced."""
        return not self.failures and not self.errors

    @property
    def quarantined(self) -> Dict[str, str]:
        """Quarantined artifact id -> the root failure that caused it."""
        return {
            record.artifact_id: record.quarantined_by or ""
            for record in self.failures
            if record.is_quarantine
        }

    def render(self) -> str:
        """A terminal table of per-artifact timings and sources."""
        from repro.viz.tables import format_table

        rows = [
            [metric.artifact_id, metric.source, metric.seconds * 1000.0]
            for metric in self.metrics.values()
        ]
        table = format_table(
            ["artifact", "source", "ms"],
            rows,
            title=f"engine run: {len(self.results)} artifacts, "
            f"{self.cache_hits} cached, jobs={self.jobs}",
            float_format="{:.2f}",
        )
        summary = (
            f"total {self.total_seconds * 1000.0:.1f} ms"
            + (f", cache at {self.cache_dir}" if self.cache_dir else ", cache off")
        )
        if self.resource_seconds:
            shared = ", ".join(
                f"{name} {seconds * 1000.0:.1f} ms"
                for name, seconds in self.resource_seconds.items()
                if name != CORPUS
            )
            if shared:
                summary += f"\nshared resources: {shared}"
        if self.failures:
            summary += "\n" + self.failures.render()
        return table + "\n" + summary


class ArtifactExecutor:
    """Schedules artifact builds for one :class:`Study`.

    ``jobs`` sets the thread-pool width (1 = serial, ``None`` = capped
    CPU count); ``cache`` is an :class:`ArtifactCache` keyed on the
    study's corpus fingerprint, ``True`` for the default store, or
    ``False``/``None`` for no caching.  ``on_error``, ``retry``,
    ``timeout_s``, and ``faults`` select the failure semantics (see
    the module docstring).  Parallel and serial runs produce identical
    results *and identical failure ledgers*: builders only read shared
    state, the memoized sweep resources are resolved before any
    dependent artifact starts, and retry jitter is seeded.
    """

    def __init__(self, study: "Study", jobs: Optional[int] = None,
                 cache: Union[bool, ArtifactCache, None] = None,
                 on_error: str = "raise",
                 retry: Optional[RetryPolicy] = None,
                 timeout_s: Optional[float] = None,
                 faults: Optional[FaultPlan] = None):
        self.study = study
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if isinstance(cache, bool):
            cache = ArtifactCache() if cache else None
        self.cache = cache
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        self.on_error = on_error
        self.retry = retry
        if timeout_s is not None and timeout_s <= 0.0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.timeout_s = timeout_s
        self.faults = faults
        if (faults is not None and self.cache is not None
                and self.cache.faults is None):
            self.cache.faults = faults
        self._lock = threading.Lock()

    # -- graph construction -------------------------------------------------------

    def _specs(self, artifact_ids: Optional[Sequence[str]]) -> List[ArtifactSpec]:
        ids = list(FIGURE_IDS) if artifact_ids is None else list(artifact_ids)
        unknown = [fid for fid in ids if fid not in REGISTRY]
        if unknown:
            raise KeyError(f"unknown artifact(s) {unknown!r}")
        return [REGISTRY[fid] for fid in ids]

    def _resolve_resource(self, key: str) -> None:
        """Materialize one shared resource on the study (memoized there)."""
        if key == CORPUS:
            self.study.corpus  # already materialized at construction
        elif key.startswith("sweep:"):
            self.study._sweep(int(key.split(":", 1)[1]))
        else:
            raise KeyError(f"unknown resource {key!r}")

    # -- execution ----------------------------------------------------------------

    def run(self, artifact_ids: Optional[Sequence[str]] = None) -> RunReport:
        """Regenerate the requested artifacts (all of them by default)."""
        started = time.perf_counter()
        specs = self._specs(artifact_ids)
        results: Dict[str, "FigureResult"] = {}
        metrics: Dict[str, ArtifactMetric] = {}
        resource_seconds: Dict[str, float] = {}
        errors: List[str] = []
        failures = FailureLedger()

        fingerprint = self.study.fingerprint if self.cache is not None else ""
        to_build: List[ArtifactSpec] = []
        for spec in specs:
            if self.cache is not None:
                probe_started = time.perf_counter()
                cached = self.cache.get(fingerprint, spec.artifact_id)
                if cached is not None:
                    results[spec.artifact_id] = cached
                    metrics[spec.artifact_id] = ArtifactMetric(
                        spec.artifact_id,
                        time.perf_counter() - probe_started,
                        cache_hit=True,
                    )
                    continue
            to_build.append(spec)

        if to_build:
            self._build(to_build, fingerprint, results, metrics,
                        resource_seconds, errors, failures)

        ordered_ids = [spec.artifact_id for spec in specs]
        return RunReport(
            results={fid: results[fid] for fid in ordered_ids
                     if fid in results},
            metrics={fid: metrics[fid] for fid in ordered_ids
                     if fid in metrics},
            resource_seconds=resource_seconds,
            jobs=self.jobs,
            total_seconds=time.perf_counter() - started,
            cache_dir=str(self.cache.root) if self.cache is not None else None,
            errors=errors,
            failures=failures,
            on_error=self.on_error,
        )

    # -- node execution -----------------------------------------------------------

    def _site(self, node: str, build_ids: Set[str]) -> str:
        return f"builder.{node}" if node in build_ids else f"resource.{node}"

    def _run_node(self, node: str, build_ids: Set[str], fingerprint: str,
                  results: Dict[str, "FigureResult"],
                  metrics: Dict[str, ArtifactMetric],
                  resource_seconds: Dict[str, float]) -> Optional[_NodeFailure]:
        """Build one node with retry/timeout; never raises.

        Returns ``None`` on success, else the :class:`_NodeFailure`
        carrying the final exception and the attempt count — the
        scheduler decides whether that aborts the run or quarantines a
        subgraph.
        """
        site = self._site(node, build_ids)
        started = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            try:
                fire(site, self.faults)
                if node in build_ids:
                    builder = REGISTRY[node].bind(self.study)
                    result = run_with_timeout(builder, self.timeout_s, site)
                    elapsed = time.perf_counter() - started
                    if self.cache is not None:
                        self.cache.put(fingerprint, node, result)
                    with self._lock:
                        results[node] = result
                        metrics[node] = ArtifactMetric(
                            node, elapsed, cache_hit=False
                        )
                else:
                    run_with_timeout(
                        lambda: self._resolve_resource(node),
                        self.timeout_s, site,
                    )
                    with self._lock:
                        resource_seconds[node] = (
                            time.perf_counter() - started
                        )
                return None
            except Exception as exc:
                if (self.retry is not None and attempts < self.retry.attempts
                        and self.retry.retryable(exc)):
                    time.sleep(self.retry.delay_s(site, attempts))
                    continue
                return _NodeFailure(
                    node, exc, attempts, time.perf_counter() - started
                )

    def _register_failure(
        self,
        failure: _NodeFailure,
        errors: List[str],
        failures: FailureLedger,
        children: Dict[str, Set[str]],
        build_ids: Set[str],
        quarantined: Dict[str, str],
    ) -> Optional[BaseException]:
        """Record a node failure; returns the exception to raise, if any.

        In ``isolate`` mode the downstream closure of the failed node
        is quarantined (recorded in the ledger, skipped by the
        scheduler) and ``None`` comes back; in ``raise`` mode the
        original exception is returned for the scheduler to re-raise
        after draining.
        """
        with self._lock:
            errors.append(f"{failure.node}: {failure.error!r}")
            failures.add(failure_record(
                failure.node, failure.error, failure.attempts,
                failure.elapsed_s,
            ))
            if self.on_error == "raise":
                return failure.error
            # Quarantine every transitive dependent of the failed node.
            stack = [failure.node]
            while stack:
                current = stack.pop()
                for child in sorted(children.get(current, ())):
                    if child in quarantined or child == failure.node:
                        continue
                    quarantined[child] = failure.node
                    if child in build_ids:
                        failures.add(
                            quarantine_record(child, failure.node)
                        )
                    stack.append(child)
        return None

    # -- scheduling ---------------------------------------------------------------

    def _build(self, specs: List[ArtifactSpec], fingerprint: str,
               results: Dict[str, "FigureResult"],
               metrics: Dict[str, ArtifactMetric],
               resource_seconds: Dict[str, float],
               errors: List[str],
               failures: Optional[FailureLedger] = None) -> None:
        failures = failures if failures is not None else FailureLedger()
        build_ids = {spec.artifact_id for spec in specs}
        graph: Dict[str, Set[str]] = {}
        for spec in specs:
            graph[spec.artifact_id] = set(spec.depends)
            for resource in spec.depends:
                graph.setdefault(resource, set())
        # Reverse adjacency: node -> the nodes that depend on it.
        children: Dict[str, Set[str]] = {node: set() for node in graph}
        for node, depends in graph.items():
            for dependency in depends:
                children[dependency].add(node)
        quarantined: Dict[str, str] = {}

        def run_node(node: str) -> Optional[_NodeFailure]:
            return self._run_node(
                node, build_ids, fingerprint, results, metrics,
                resource_seconds,
            )

        sorter: TopologicalSorter = TopologicalSorter(graph)
        if self.jobs == 1:
            for node in sorter.static_order():
                if node in quarantined:
                    continue
                failure = run_node(node)
                if failure is None:
                    continue
                exc = self._register_failure(
                    failure, errors, failures, children, build_ids,
                    quarantined,
                )
                if exc is not None:
                    raise exc
            return

        sorter.prepare()
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            pending: Dict[Future, str] = {}
            abort: Optional[BaseException] = None
            while sorter.is_active() or pending:
                submitted_or_skipped = False
                for node in sorter.get_ready():
                    submitted_or_skipped = True
                    if node in quarantined:
                        sorter.done(node)
                    else:
                        pending[pool.submit(run_node, node)] = node
                if not pending:
                    if submitted_or_skipped:
                        continue  # skipping may have readied successors
                    break  # pragma: no cover - defensive
                done, _ = wait(
                    pending, timeout=_WAIT_TICK_S,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    node = pending.pop(future)
                    sorter.done(node)
                    failure = future.result(timeout=0)
                    if failure is not None:
                        exc = self._register_failure(
                            failure, errors, failures, children,
                            build_ids, quarantined,
                        )
                        if exc is not None:
                            abort = exc
                if abort is not None:
                    # Drain before re-raising: cancel what never
                    # started, wait out what is mid-build, so no worker
                    # mutates results/metrics after the raise.
                    for future in pending:
                        future.cancel()
                    if pending:
                        wait(list(pending), timeout=_DRAIN_TIMEOUT_S)
                    raise abort
