"""The study pipeline: one call per paper figure or table.

:class:`~repro.core.study.Study` owns a corpus (generated or supplied)
and exposes a ``figure(id)`` / ``run_all()`` API whose results carry
both the raw data series and a plain-text rendering.  The registry in
:mod:`repro.core.registry` maps every artifact of the paper (Figs.
1-21, Tables I-II, Eq. 2, and the scalar findings) to its builder.
"""

from repro.core.registry import FIGURE_IDS
from repro.core.study import FigureResult, Study

__all__ = ["FIGURE_IDS", "FigureResult", "Study"]
