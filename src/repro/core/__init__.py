"""The study pipeline: one call per paper figure or table.

:class:`~repro.core.study.Study` owns a corpus (generated or supplied)
and exposes a ``figure(id)`` / ``run_all()`` API whose results carry
both the raw data series and a plain-text rendering.  The declarative
registry in :mod:`repro.core.registry` maps every artifact of the
paper (Figs. 1-21, Tables I-II, Eq. 2, and the scalar findings) to an
:class:`~repro.core.registry.ArtifactSpec`; the execution engine in
:mod:`repro.core.executor` schedules those specs topologically across
a thread pool and, through :mod:`repro.core.cache`, serves repeat
builds from a content-addressed on-disk store.
"""

from repro.core.cache import ArtifactCache, CacheStats, ENGINE_VERSION
from repro.core.ensemble import (
    EnsembleResult,
    MetricSummary,
    SeedStatistics,
    run_ensemble,
    seed_statistics,
)
from repro.core.executor import ArtifactExecutor, ArtifactMetric, RunReport
from repro.core.registry import FIGURE_IDS, REGISTRY, ArtifactSpec, register
from repro.core.study import FigureResult, Study

__all__ = [
    "ENGINE_VERSION",
    "FIGURE_IDS",
    "REGISTRY",
    "ArtifactCache",
    "ArtifactExecutor",
    "ArtifactMetric",
    "ArtifactSpec",
    "CacheStats",
    "EnsembleResult",
    "FigureResult",
    "MetricSummary",
    "RunReport",
    "SeedStatistics",
    "Study",
    "register",
    "run_ensemble",
    "seed_statistics",
]
