"""Fault-tolerant execution primitives: taxonomy, retries, timeouts.

The execution layer (:mod:`repro.core.executor`, :mod:`repro.core.cache`,
:mod:`repro.core.ensemble`) used to be fail-fast: the first builder
exception aborted the whole run.  This module provides the vocabulary
and mechanics for graceful degradation instead:

* a structured error taxonomy rooted at :class:`ReproError`, so call
  sites can distinguish *transient* conditions (worth retrying) from
  *data*, *build*, and *cache* failures (not worth retrying);
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  **seeded** jitter, so a retried run sleeps the exact same schedule
  every time (determinism survives fault handling);
* :func:`run_with_timeout` — a per-call wall-clock budget;
* :class:`FailureRecord` / :class:`FailureLedger` — the structured
  account of what failed, how it was classified, how many attempts
  were made, and what got quarantined downstream, carried by a partial
  :class:`~repro.core.executor.RunReport` instead of an exception.

Everything here is deliberately dependency-free (no numpy, no other
``repro.core`` modules) so the cache, the executor, and the fault
harness can all import it without cycles.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


# -- error taxonomy ---------------------------------------------------------------


class ReproError(Exception):
    """Base of the structured error taxonomy of the execution layer."""


class TransientError(ReproError):
    """A condition expected to clear on retry (I/O hiccup, lost worker)."""


class DataError(ReproError):
    """Malformed or inconsistent input data; retrying cannot help."""


class BuildError(ReproError):
    """A builder produced an invalid result or raised; deterministic."""


class CacheError(ReproError):
    """The artifact cache store misbehaved (corrupt entry, bad I/O)."""


class BuildTimeout(TransientError):
    """A call exceeded its wall-clock budget (transient: load-dependent)."""

    def __init__(self, site: str, timeout_s: float):
        super().__init__(
            f"{site} exceeded its {timeout_s:g}s wall-clock budget"
        )
        self.site = site
        self.timeout_s = timeout_s


class DeadlineExceeded(TransientError):
    """A request outlived its caller-supplied deadline (transient:
    the same request under less load would have finished in time).

    Raised by the serve layer when a query's ``deadline_ms`` budget
    expires while it is queued, coalesced, or executing; the daemon
    answers it with ``504 Gateway Timeout``.
    """

    def __init__(self, site: str, deadline_ms: float):
        super().__init__(
            f"{site} missed its {deadline_ms:g}ms deadline"
        )
        self.site = site
        self.deadline_ms = deadline_ms


#: Taxonomy leaves in classification-priority order.  ``BuildTimeout``
#: is a ``TransientError``; subclass checks respect that.
TAXONOMY: Tuple[Type[ReproError], ...] = (
    TransientError,
    DataError,
    BuildError,
    CacheError,
)


def classify(error: BaseException) -> str:
    """The taxonomy bucket of an exception: transient/data/build/cache.

    Exceptions outside the taxonomy degrade sensibly: OS-level I/O
    errors classify as ``"transient"`` (the filesystem may recover),
    everything else as ``"build"`` (a builder raised something of its
    own).
    """
    for bucket in TAXONOMY:
        if isinstance(error, bucket):
            return bucket.__name__.replace("Error", "").lower()
    if isinstance(error, (OSError, TimeoutError)):
        return "transient"
    return "build"


def exception_chain(error: BaseException) -> Tuple[str, ...]:
    """The rendered ``__cause__``/``__context__`` chain, outermost first."""
    chain: List[str] = []
    seen: set = set()
    current: Optional[BaseException] = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return tuple(chain)


# -- deterministic retry ----------------------------------------------------------


def _unit_fraction(*parts: object) -> float:
    """A stable uniform-looking fraction in [0, 1) from hashed parts."""
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode())
    return int.from_bytes(digest.digest()[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry schedule for one execution site.

    ``attempts`` is the *total* number of tries (1 = no retries).
    Delay before retry ``k`` (1-based) is ``base_delay_s * backoff**(k-1)``
    scaled by a jitter factor in ``[1 - jitter, 1 + jitter]`` and capped
    at ``max_delay_s``.  The jitter is *seeded*: it derives from
    ``(seed, site, attempt)`` through a hash, so two runs with the same
    policy sleep the exact same schedule — retries never make a run
    nondeterministic, they only make it slower.

    ``retry_on`` lists the exception types worth retrying; the default
    covers the transient branch of the taxonomy plus raw ``OSError``.
    """

    attempts: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    backoff: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (TransientError, OSError)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_s < 0.0 or self.max_delay_s < 0.0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def retryable(self, error: BaseException) -> bool:
        """Whether this policy retries after ``error``."""
        return isinstance(error, self.retry_on)

    def delay_s(self, site: str, attempt: int) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = self.base_delay_s * self.backoff ** (attempt - 1)
        unit = _unit_fraction(self.seed, site, attempt)
        jittered = raw * (1.0 + self.jitter * (2.0 * unit - 1.0))
        return min(self.max_delay_s, jittered)

    def delays(self, site: str) -> Tuple[float, ...]:
        """The full deterministic sleep schedule for ``site``."""
        return tuple(
            self.delay_s(site, attempt)
            for attempt in range(1, self.attempts)
        )


@dataclass(frozen=True)
class Attempted:
    """Outcome of a successfully retried call."""

    value: object
    attempts: int
    elapsed_s: float


def call_with_retry(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    site: str = "call",
    sleep: Callable[[float], None] = time.sleep,
) -> Attempted:
    """Invoke ``fn`` under ``policy``; the last error re-raises as-is.

    Returns an :class:`Attempted` carrying the value, the number of
    tries consumed, and the elapsed wall time.  With no policy the call
    runs exactly once.
    """
    policy = policy or RetryPolicy(attempts=1)
    started = time.perf_counter()
    attempt = 0
    while True:
        attempt += 1
        try:
            value = fn()
        except Exception as error:
            if attempt < policy.attempts and policy.retryable(error):
                sleep(policy.delay_s(site, attempt))
                continue
            raise
        return Attempted(
            value=value,
            attempts=attempt,
            elapsed_s=time.perf_counter() - started,
        )


# -- wall-clock timeouts ----------------------------------------------------------


def run_with_timeout(
    fn: Callable[[], T],
    timeout_s: Optional[float],
    site: str = "call",
) -> T:
    """Run ``fn`` with a wall-clock budget; raise :class:`BuildTimeout`.

    With ``timeout_s=None`` the call runs inline with zero overhead.
    Otherwise the call runs on a daemon worker thread and the caller
    waits at most ``timeout_s`` seconds.  Python cannot kill a thread,
    so on timeout the overrunning call keeps executing in the
    background — its eventual result is discarded; the caller moves on
    and the executor quarantines/records the timeout like any other
    failure.
    """
    if timeout_s is None:
        return fn()
    if timeout_s <= 0.0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    outcome: Dict[str, object] = {}

    def target() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as error:  # re-raised in the caller below
            outcome["error"] = error

    worker = threading.Thread(target=target, daemon=True, name=f"budget:{site}")
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        raise BuildTimeout(site, timeout_s)
    if "error" in outcome:
        raise outcome["error"]  # type: ignore[misc]
    return outcome["value"]  # type: ignore[return-value]


# -- the failure ledger -----------------------------------------------------------


@dataclass(frozen=True)
class FailureRecord:
    """One failed or quarantined node of an isolate-mode run.

    A *root* failure carries the exception detail (type, taxonomy
    bucket, message, cause chain) plus how many attempts were made and
    how long they took.  A *quarantine* record marks a downstream node
    skipped because of a root failure; ``quarantined_by`` names that
    root.
    """

    artifact_id: str
    error_type: str
    taxonomy: str
    message: str
    chain: Tuple[str, ...] = ()
    attempts: int = 1
    elapsed_s: float = 0.0
    quarantined_by: Optional[str] = None

    @property
    def is_quarantine(self) -> bool:
        """Whether this node was skipped (vs. having failed itself)."""
        return self.quarantined_by is not None

    def signature(self) -> Tuple[object, ...]:
        """Everything reproducible about the record (elapsed excluded)."""
        return (
            self.artifact_id,
            self.error_type,
            self.taxonomy,
            self.message,
            self.chain,
            self.attempts,
            self.quarantined_by,
        )

    def to_dict(self) -> Dict[str, object]:
        """Serialize every field (including wall time) to a dict."""
        return {
            "artifact_id": self.artifact_id,
            "error_type": self.error_type,
            "taxonomy": self.taxonomy,
            "message": self.message,
            "chain": list(self.chain),
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
            "quarantined_by": self.quarantined_by,
        }


@dataclass
class FailureLedger:
    """The ordered account of failures in one engine run.

    Appended under the executor's lock; reading is lock-free.  Two runs
    of the same study with the same fault plan and seeds produce equal
    :meth:`signature` values (wall times are excluded), which is the
    determinism contract the fault-injection tests pin.
    """

    records: List[FailureRecord] = field(default_factory=list)

    def add(self, record: FailureRecord) -> None:
        """Append one failure or quarantine record."""
        self.records.append(record)

    def __iter__(self) -> Iterator[FailureRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    @property
    def root_ids(self) -> Tuple[str, ...]:
        """Nodes that failed themselves, in failure order."""
        return tuple(r.artifact_id for r in self.records if not r.is_quarantine)

    @property
    def quarantined_ids(self) -> Tuple[str, ...]:
        """Nodes skipped because an upstream dependency failed."""
        return tuple(r.artifact_id for r in self.records if r.is_quarantine)

    @property
    def failed_ids(self) -> Tuple[str, ...]:
        """Every node the run could not produce (roots + quarantined)."""
        return tuple(r.artifact_id for r in self.records)

    def signature(self) -> Tuple[Tuple[object, ...], ...]:
        """Order-independent reproducible fingerprint of the ledger."""
        return tuple(sorted(r.signature() for r in self.records))

    def to_dict(self) -> Dict[str, object]:
        """Serialize the ledger as a list of record dicts."""
        return {"records": [r.to_dict() for r in self.records]}

    def render(self) -> str:
        """A terminal summary, one line per record."""
        if not self.records:
            return "failure ledger: empty"
        lines = [f"failure ledger: {len(self.records)} record(s)"]
        for record in self.records:
            if record.is_quarantine:
                lines.append(
                    f"  {record.artifact_id}: quarantined "
                    f"(upstream {record.quarantined_by} failed)"
                )
            else:
                lines.append(
                    f"  {record.artifact_id}: {record.error_type} "
                    f"[{record.taxonomy}] after {record.attempts} attempt(s) "
                    f"in {record.elapsed_s * 1000.0:.1f} ms -- {record.message}"
                )
        return "\n".join(lines)


def failure_record(
    artifact_id: str,
    error: BaseException,
    attempts: int,
    elapsed_s: float,
) -> FailureRecord:
    """A root :class:`FailureRecord` from a caught exception."""
    return FailureRecord(
        artifact_id=artifact_id,
        error_type=type(error).__name__,
        taxonomy=classify(error),
        message=str(error),
        chain=exception_chain(error),
        attempts=attempts,
        elapsed_s=elapsed_s,
    )


def quarantine_record(artifact_id: str, root_id: str) -> FailureRecord:
    """A quarantine :class:`FailureRecord` for a skipped downstream node."""
    return FailureRecord(
        artifact_id=artifact_id,
        error_type="Quarantined",
        taxonomy="quarantine",
        message=f"not built: upstream {root_id} failed",
        attempts=0,
        quarantined_by=root_id,
    )
