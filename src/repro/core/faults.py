"""Deterministic fault injection for the execution layer.

A :class:`FaultPlan` names *injection sites* and attaches seeded,
counted triggers to them, so every degradation path in the engine —
retry, quarantine, cache-off fallback, ensemble seed re-runs — can be
exercised by tests and CI instead of waiting for production to fail
interestingly.  The threaded sites are:

==================  ============================================================
site                where it fires
==================  ============================================================
``builder.<id>``    just before the registry builder for artifact ``<id>`` runs
``resource.<key>``  before a shared resource (``corpus``, ``sweep:N``) resolves
``cache.read``      inside :meth:`ArtifactCache.get <repro.core.cache.ArtifactCache.get>`
``cache.write``     inside :meth:`ArtifactCache.put <repro.core.cache.ArtifactCache.put>`
``ensemble.worker``  on dispatch of one ensemble seed worker
``shard.worker``    on dispatch of one sharded replay step worker
``dataset.io``      inside :func:`load_corpus <repro.dataset.io.load_corpus>` / ``save_corpus``
``serve.handler``   at the top of the daemon's query handler (event loop)
``serve.engine``    just before the serve layer runs ``execute()`` for a query
``serve.worker``    on dispatch to a serve engine worker (the claimed budget
                    kills that worker process mid-query)
``serve.io``        before the daemon writes a response to a connection
==================  ============================================================

Site patterns are matched with :mod:`fnmatch` globs, so a plan can say
``builder.fig2*`` or just ``builder.*``.  Trigger modes:

* ``fail`` — raise on every match;
* ``fail-once`` / ``fail-n`` — raise for the first (N) matches only,
  counted process-wide under a lock, then stand down;
* ``latency`` — sleep ``delay_s`` before letting the call proceed;
* ``corrupt`` — tell the call site to corrupt its payload (the cache
  treats the entry as damaged, evicts, and rebuilds).

Everything is deterministic: counters make fail-once/fail-N exact, and
the plan carries a ``seed`` so anything derived from randomness stays
pinned.  Plans round-trip through JSON (``FaultPlan.load`` /
``dumps``) and are exposed on the CLI as
``python -m repro run-all --inject PLAN.json``.
"""

from __future__ import annotations

import errno
import fnmatch
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.resilience import (
    BuildError,
    CacheError,
    DataError,
    TransientError,
)

#: Recognized trigger modes.
MODES = ("fail", "fail-once", "fail-n", "latency", "corrupt")

#: Error kinds a failing trigger can raise, name -> constructor.
ERROR_KINDS = ("transient", "data", "build", "cache", "os")

#: The documented injection sites (globs in plans may match these).
KNOWN_SITES = (
    "builder.<artifact id>",
    "resource.<resource key>",
    "cache.read",
    "cache.write",
    "ensemble.worker",
    "shard.worker",
    "dataset.io",
    "serve.handler",
    "serve.engine",
    "serve.worker",
    "serve.io",
)


def _build_exception(kind: str, site: str, message: str) -> BaseException:
    detail = message or f"injected {kind} fault at {site}"
    if kind == "transient":
        return TransientError(detail)
    if kind == "data":
        return DataError(detail)
    if kind == "build":
        return BuildError(detail)
    if kind == "cache":
        return CacheError(detail)
    if kind == "os":
        return OSError(errno.ENOSPC, f"{detail} (simulated ENOSPC)")
    raise ValueError(f"unknown fault error kind {kind!r}")


@dataclass(frozen=True)
class FaultSpec:
    """One named trigger of a :class:`FaultPlan`.

    ``site`` is an fnmatch glob over injection-site names.  ``times``
    bounds how often the trigger fires (``fail-once`` pins it to 1;
    ``None`` means unbounded).  ``error`` picks the exception kind for
    failing modes; ``delay_s`` is the added latency for ``latency``
    mode.
    """

    site: str
    mode: str = "fail-once"
    error: str = "transient"
    times: Optional[int] = None
    delay_s: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault site must be non-empty")
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; choose from {MODES}"
            )
        if self.error not in ERROR_KINDS:
            raise ValueError(
                f"unknown fault error kind {self.error!r}; "
                f"choose from {ERROR_KINDS}"
            )
        if self.mode == "fail-once":
            object.__setattr__(self, "times", 1)
        if self.mode == "fail-n" and (self.times is None or self.times < 1):
            raise ValueError("fail-n faults need times >= 1")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay_s < 0.0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.mode == "latency" and self.delay_s == 0.0:
            raise ValueError("latency faults need a positive delay_s")

    @property
    def raises(self) -> bool:
        """Whether this trigger raises (vs. delaying or corrupting)."""
        return self.mode in ("fail", "fail-once", "fail-n")

    def build_error(self, site: str) -> BaseException:
        """The exception instance this trigger injects at ``site``."""
        return _build_exception(self.error, site, self.message)

    def matches(self, site: str) -> bool:
        """Glob-match this trigger against a concrete site name."""
        return fnmatch.fnmatchcase(site, self.site)

    def to_dict(self) -> Dict[str, object]:
        """Serialize to the JSON plan format, omitting default fields."""
        entry: Dict[str, object] = {"site": self.site, "mode": self.mode}
        if self.raises:
            entry["error"] = self.error
        if self.times is not None and self.mode != "fail-once":
            entry["times"] = self.times
        if self.mode == "latency":
            entry["delay_s"] = self.delay_s
        if self.message:
            entry["message"] = self.message
        return entry

    @classmethod
    def from_dict(cls, entry: Dict[str, object]) -> "FaultSpec":
        known = {"site", "mode", "error", "times", "delay_s", "message"}
        unknown = set(entry) - known
        if unknown:
            raise ValueError(
                f"unknown fault spec key(s) {sorted(unknown)!r}; "
                f"expected a subset of {sorted(known)!r}"
            )
        if "site" not in entry:
            raise ValueError("fault spec needs a 'site'")
        return cls(
            site=str(entry["site"]),
            mode=str(entry.get("mode", "fail-once")),
            error=str(entry.get("error", "transient")),
            times=(None if entry.get("times") is None
                   else int(entry["times"])),  # type: ignore[arg-type]
            delay_s=float(entry.get("delay_s", 0.0)),  # type: ignore[arg-type]
            message=str(entry.get("message", "")),
        )


class FaultPlan:
    """A set of :class:`FaultSpec` triggers with process-wide counters.

    The plan is the single source of truth about what has fired:
    ``fired(site)`` and :attr:`log` expose the history, ``reset()``
    rearms every counter.  Counter updates are lock-protected so the
    executor's thread pool sees exact fail-once/fail-N semantics.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._fired: Dict[int, int] = {}
        self.log: List[Tuple[str, str]] = []

    # -- persistence -------------------------------------------------------------

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "FaultPlan":
        """Build a plan from a ``{"seed": ..., "faults": [...]}`` dict."""
        faults = document.get("faults", [])
        if not isinstance(faults, list):
            raise ValueError("'faults' must be a list of fault specs")
        specs = [FaultSpec.from_dict(entry) for entry in faults]
        return cls(specs, seed=int(document.get("seed", 0)))  # type: ignore[arg-type]

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        """Parse a plan from its JSON string form."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Read a plan from a JSON file (the ``--inject`` format)."""
        return cls.loads(Path(path).read_text())

    def to_dict(self) -> Dict[str, object]:
        """Serialize the plan (specs + seed, not counters) to a dict."""
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    def dumps(self) -> str:
        """Serialize the plan to the ``--inject`` JSON format."""
        return json.dumps(self.to_dict(), indent=2)

    # -- pickling (ensemble workers receive decisions, not counters) -------------

    def __getstate__(self) -> Dict[str, object]:
        return {
            "specs": self.specs,
            "seed": self.seed,
            "_fired": dict(self._fired),
            "log": list(self.log),
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.specs = state["specs"]  # type: ignore[assignment]
        self.seed = state["seed"]  # type: ignore[assignment]
        self._fired = dict(state["_fired"])  # type: ignore[arg-type]
        self.log = list(state["log"])  # type: ignore[arg-type]
        self._lock = threading.Lock()

    # -- trigger state -----------------------------------------------------------

    def reset(self) -> None:
        """Rearm every trigger (counters and history cleared)."""
        with self._lock:
            self._fired.clear()
            self.log.clear()

    def fired(self, site: Optional[str] = None) -> int:
        """How many triggers have fired (optionally at one site)."""
        with self._lock:
            if site is None:
                return len(self.log)
            return sum(1 for fired_site, _ in self.log if fired_site == site)

    def _consume(self, site: str, modes: Tuple[str, ...]) -> List[FaultSpec]:
        """Atomically claim budget from matching triggers of ``modes``."""
        claimed: List[FaultSpec] = []
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.mode not in modes or not spec.matches(site):
                    continue
                count = self._fired.get(index, 0)
                if spec.times is not None and count >= spec.times:
                    continue
                self._fired[index] = count + 1
                self.log.append((site, spec.mode))
                claimed.append(spec)
        return claimed

    def fire(self, site: str) -> None:
        """Apply latency and failure triggers for ``site``.

        Sleeps for every matching armed latency trigger, then raises
        the first matching armed failure trigger's exception.  Corrupt
        triggers are left for :meth:`should_corrupt` (the call site
        decides what "corrupt" means for its payload).
        """
        claimed = self._consume(site, ("latency", "fail", "fail-once", "fail-n"))
        for spec in claimed:
            if spec.mode == "latency":
                time.sleep(spec.delay_s)
        for spec in claimed:
            if spec.raises:
                raise spec.build_error(site)

    async def fire_async(self, site: str) -> None:
        """:meth:`fire`, but latency triggers sleep on the event loop.

        The serve daemon's handler sites run *on* the asyncio loop; a
        ``time.sleep`` there would stall every connection, so latency
        budget claimed at such a site is spent with ``asyncio.sleep``
        instead.  Failure semantics are identical to :meth:`fire`.
        """
        import asyncio

        claimed = self._consume(site, ("latency", "fail", "fail-once", "fail-n"))
        for spec in claimed:
            if spec.mode == "latency":
                await asyncio.sleep(spec.delay_s)
        for spec in claimed:
            if spec.raises:
                raise spec.build_error(site)

    def take(self, site: str) -> bool:
        """Claim one failure trigger without raising (dispatch decision).

        The ensemble parent uses this to decide — deterministically and
        in seed order — which worker dispatches carry an injected
        failure, since counters cannot be shared with subprocesses.
        """
        return any(
            spec.raises
            for spec in self._consume(site, ("fail", "fail-once", "fail-n"))
        )

    def should_corrupt(self, site: str) -> bool:
        """Claim one corrupt trigger for ``site`` (payload damage)."""
        return bool(self._consume(site, ("corrupt",)))


# -- ambient plan ----------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = threading.Lock()


class _Installed:
    """Context manager produced by :func:`install`."""

    def __init__(self, plan: Optional[FaultPlan]):
        self._plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> Optional[FaultPlan]:
        global _ACTIVE
        with _ACTIVE_LOCK:
            self._previous = _ACTIVE
            _ACTIVE = self._plan
        return self._plan

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        with _ACTIVE_LOCK:
            _ACTIVE = self._previous


def install(plan: Optional[FaultPlan]) -> _Installed:
    """Install ``plan`` as the ambient plan for a ``with`` block.

    Sites that cannot receive a plan argument (e.g. ``dataset.io``
    free functions) consult the ambient plan through :func:`fire`.
    """
    return _Installed(plan)


def active_plan() -> Optional[FaultPlan]:
    """The currently installed ambient plan, if any."""
    return _ACTIVE


def fire(site: str, plan: Optional[FaultPlan] = None) -> None:
    """Fire ``site`` on ``plan`` or the ambient plan; no-op without one."""
    plan = plan if plan is not None else _ACTIVE
    if plan is not None:
        plan.fire(site)


async def fire_async(site: str, plan: Optional[FaultPlan] = None) -> None:
    """Async :func:`fire` against ``plan`` or the ambient plan."""
    plan = plan if plan is not None else _ACTIVE
    if plan is not None:
        await plan.fire_async(site)


def should_corrupt(site: str, plan: Optional[FaultPlan] = None) -> bool:
    """Corrupt-trigger check against ``plan`` or the ambient plan."""
    plan = plan if plan is not None else _ACTIVE
    return plan.should_corrupt(site) if plan is not None else False


def iter_sites(plan: FaultPlan) -> Iterator[str]:
    """The site globs of a plan, in spec order (for rendering/docs)."""
    for spec in plan.specs:
        yield spec.site
