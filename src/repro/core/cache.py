"""Content-addressed on-disk cache for regenerated artifacts.

Every cache entry is one pickled :class:`~repro.core.study.FigureResult`
stored under ``.repro_cache/`` (or any directory you point the cache
at).  The entry key is a sha256 over the triple

    (corpus fingerprint, artifact id, engine version)

so a warm :meth:`Study.run_all <repro.core.study.Study.run_all>` is
near-instant, editing a single figure builder (and bumping
:data:`ENGINE_VERSION`) only invalidates that build logic, and any
change to the corpus — a different seed, an edited record — misses the
cache automatically through the fingerprint.

The cache is defensive: a corrupted, truncated, or stale-format entry
is treated as a miss, deleted, and transparently recomputed by the
executor.  Writes go through a temp file + atomic rename so a crashed
writer can never leave a half-written entry behind.  Store-level I/O
failures (a full disk, a permission change under a running engine)
never crash a run either: reads degrade to misses, and after
:data:`MAX_WRITE_FAILURES` consecutive write errors the cache disables
itself with a warning and the run continues cache-off.  The
``cache.read`` / ``cache.write`` fault-injection sites
(:mod:`repro.core.faults`) exercise exactly these paths.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

from repro.core.faults import FaultPlan, fire, should_corrupt
from repro.core.resilience import CacheError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.study import FigureResult

#: Version of the artifact-build logic.  Bump whenever a builder's
#: output changes so stale entries stop matching.
ENGINE_VERSION = "2"

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Consecutive write failures tolerated before the store disables
#: itself for the rest of the process (ENOSPC rarely clears mid-run).
MAX_WRITE_FAILURES = 3


def cache_key(fingerprint: str, artifact_id: str,
              engine_version: str = ENGINE_VERSION) -> str:
    """The hex entry key for (corpus fingerprint, artifact, engine)."""
    digest = hashlib.sha256()
    digest.update(fingerprint.encode())
    digest.update(b"|")
    digest.update(artifact_id.encode())
    digest.update(b"|")
    digest.update(engine_version.encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters for one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    write_failures: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        """Total probes (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from disk (0.0 with no probes)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ArtifactCache:
    """Content-addressed pickle store for :class:`FigureResult` entries.

    Thread-safe: the executor's pool probes and writes concurrently,
    so every stats mutation and the disable latch sit under one lock.
    ``faults`` optionally threads a :class:`~repro.core.faults.FaultPlan`
    through the ``cache.read``/``cache.write`` injection sites (the
    ambient plan, if installed, applies even without it).
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 engine_version: str = ENGINE_VERSION,
                 faults: Optional[FaultPlan] = None):
        self.root = Path(root)
        self.engine_version = engine_version
        self.stats = CacheStats()
        self.faults = faults
        self.disabled = False
        self._lock = threading.Lock()

    def path_for(self, fingerprint: str, artifact_id: str) -> Path:
        """The on-disk path an entry would occupy."""
        key = cache_key(fingerprint, artifact_id, self.engine_version)
        return self.root / f"{key}.pkl"

    def _record_miss(self, note: Optional[str] = None) -> None:
        with self._lock:
            self.stats.misses += 1
            if note is not None:
                self.stats.errors.append(note)

    def get(self, fingerprint: str, artifact_id: str) -> Optional[object]:
        """The cached result, or ``None`` on miss/corruption/I/O error.

        Entries are either ``FigureResult`` artifacts (written by the
        executor) or pickled :class:`repro.api.result.QueryResult`
        envelopes (written by the query dispatch layer); either must
        prove it belongs to the requested key or it is treated as
        corruption.  A corrupt or unreadable entry is evicted so the
        next write replaces it cleanly; a store-level I/O failure
        (permissions, injected ``cache.read`` fault) degrades to a
        plain miss.
        """
        from repro.core.study import FigureResult

        if self.disabled:
            self._record_miss()
            return None
        path = self.path_for(fingerprint, artifact_id)
        try:
            fire("cache.read", self.faults)
        except (CacheError, OSError) as exc:
            self._record_miss(f"{artifact_id}: read fault {exc!r}")
            return None
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self._record_miss()
            return None
        except Exception as exc:  # corrupted/truncated/stale pickle, EIO
            self._record_miss(f"{artifact_id}: {exc!r}")
            self._evict(path)
            return None
        if should_corrupt("cache.read", self.faults):
            self._record_miss(f"{artifact_id}: injected payload corruption")
            self._evict(path)
            return None
        if not self._payload_matches(result, fingerprint, artifact_id, FigureResult):
            self._record_miss(f"{artifact_id}: entry payload mismatch")
            self._evict(path)
            return None
        with self._lock:
            self.stats.hits += 1
        return result

    def _payload_matches(self, result: object, fingerprint: str,
                         artifact_id: str, figure_type: type) -> bool:
        """Whether a loaded entry proves it belongs to the given key."""
        if isinstance(result, figure_type):
            return result.figure_id == artifact_id
        from repro.api.result import QueryResult

        if isinstance(result, QueryResult):
            expected = cache_key(fingerprint, artifact_id, self.engine_version)
            return result.provenance.spec_key == expected
        return False

    def put(self, fingerprint: str, artifact_id: str,
            result: object) -> Optional[Path]:
        """Persist one result atomically; returns the entry path.

        Never raises on store-level I/O failure: a full disk or revoked
        permission records the error, counts toward the
        :data:`MAX_WRITE_FAILURES` disable latch, and returns ``None``
        — the engine keeps running, merely uncached.
        """
        if self.disabled:
            return None
        path = self.path_for(fingerprint, artifact_id)
        try:
            fire("cache.write", self.faults)
            self.root.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(
                dir=str(self.root), suffix=".tmp"
            )
        except (CacheError, OSError) as exc:
            self._note_write_failure(artifact_id, exc)
            return None
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(result, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException as exc:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            if isinstance(exc, (CacheError, OSError)):
                self._note_write_failure(artifact_id, exc)
                return None
            raise  # non-I/O failures (e.g. unpicklable result) are bugs
        with self._lock:
            self.stats.writes += 1
            self.stats.write_failures = 0  # healthy write resets the latch
        return path

    def _note_write_failure(self, artifact_id: str, error: BaseException) -> None:
        """Count a write error; disable the store once they persist."""
        with self._lock:
            self.stats.write_failures += 1
            self.stats.errors.append(f"{artifact_id}: write fault {error!r}")
            if self.stats.write_failures < MAX_WRITE_FAILURES or self.disabled:
                return
            self.disabled = True
        warnings.warn(
            f"artifact cache at {self.root} disabled after "
            f"{MAX_WRITE_FAILURES} consecutive write failures "
            f"(last: {error!r}); continuing cache-off",
            RuntimeWarning,
            stacklevel=3,
        )

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
            with self._lock:
                self.stats.evictions += 1
        except OSError:  # pragma: no cover - concurrent eviction
            pass

    def entries(self) -> List[Path]:
        """Every entry file currently in the store."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def size_bytes(self) -> int:
        """Total bytes held by the store."""
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent eviction
                pass
        return removed
