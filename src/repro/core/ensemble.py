"""Multi-seed ensemble: how stable are the headline numbers?

The paper's findings -- the EP trend, the Eq. 2 fit
``EP = 1.2969 * exp(k * idle)`` with R^2 = 0.892, and the headline
correlations -- are computed from one 477-server corpus.  The
reproduction's corpus is synthesized from a seed, so the natural
robustness question is: how much do those statistics move when the
seed does?

:func:`run_ensemble` generates N seeded corpora, recomputes the
headline statistics per seed (:func:`seed_statistics`), and summarizes
every scalar across seeds as mean / sample std / normal-approximation
95% confidence interval.  A process pool fans the per-seed work out
across cores; each seed's computation is self-contained and pure, so
serial and parallel runs return exactly equal results (the per-seed
floating-point work is identical, only the scheduling differs).

The pool is hardened: a crashed worker (``BrokenProcessPool``) loses
only its in-flight seeds, which are re-run on a fresh pool a bounded
number of times before the engine degrades to serial execution with a
warning; a seed whose worker *raises* (rather than dies) is retried up
to ``seed_retries`` times.  The ``ensemble.worker`` fault-injection
site (:mod:`repro.core.faults`) drives both paths deterministically:
the parent claims trigger budget at dispatch time, in seed order, so
serial and parallel runs inject the same failures.
"""

from __future__ import annotations

import math
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.regression_study import ep_score_correlation, idle_regression
from repro.analysis.temporal import yearly_trend
from repro.core.faults import FaultPlan, active_plan
from repro.core.resilience import TransientError
from repro.dataset.synthesis import generate_corpus
from repro.metrics.regression import linear_fit

#: Number of seeds when the caller only says "run an ensemble".
DEFAULT_ENSEMBLE_SIZE = 5

#: Bounded-wait tick for the worker pool (keeps every wait timed).
_WAIT_TICK_S = 0.25


@dataclass(frozen=True)
class SeedStatistics:
    """The headline statistics of one seeded corpus."""

    seed: int
    servers: int
    ep_mean: float
    ep_median: float
    ee_mean: float
    ep_trend_slope: float
    ee_trend_slope: float
    eq2_amplitude: float
    eq2_rate: float
    eq2_r_squared: float
    corr_ep_idle: float
    corr_ep_score: float
    ep_by_year: Dict[int, float]
    ee_by_year: Dict[int, float]


@dataclass(frozen=True)
class MetricSummary:
    """Across-seed distribution of one headline scalar."""

    name: str
    mean: float
    std: float
    ci_low: float
    ci_high: float
    values: Tuple[float, ...]

    @property
    def ci_half_width(self) -> float:
        return 0.5 * (self.ci_high - self.ci_low)


#: The SeedStatistics fields summarized across seeds, in report order.
SUMMARY_FIELDS: Tuple[str, ...] = (
    "ep_mean",
    "ep_median",
    "ee_mean",
    "ep_trend_slope",
    "ee_trend_slope",
    "eq2_amplitude",
    "eq2_rate",
    "eq2_r_squared",
    "corr_ep_idle",
    "corr_ep_score",
)


@dataclass(frozen=True)
class EnsembleResult:
    """Per-seed statistics plus across-seed summaries."""

    seeds: Tuple[int, ...]
    per_seed: Tuple[SeedStatistics, ...]
    summaries: Dict[str, MetricSummary]

    def summary(self, name: str) -> MetricSummary:
        """The across-seed summary of one :data:`SUMMARY_FIELDS` metric."""
        if name not in self.summaries:
            raise KeyError(f"unknown ensemble metric {name!r}")
        return self.summaries[name]

    def render(self) -> str:
        """A terminal table of the across-seed summaries."""
        from repro.viz.tables import format_table

        rows = [
            [
                summary.name,
                summary.mean,
                summary.std,
                f"[{summary.ci_low:.4f}, {summary.ci_high:.4f}]",
            ]
            for summary in self.summaries.values()
        ]
        return format_table(
            ["metric", "mean", "std", "95% CI"],
            rows,
            title=f"ensemble over {len(self.seeds)} seeds "
            f"({self.seeds[0]}..{self.seeds[-1]})",
            float_format="{:.4f}",
        )


def seed_statistics(seed: int, structural_effects: bool = True) -> SeedStatistics:
    """Generate the corpus for one seed and recompute the headlines."""
    corpus = generate_corpus(seed, structural_effects=structural_effects)
    regression = idle_regression(corpus)
    eps = corpus.eps()

    ep_trend = yearly_trend(corpus, "ep", "hw")
    ee_trend = yearly_trend(corpus, "score", "hw")
    ep_by_year = {year: ep_trend.by_year[year].mean for year in ep_trend.years()}
    ee_by_year = {year: ee_trend.by_year[year].mean for year in ee_trend.years()}

    return SeedStatistics(
        seed=seed,
        servers=len(corpus),
        ep_mean=float(np.mean(eps)),
        ep_median=float(np.median(eps)),
        ee_mean=float(np.mean(corpus.scores())),
        ep_trend_slope=linear_fit(
            list(ep_by_year.keys()), list(ep_by_year.values())
        ).slope,
        ee_trend_slope=linear_fit(
            list(ee_by_year.keys()), list(ee_by_year.values())
        ).slope,
        eq2_amplitude=regression.fit.amplitude,
        eq2_rate=regression.fit.rate,
        eq2_r_squared=regression.fit.r_squared,
        corr_ep_idle=regression.correlation,
        corr_ep_score=ep_score_correlation(corpus),
        ep_by_year=ep_by_year,
        ee_by_year=ee_by_year,
    )


def _seed_worker(
    seed: int, structural_effects: bool, inject: bool
) -> SeedStatistics:
    """Pool-side wrapper: one seed's statistics, or an injected fault."""
    if inject:
        raise TransientError(
            f"injected ensemble.worker fault for seed {seed}"
        )
    return seed_statistics(seed, structural_effects=structural_effects)


def _summarize(name: str, values: Sequence[float]) -> MetricSummary:
    data = np.asarray(values, dtype=float)
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    half = 1.96 * std / math.sqrt(data.size) if data.size > 1 else 0.0
    return MetricSummary(
        name=name,
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        values=tuple(float(v) for v in data),
    )


def resolve_seeds(
    seeds: Union[int, Sequence[int]], base_seed: int = 2016
) -> Tuple[int, ...]:
    """Normalize an ensemble-size-or-seed-list argument.

    An integer asks for that many consecutive seeds starting at
    ``base_seed``; a sequence is used as given (order preserved).
    """
    if isinstance(seeds, int):
        if seeds <= 0:
            raise ValueError("ensemble size must be positive")
        return tuple(range(base_seed, base_seed + seeds))
    resolved = tuple(int(seed) for seed in seeds)
    if not resolved:
        raise ValueError("an ensemble needs at least one seed")
    if len(set(resolved)) != len(resolved):
        raise ValueError("ensemble seeds must be distinct")
    return resolved


def _pool_round(
    jobs: int,
    pending: Sequence[int],
    structural_effects: bool,
    injections: Dict[int, bool],
) -> Tuple[Dict[int, SeedStatistics], List[Tuple[int, BaseException]], bool]:
    """One process-pool pass over ``pending`` seeds.

    Returns (completed, worker-raised failures, pool-broke flag).
    Seeds lost to a broken pool appear in neither list — they carry no
    blame and are re-dispatched by the caller.
    """
    completed: Dict[int, SeedStatistics] = {}
    failed: List[Tuple[int, BaseException]] = []
    broke = False
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures: Dict[Future, int] = {
                pool.submit(
                    _seed_worker, seed, structural_effects,
                    injections.get(seed, False),
                ): seed
                for seed in pending
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, timeout=_WAIT_TICK_S)
                for future in done:
                    seed = futures[future]
                    try:
                        completed[seed] = future.result(timeout=0)
                    except BrokenProcessPool:
                        broke = True
                    except Exception as exc:
                        failed.append((seed, exc))
    except BrokenProcessPool:  # pool died while submitting/joining
        broke = True
    return completed, failed, broke


def run_ensemble(
    seeds: Union[int, Sequence[int]] = DEFAULT_ENSEMBLE_SIZE,
    jobs: int = 1,
    base_seed: int = 2016,
    structural_effects: bool = True,
    faults: Optional[FaultPlan] = None,
    seed_retries: int = 1,
    pool_restarts: int = 1,
) -> EnsembleResult:
    """Compute per-seed headline statistics and across-seed summaries.

    ``seeds`` is either an ensemble size (consecutive seeds from
    ``base_seed``) or an explicit seed sequence.  ``jobs`` > 1 fans the
    per-seed corpus generation and analysis out over a process pool;
    results are returned in seed order either way, and parallel output
    equals serial output exactly.

    Failure handling: a worker that *raises* is retried for that seed
    up to ``seed_retries`` more times (then the error propagates); a
    pool that *breaks* (crashed worker process) is restarted up to
    ``pool_restarts`` times for the lost seeds only, after which the
    remaining seeds run serially under a ``RuntimeWarning``.  With a
    ``faults`` plan (or an installed ambient plan), the
    ``ensemble.worker`` site claims trigger budget at dispatch time in
    seed order, keeping injection deterministic across scheduling
    modes.
    """
    if jobs < 1:
        raise ValueError(
            f"jobs must be >= 1, got {jobs} (1 = serial execution)"
        )
    if seed_retries < 0 or pool_restarts < 0:
        raise ValueError("seed_retries and pool_restarts must be >= 0")
    resolved = resolve_seeds(seeds, base_seed=base_seed)
    plan = faults if faults is not None else active_plan()
    per_seed_map: Dict[int, SeedStatistics] = {}
    budget = {seed: 1 + seed_retries for seed in resolved}

    def dispatch_injection(seed: int) -> bool:
        return plan.take("ensemble.worker") if plan is not None else False

    def run_serially(pending: Sequence[int]) -> None:
        for seed in pending:
            while True:
                budget[seed] -= 1
                try:
                    per_seed_map[seed] = _seed_worker(
                        seed, structural_effects, dispatch_injection(seed)
                    )
                    break
                except Exception:
                    if budget[seed] <= 0:
                        raise

    use_pool = jobs > 1 and len(resolved) > 1
    pending = list(resolved)
    restarts = 0
    while pending:
        if not use_pool:
            run_serially(pending)
            pending = []
            break
        injections = {seed: dispatch_injection(seed) for seed in pending}
        completed, failed, broke = _pool_round(
            jobs, pending, structural_effects, injections
        )
        per_seed_map.update(completed)
        for seed, error in failed:
            budget[seed] -= 1
            if budget[seed] <= 0:
                raise error
        if broke:
            restarts += 1
            if restarts > pool_restarts:
                warnings.warn(
                    "ensemble process pool broke "
                    f"{restarts} time(s); degrading the remaining seeds "
                    "to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                use_pool = False
        pending = [seed for seed in resolved if seed not in per_seed_map]

    per_seed = tuple(per_seed_map[seed] for seed in resolved)
    summaries = {
        name: _summarize(name, [getattr(stats, name) for stats in per_seed])
        for name in SUMMARY_FIELDS
    }
    return EnsembleResult(seeds=resolved, per_seed=per_seed, summaries=summaries)
