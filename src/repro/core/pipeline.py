"""Report generation: the paper-vs-measured experiment record.

``build_experiments_report`` regenerates every artifact and renders a
markdown document pairing each of the paper's published numbers with
the value this reproduction measures; ``python -m repro.core.pipeline``
writes it to ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from repro.core.registry import REGISTRY
from repro.core.study import Study

#: (artifact id, claim, paper value, extractor) rows; the extractor
#: pulls the measured value out of the artifact's series.
_CLAIMS = [
    ("fig1", "exemplar 2016 server EP", "1.02",
     lambda s: f"{s['ep']:.2f}"),
    ("fig1", "exemplar 2016 server overall score", "12212",
     lambda s: f"{s['score']:.0f}"),
    ("fig3", "average EP in 2005", "0.30",
     lambda s: f"{dict(zip(s['years'], s['avg']))[2005]:.2f}"),
    ("fig3", "average EP in 2012", "0.82",
     lambda s: f"{dict(zip(s['years'], s['avg']))[2012]:.2f}"),
    ("fig3", "average EP in 2016", "0.84",
     lambda s: f"{dict(zip(s['years'], s['avg']))[2016]:.2f}"),
    ("fig3", "minimum EP (2008)", "0.18",
     lambda s: f"{min(s['min']):.2f}"),
    ("fig3", "maximum EP (2012)", "1.05",
     lambda s: f"{max(s['max']):.2f}"),
    ("fig3", "avg EP step 2008->2009", "+48.65%",
     lambda s: f"{s['step_changes']['avg_2008_2009']:+.1%}"),
    ("fig3", "avg EP step 2011->2012", "+24.24%",
     lambda s: f"{s['step_changes']['avg_2011_2012']:+.1%}"),
    ("fig5", "EP share in [0.6, 0.7)", "25.21%",
     lambda s: f"{s['landmarks']['share_06_07']:.2%}"),
    ("fig5", "EP share in [0.8, 0.9)", "17.44%",
     lambda s: f"{s['landmarks']['share_08_09']:.2%}"),
    ("fig5", "EP share below 1.0", "99.58%",
     lambda s: f"{s['landmarks']['share_below_1']:.2%}"),
    ("fig6", "Nehalem-family servers", "152",
     lambda s: str(s["Nehalem"]["count"])),
    ("fig6", "Sandy Bridge-family servers", "137",
     lambda s: str(s["Sandy Bridge"]["count"])),
    ("fig7", "Sandy Bridge EN average EP", "0.90",
     lambda s: f"{s['codenames']['Sandy Bridge EN']['avg_ep']:.2f}"),
    ("fig7", "Haswell average EP", "0.81",
     lambda s: f"{s['codenames']['Haswell']['avg_ep']:.2f}"),
    ("fig7", "Netburst average EP", "0.29",
     lambda s: f"{s['codenames']['Netburst']['avg_ep']:.2f}"),
    ("fig9", "pencil-head upper-envelope EP", "0.18",
     lambda s: f"{s['upper_ep']:.2f}"),
    ("fig9", "pencil-head lower-envelope EP", "1.05",
     lambda s: f"{s['lower_ep']:.2f}"),
    ("fig14", "single-node class with best avg EE", "2 chips",
     lambda s: f"{max(s, key=lambda k: s[k]['avg_ee'])} chips"),
    ("fig14", "1-chip median EP", "0.67",
     lambda s: f"{s[1]['median_ep']:.2f}"),
    ("fig14", "2-chip median EP", "0.66",
     lambda s: f"{s[2]['median_ep']:.2f}"),
    ("fig15", "2-chip avg EP gain vs all", "+2.94%",
     lambda s: f"{s['avg_ep_gain']:+.2%}"),
    ("fig15", "2-chip avg EE gain vs all", "+4.13%",
     lambda s: f"{s['avg_ee_gain']:+.2%}"),
    ("fig16", "share peaking at 100% (2004-2012)", "75.71%",
     lambda s: f"{s['eras']['2004-2012'][1.0]:.2%}"),
    ("fig16", "share peaking at 100% (2013-2016)", "23.21%",
     lambda s: f"{s['eras']['2013-2016'][1.0]:.2%}"),
    ("fig16", "share peaking at 80% (2013-2016)", "35.71%",
     lambda s: f"{s['eras']['2013-2016'][0.8]:.2%}"),
    ("fig16", "share peaking at 70% (2013-2016)", "26.79%",
     lambda s: f"{s['eras']['2013-2016'][0.7]:.2%}"),
    ("fig17", "best GB/core for EP", "1.5",
     lambda s: f"{s['best']['ep']:g}"),
    ("fig17", "best GB/core for EE", "1.78",
     lambda s: f"{s['best']['ee']:g}"),
    ("fig18", "server #1 best GB/core", "1.75",
     lambda s: f"{s['best_memory_per_core']:g}"),
    ("fig19", "server #2 best GB/core", "4",
     lambda s: f"{s['best_memory_per_core']:g}"),
    ("fig20", "server #4 best GB/core", "2.67",
     lambda s: f"{s['best_memory_per_core']:g}"),
    ("table1", "servers at 1 GB/core", "153",
     lambda s: str(s["1"])),
    ("table1", "servers at 2 GB/core", "123",
     lambda s: str(s["2"])),
    ("eq2", "Eq. 2 amplitude", "1.2969",
     lambda s: f"{s['amplitude']:.4f}"),
    ("eq2", "Eq. 2 rate (recovered)", "-2.06",
     lambda s: f"{s['rate']:.2f}"),
    ("eq2", "Eq. 2 R^2", "0.892",
     lambda s: f"{s['r_squared']:.3f}"),
    ("eq2", "corr(EP, idle%)", "-0.92",
     lambda s: f"{s['corr_ep_idle']:.3f}"),
    ("eq2", "corr(EP, overall score)", "0.741",
     lambda s: f"{s['corr_ep_score']:.3f}"),
    ("reorg", "published != hw-availability year", "15.5%",
     lambda s: f"{s['mismatch_fraction']:.1%}"),
    ("asynchrony", "top-10% EP from 2012", "91.7%",
     lambda s: f"{s['report'].top_ep_share_2012:.1%}"),
    ("asynchrony", "top-10% EE from 2012", "16.7%",
     lambda s: f"{s['report'].top_ee_share_2012:.1%}"),
    ("asynchrony", "EP/EE top-decile overlap", "14.6%",
     lambda s: f"{s['report'].overlap_fraction:.1%}"),
    ("wong", "share peaking at 100%", "69.25%",
     lambda s: f"{s['share_100']:.2%}"),
    ("wong", "share peaking at 60%", "1.88%",
     lambda s: f"{s['share_60']:.2%}"),
    ("prior_work", "corr(EP, score) on the <=2014 window", "0.83",
     lambda s: f"{s['correlation_drift'].subset_value:.3f}"),
    ("prior_work", "corr(EP, score) on the full record", "0.741",
     lambda s: f"{s['correlation_drift'].full_value:.3f}"),
]

_HEADER = """# EXPERIMENTS -- paper vs. measured

Regenerated by ``python -m repro.core.pipeline`` from the default-seed
corpus.  Absolute efficiency magnitudes come from this reproduction's
simulated substrate (see DESIGN.md for the substitutions), so the
comparison targets are the paper's *published statistics and shapes*,
not testbed wattages.  Every row below is asserted programmatically in
``benchmarks/`` with an explicit tolerance.

## Scalar findings
"""


def build_experiments_report(study: Optional[Study] = None) -> str:
    """Render the paper-vs-measured markdown report."""
    if study is None:
        study = Study()
    cache = {}

    def series_of(figure_id: str):
        if figure_id not in cache:
            cache[figure_id] = study.figure(figure_id).series
        return cache[figure_id]

    lines: List[str] = [_HEADER]
    lines.append("| artifact | claim | paper | measured |")
    lines.append("|---|---|---|---|")
    for figure_id, claim, paper_value, extract in _CLAIMS:
        measured = extract(series_of(figure_id))
        lines.append(f"| {figure_id} | {claim} | {paper_value} | {measured} |")

    lines.append("\n## Per-artifact index\n")
    lines.append("| artifact | reproduces | bench target |")
    lines.append("|---|---|---|")
    bench_names = {
        "fig1": "bench_fig01_ep_curve.py",
        "fig2": "bench_fig02_evolution.py",
        "fig3": "bench_fig03_ep_trend.py",
        "fig4": "bench_fig04_ee_trend.py",
        "fig5": "bench_fig05_ep_cdf.py",
        "fig6": "bench_fig06_microarch.py",
        "fig7": "bench_fig07_codename_ep.py",
        "fig8": "bench_fig08_mix_2012_2016.py",
        "fig9": "bench_fig09_pencil_head.py",
        "fig10": "bench_fig10_selected_ep.py",
        "fig11": "bench_fig11_almond.py",
        "fig12": "bench_fig12_selected_ee.py",
        "fig13": "bench_fig13_multinode.py",
        "fig14": "bench_fig14_chips.py",
        "fig15": "bench_fig15_twochip_vs_all.py",
        "fig16": "bench_fig16_peak_shift.py",
        "fig17": "bench_fig17_mpc_corpus.py",
        "fig18": "bench_fig18_server1_mpc.py",
        "fig19": "bench_fig19_server2_mpc.py",
        "fig20": "bench_fig20_server4_mpc.py",
        "fig21": "bench_fig21_server4_power.py",
        "table1": "bench_table1_mpc_counts.py",
        "table2": "bench_table2_testbed.py",
        "eq2": "bench_eq2_idle_regression.py",
        "reorg": "bench_reorg_deltas.py",
        "asynchrony": "bench_asynchrony.py",
        "placement": "bench_placement.py",
        "wong": "bench_related_wong.py",
        "gap": "bench_ablation_proportionality_gap.py",
        "metric_family": "bench_ablation_metric_family.py",
        "forecast": "bench_ext_forecast.py",
        "workloads": "bench_ablation_workload_sensitivity.py",
        "trace": "bench_ablation_diurnal_trace.py",
        "jobs": "bench_ext_job_scheduling.py",
        "procurement": "bench_ext_procurement.py",
        "prior_work": "bench_ext_prior_subsets.py",
    }
    for figure_id, spec in REGISTRY.items():
        lines.append(
            f"| {figure_id} | {spec.description} | "
            f"benchmarks/{bench_names[figure_id]} |"
        )

    lines.append("\n## Rendered artifacts\n")
    lines.append(
        "Running ``pytest benchmarks/ --benchmark-only`` additionally writes "
        "each artifact's rendered rows to ``benchmarks/output/<id>.txt``."
    )
    lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Write EXPERIMENTS.md (or the path given as the first argument)."""
    argv = sys.argv[1:] if argv is None else argv
    target = Path(argv[0]) if argv else Path("EXPERIMENTS.md")
    target.write_text(build_experiments_report())
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
