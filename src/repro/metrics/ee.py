"""Energy-efficiency metrics (performance-to-power ratios).

SPECpower reports, for every target load, the *performance to power
ratio* in ssj_ops per watt, and an overall score defined as the sum of
throughput over all ten loads divided by the sum of average power over
all eleven measurements (the ten loads plus active idle).  Section II.B
of the paper builds on these:

* *peak energy efficiency* -- the greatest per-level ratio;
* *peak efficiency spot(s)* -- the utilization level(s) at which the
  peak is reached (Section IV tracks how this spot shifted from 100%
  toward 80%/70% over time; ties are possible and produce two spots,
  which is how the paper arrives at 478 spots for 477 servers);
* *peak over full ratio* -- peak efficiency relative to the efficiency
  at 100% utilization.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

#: Two per-level efficiencies within this relative distance are treated
#: as tied, mirroring the 2011 result the paper reports with peak
#: efficiency at both 80% and 90% utilization.
PEAK_TIE_RTOL = 1e-9


def _validate(ops: Sequence[float], power: Sequence[float]):
    o = np.asarray(ops, dtype=float)
    p = np.asarray(power, dtype=float)
    if o.ndim != 1 or p.ndim != 1:
        raise ValueError("ops and power must be one-dimensional")
    if o.shape != p.shape:
        raise ValueError(
            f"ops and power must have equal length, got {o.shape[0]} and {p.shape[0]}"
        )
    if o.shape[0] == 0:
        raise ValueError("at least one load level is required")
    if np.any(p <= 0.0):
        raise ValueError("power must be positive at every level")
    if np.any(o < 0.0):
        raise ValueError("throughput cannot be negative")
    return o, p


def efficiency_series(ops: Sequence[float], power: Sequence[float]) -> np.ndarray:
    """Per-level performance-to-power ratio (ssj_ops per watt)."""
    o, p = _validate(ops, power)
    return o / p


def overall_score(
    ops: Sequence[float],
    power: Sequence[float],
    active_idle_power: float,
) -> float:
    """The SPECpower overall score (server overall energy efficiency).

    Parameters
    ----------
    ops:
        Throughput at the ten target loads (any order).
    power:
        Average power at the same loads, in watts.
    active_idle_power:
        Average power at active idle, in watts; it contributes to the
        denominator but adds no throughput.
    """
    o, p = _validate(ops, power)
    if active_idle_power <= 0.0:
        raise ValueError("active idle power must be positive")
    return float(o.sum() / (p.sum() + active_idle_power))


def peak_efficiency(ops: Sequence[float], power: Sequence[float]) -> float:
    """The greatest per-level performance-to-power ratio."""
    return float(efficiency_series(ops, power).max())


def peak_efficiency_spots(
    utilization: Sequence[float],
    ops: Sequence[float],
    power: Sequence[float],
    rtol: float = PEAK_TIE_RTOL,
) -> List[float]:
    """Utilization level(s) at which the per-level efficiency peaks.

    Returns every level whose efficiency is within ``rtol`` of the
    maximum, sorted ascending.  Most servers yield a single spot; ties
    yield several (the paper counts 478 spots over 477 servers).
    """
    u = np.asarray(utilization, dtype=float)
    series = efficiency_series(ops, power)
    if u.shape != series.shape:
        raise ValueError("utilization must align with ops/power levels")
    best = series.max()
    spots = [float(level) for level, ee in zip(u, series) if ee >= best * (1.0 - rtol)]
    return sorted(spots)


def peak_over_full_ratio(
    utilization: Sequence[float],
    ops: Sequence[float],
    power: Sequence[float],
) -> float:
    """Ratio of the peak efficiency to the efficiency at 100% utilization."""
    u = np.asarray(utilization, dtype=float)
    series = efficiency_series(ops, power)
    if u.shape != series.shape:
        raise ValueError("utilization must align with ops/power levels")
    full_mask = np.isclose(u, 1.0)
    if not np.any(full_mask):
        raise ValueError("curve does not include the 100% utilization level")
    full_ee = float(series[full_mask][0])
    if full_ee <= 0.0:
        raise ValueError("efficiency at 100% utilization must be positive")
    return float(series.max() / full_ee)


def peak_efficiency_offset(
    utilization: Sequence[float],
    ops: Sequence[float],
    power: Sequence[float],
) -> float:
    """Distance of the (earliest) peak-efficiency spot from 100% utilization.

    Zero for the servers that peak at full load; 0.3 for a server whose
    efficiency peaks at 70%.  Section IV uses the spot's drift away from
    100% as the signature of modern, more proportional servers.
    """
    spots = peak_efficiency_spots(utilization, ops, power)
    return float(1.0 - spots[0])


def high_efficiency_zone(
    utilization: Sequence[float],
    ops: Sequence[float],
    power: Sequence[float],
    threshold: float = 1.0,
) -> Tuple[float, float]:
    """The utilization range whose efficiency is >= threshold x EE(100%).

    Section III.C observes that servers with EP > 1 enter their high
    efficiency zone early (0.8x before 30% utilization, 1.0x before
    40%) and that the zone above 1.0x is wider for higher-EP servers.
    Returns ``(start, end)`` in utilization units; raises ``ValueError``
    when no level qualifies.
    """
    u = np.asarray(utilization, dtype=float)
    series = efficiency_series(ops, power)
    if u.shape != series.shape:
        raise ValueError("utilization must align with ops/power levels")
    full_mask = np.isclose(u, 1.0)
    if not np.any(full_mask):
        raise ValueError("curve does not include the 100% utilization level")
    reference = float(series[full_mask][0])
    qualifying = u[series >= threshold * reference]
    if qualifying.size == 0:
        raise ValueError("no utilization level reaches the requested threshold")
    return float(qualifying.min()), float(qualifying.max())
