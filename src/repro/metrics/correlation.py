"""Correlation coefficients used by the paper's quantitative claims.

The paper reports Pearson correlations between EP and the idle power
percentage (-0.92, Section III.D) and between EP and the overall
SPECpower score (0.741, Section I).  Both are implemented here directly
on numpy primitives so the computation is transparent and dependency
free.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _paired(x: Sequence[float], y: Sequence[float]):
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("inputs must be one-dimensional")
    if a.shape != b.shape:
        raise ValueError(
            f"inputs must have equal length, got {a.shape[0]} and {b.shape[0]}"
        )
    if a.shape[0] < 2:
        raise ValueError("correlation needs at least two observations")
    return a, b


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson product-moment correlation coefficient."""
    a, b = _paired(x, y)
    a = a - a.mean()
    b = b - b.mean()
    denominator = float(np.sqrt((a * a).sum() * (b * b).sum()))
    if denominator == 0.0:
        raise ValueError("correlation is undefined for a constant series")
    return float((a * b).sum() / denominator)


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based), with ties sharing their mean rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=float)
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = 0.5 * (i + j) + 1.0
        ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    a, b = _paired(x, y)
    return pearson(_ranks(a), _ranks(b))
