"""Least-squares fits behind the paper's regression claims.

Section III.D fits an exponential model relating EP to the idle power
percentage (Eq. 2):

    EP = 1.2969 * exp(k * idle),   R^2 = 0.892

(The extracted text of the paper loses the exponent constant; the
paper's own worked example -- idle = 5% implies EP = 1.17 -- recovers
k = ln(1.17 / 1.2969) / 0.05 = -2.06.)

The exponential fit is performed in two stages: a closed-form
log-linear ordinary-least-squares fit for a robust starting point,
refined by a few Gauss-Newton iterations on the original (non-log)
residuals so that R^2 is reported in the units the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Result of an ordinary-least-squares straight-line fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: Sequence[float]) -> np.ndarray:
        """Fitted values at ``x``."""
        return self.intercept + self.slope * np.asarray(x, dtype=float)


@dataclass(frozen=True)
class ExponentialFit:
    """Result of fitting ``y = amplitude * exp(rate * x)``."""

    amplitude: float
    rate: float
    r_squared: float

    def predict(self, x: Sequence[float]) -> np.ndarray:
        """Fitted values at ``x``."""
        return self.amplitude * np.exp(self.rate * np.asarray(x, dtype=float))


def _paired(x: Sequence[float], y: Sequence[float]):
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("x and y must be one-dimensional and of equal length")
    if a.shape[0] < 3:
        raise ValueError("a regression needs at least three observations")
    return a, b


def r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination of a fit."""
    residual = observed - predicted
    total = observed - observed.mean()
    ss_total = float((total * total).sum())
    if ss_total == 0.0:
        raise ValueError("R^2 is undefined for a constant response")
    return 1.0 - float((residual * residual).sum()) / ss_total


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``y = intercept + slope * x``."""
    a, b = _paired(x, y)
    a_centered = a - a.mean()
    denominator = float((a_centered * a_centered).sum())
    if denominator == 0.0:
        raise ValueError("slope is undefined for a constant regressor")
    slope = float((a_centered * (b - b.mean())).sum()) / denominator
    intercept = float(b.mean() - slope * a.mean())
    predicted = intercept + slope * a
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared(b, predicted))


def exponential_fit(
    x: Sequence[float],
    y: Sequence[float],
    gauss_newton_iterations: int = 50,
) -> ExponentialFit:
    """Fit ``y = amplitude * exp(rate * x)`` by log-linear OLS + Gauss-Newton.

    All ``y`` values must be positive (EP values in the paper's use are).
    """
    a, b = _paired(x, y)
    if np.any(b <= 0.0):
        raise ValueError("exponential fit requires positive responses")
    # Stage 1: closed-form seed in log space.
    seed = linear_fit(a, np.log(b))
    amplitude = float(np.exp(seed.intercept))
    rate = float(seed.slope)
    # Stage 2: Gauss-Newton on the untransformed residuals.
    for _ in range(gauss_newton_iterations):
        model = amplitude * np.exp(rate * a)
        residual = b - model
        # Jacobian columns: d/d(amplitude), d/d(rate).
        j_amp = model / amplitude
        j_rate = model * a
        jtj = np.array(
            [
                [(j_amp * j_amp).sum(), (j_amp * j_rate).sum()],
                [(j_amp * j_rate).sum(), (j_rate * j_rate).sum()],
            ]
        )
        jtr = np.array([(j_amp * residual).sum(), (j_rate * residual).sum()])
        try:
            step = np.linalg.solve(jtj, jtr)
        except np.linalg.LinAlgError:
            break
        amplitude += float(step[0])
        rate += float(step[1])
        if amplitude <= 0.0:
            # Fall back to the log-linear seed when the refinement
            # wanders out of the valid domain.
            amplitude = float(np.exp(seed.intercept))
            rate = float(seed.slope)
            break
        if float(np.abs(step).max()) < 1e-12:
            break
    predicted = amplitude * np.exp(rate * a)
    return ExponentialFit(
        amplitude=amplitude, rate=rate, r_squared=r_squared(b, predicted)
    )
