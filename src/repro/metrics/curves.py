"""Curve-level analysis of power and efficiency curves.

Section III.C of the paper studies the *shape* of the curves, not just
their scalar summaries: where an EP curve intersects the ideal
(strictly proportional) line, how early the relative-efficiency curve
crosses the 0.8x and 1.0x marks, and which band (the "pencil head" /
"almond" envelopes) all 477 curves fall into.  The helpers here operate
on piecewise-linear curves sampled at the SPECpower measurement points.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.metrics.ep import _as_curve


def normalize_power(
    utilization: Sequence[float], power: Sequence[float]
) -> np.ndarray:
    """Power normalized to the value at the highest measured utilization."""
    _, p = _as_curve(utilization, power)
    return p / p[-1]


def ee_relative_curve(
    utilization: Sequence[float], power: Sequence[float]
) -> np.ndarray:
    """Per-level efficiency normalized so that EE(100%) = 1.

    Because SPECpower throughput tracks the target load, the relative
    efficiency at utilization ``u`` reduces to ``u / p_norm(u)`` where
    ``p_norm`` is the normalized power.  The u=0 point (active idle) is
    reported as efficiency 0.
    """
    u, p = _as_curve(utilization, power)
    p_norm = p / p[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(p_norm > 0.0, u / p_norm, 0.0)
    return rel


def ideal_intersections(
    utilization: Sequence[float], power: Sequence[float]
) -> List[float]:
    """Utilizations where the normalized power curve crosses the ideal line.

    The ideal energy-proportionality curve is ``power = utilization``.
    A crossing inside an interval is located by linear interpolation;
    touching the line exactly at a measured point also counts.  The
    trivial contact at 100% utilization (both curves equal 1 there by
    normalization) is excluded, matching the paper's discussion of
    curves intersecting the ideal curve "before 100% utilization".
    """
    u, p = _as_curve(utilization, power)
    p_norm = p / p[-1]
    gap = p_norm - u
    crossings: List[float] = []
    for i in range(len(u) - 1):
        left, right = gap[i], gap[i + 1]
        if left == 0.0 and u[i] < 1.0:
            crossings.append(float(u[i]))
        if left * right < 0.0:
            # Piecewise-linear root of gap(u) on this interval.
            t = left / (left - right)
            crossing = u[i] + t * (u[i + 1] - u[i])
            if crossing < 1.0:
                crossings.append(float(crossing))
    # Deduplicate near-identical crossings produced by exact zeros.
    unique: List[float] = []
    for value in sorted(crossings):
        if not unique or abs(value - unique[-1]) > 1e-12:
            unique.append(value)
    return unique


def first_crossing(
    utilization: Sequence[float],
    power: Sequence[float],
    threshold: float,
) -> float:
    """Earliest utilization whose relative efficiency reaches ``threshold``.

    Section III.C: servers with EP > 1 reach 0.8x of their full-load
    efficiency before 30% utilization and 1.0x before 40%.  Crossing
    points between measurement levels are linearly interpolated.
    Returns ``nan`` when the curve never reaches the threshold.
    """
    u, p = _as_curve(utilization, power)
    rel = ee_relative_curve(u, p)
    if rel[0] >= threshold:
        return float(u[0])
    for i in range(len(u) - 1):
        if rel[i] < threshold <= rel[i + 1]:
            t = (threshold - rel[i]) / (rel[i + 1] - rel[i])
            return float(u[i] + t * (u[i + 1] - u[i]))
    return float("nan")


def above_ideal_zone(
    utilization: Sequence[float], power: Sequence[float]
) -> float:
    """Width of the utilization band where relative efficiency exceeds 1.0.

    This is the "high energy efficiency zone above 1.0" of Section
    III.C -- the band the paper recommends keeping servers in.  The
    width is measured in utilization units using linear interpolation
    at the band edges; 0.0 when the curve never exceeds 1.0 before 100%.
    """
    u, p = _as_curve(utilization, power)
    rel = ee_relative_curve(u, p)
    above = rel > 1.0 + 1e-12
    if not np.any(above):
        return 0.0
    width = 0.0
    for i in range(len(u) - 1):
        left_rel, right_rel = rel[i], rel[i + 1]
        left_above = left_rel > 1.0
        right_above = right_rel > 1.0
        span = u[i + 1] - u[i]
        if left_above and right_above:
            width += span
        elif left_above != right_above and right_rel != left_rel:
            t = (1.0 - left_rel) / (right_rel - left_rel)
            width += span * (1.0 - t) if right_above else span * t
    return float(width)


def envelope(curves: Sequence[Sequence[float]]) -> tuple:
    """Pointwise (lower, upper) envelope of a family of aligned curves.

    Used to draw the boundaries of the pencil-head chart (Fig. 9) and
    the almond chart (Fig. 11).  All curves must be sampled at the same
    utilization grid.
    """
    stack = np.asarray(curves, dtype=float)
    if stack.ndim != 2:
        raise ValueError("curves must be a 2-D family of aligned samples")
    if stack.shape[0] == 0:
        raise ValueError("at least one curve is required")
    return stack.min(axis=0), stack.max(axis=0)
