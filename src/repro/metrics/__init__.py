"""Energy-proportionality and energy-efficiency metrics.

The metric definitions follow Section II.B of the paper.  The central
quantity is the *energy proportionality* (EP) of Ryckbosch et al. (ref.
[14] of the paper), computed from a server's normalized
power--utilization curve.  The module family also implements the
companion metrics that prior work (Hsu & Poole, ref. [16]) compares EP
against: idle-to-peak ratio (IPR), linear deviation (LD), and the
energy ratio (ER), plus energy-efficiency aggregates used throughout
the paper (overall score, peak efficiency, peak-efficiency spot).
"""

from repro.metrics.curves import (
    above_ideal_zone,
    ee_relative_curve,
    first_crossing,
    ideal_intersections,
    normalize_power,
)
from repro.metrics.ee import (
    efficiency_series,
    overall_score,
    peak_efficiency,
    peak_efficiency_spots,
    peak_over_full_ratio,
)
from repro.metrics.ep import (
    UTILIZATION_LEVELS,
    dynamic_range,
    energy_proportionality,
    ep_from_area,
    idle_power_fraction,
    proportionality_area,
)
from repro.metrics.gap import (
    gap_at,
    low_utilization_gap,
    peak_gap,
    proportionality_gap,
)
from repro.metrics.linearity import energy_ratio, idle_to_peak_ratio, linear_deviation
from repro.metrics.correlation import pearson, spearman
from repro.metrics.regression import exponential_fit, linear_fit

__all__ = [
    "UTILIZATION_LEVELS",
    "above_ideal_zone",
    "dynamic_range",
    "ee_relative_curve",
    "efficiency_series",
    "energy_proportionality",
    "energy_ratio",
    "ep_from_area",
    "exponential_fit",
    "first_crossing",
    "gap_at",
    "ideal_intersections",
    "idle_power_fraction",
    "idle_to_peak_ratio",
    "linear_deviation",
    "linear_fit",
    "low_utilization_gap",
    "normalize_power",
    "overall_score",
    "peak_efficiency",
    "peak_gap",
    "peak_efficiency_spots",
    "peak_over_full_ratio",
    "pearson",
    "proportionality_gap",
    "spearman",
]
