"""Energy proportionality (EP) per Ryckbosch, Polfliet & Eeckhout.

The paper (Section II.B, Eq. 1) adopts the EP metric of ref. [14]:
with the power--utilization curve normalized so that power at 100%
utilization equals 1, the metric compares the area under the actual
curve against the area under the ideal (strictly proportional) curve:

    EP = 1 - (A_actual - A_ideal) / A_ideal,  with  A_ideal = 1/2

which simplifies to ``EP = 2 - 2 * A_actual``.  An ideally proportional
server scores 1.0, a server drawing constant power scores 0.0, and the
metric is bounded above by 2.0 (reached only by a hypothetical server
that is free below peak).  The paper approximates the area with the
trapezoid rule over the eleven measured points (active idle plus the
ten 10%-spaced target loads), which is exactly what
:func:`proportionality_area` does.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: The eleven measured utilization points of a SPECpower run: active
#: idle (0%) followed by target loads 10% .. 100%.
UTILIZATION_LEVELS: tuple = tuple(round(0.1 * i, 1) for i in range(11))

#: The ten non-idle target loads, highest first, in the order the
#: benchmark visits them (100% down to 10%).
TARGET_LOADS_DESCENDING: tuple = tuple(round(0.1 * i, 1) for i in range(10, 0, -1))


def _as_curve(utilization: Sequence[float], power: Sequence[float]):
    """Validate and return the curve as sorted numpy arrays."""
    u = np.asarray(utilization, dtype=float)
    p = np.asarray(power, dtype=float)
    if u.ndim != 1 or p.ndim != 1:
        raise ValueError("utilization and power must be one-dimensional")
    if u.shape != p.shape:
        raise ValueError(
            f"utilization and power must have equal length, "
            f"got {u.shape[0]} and {p.shape[0]}"
        )
    if u.shape[0] < 2:
        raise ValueError("a power curve needs at least two points")
    if np.any(p < 0.0):
        raise ValueError("power values must be non-negative")
    if np.any(u < 0.0) or np.any(u > 1.0):
        raise ValueError("utilization values must lie in [0, 1]")
    order = np.argsort(u)
    u = u[order]
    p = p[order]
    if np.any(np.diff(u) <= 0.0):
        raise ValueError("utilization values must be distinct")
    return u, p


def normalize_to_peak_power(
    utilization: Sequence[float], power: Sequence[float]
) -> np.ndarray:
    """Return power normalized to the power at the highest utilization.

    The highest measured utilization is taken as the reference point,
    matching the paper's normalization "to its power at 100%
    utilization" (Fig. 1).
    """
    u, p = _as_curve(utilization, power)
    reference = p[-1]
    if reference <= 0.0:
        raise ValueError("power at peak utilization must be positive")
    return p / reference


def proportionality_area(
    utilization: Sequence[float], power: Sequence[float]
) -> float:
    """Trapezoid area under the normalized power--utilization curve.

    The curve is extended to utilization 0 and 1 by holding the end
    values when those endpoints are not measured, which mirrors how the
    paper's trapezoid construction treats the eleven measured points
    (active idle supplies the u=0 endpoint).
    """
    u, p = _as_curve(utilization, power)
    p = p / p[-1]
    if u[0] > 0.0:
        u = np.concatenate(([0.0], u))
        p = np.concatenate(([p[0]], p))
    if u[-1] < 1.0:
        u = np.concatenate((u, [1.0]))
        p = np.concatenate((p, [p[-1]]))
    return float(np.trapezoid(p, u))


def ep_from_area(area: float) -> float:
    """Convert a normalized-curve area into the EP value of Eq. 1."""
    if area < 0.0:
        raise ValueError("area under a non-negative curve cannot be negative")
    return 2.0 - 2.0 * float(area)


def energy_proportionality(
    utilization: Sequence[float], power: Sequence[float]
) -> float:
    """Energy proportionality (Eq. 1) of a measured power curve.

    Parameters
    ----------
    utilization:
        Measured utilization points in [0, 1].  A full SPECpower result
        supplies :data:`UTILIZATION_LEVELS` (active idle plus ten loads).
    power:
        Average power at each point, in any consistent unit; the curve
        is normalized internally to the power at peak utilization.

    Returns
    -------
    float
        EP value; 1.0 for an ideally proportional server, 0.0 for a
        server whose power does not vary with load, and < 2.0 always.
    """
    return ep_from_area(proportionality_area(utilization, power))


def idle_power_fraction(
    utilization: Sequence[float], power: Sequence[float]
) -> float:
    """Idle power normalized to power at peak utilization.

    Section III.D calls this the *idle power percentage*; it is the
    regressor of Eq. 2 and correlates with EP at -0.92 in the paper.
    """
    u, p = _as_curve(utilization, power)
    if u[0] > 0.0:
        raise ValueError("curve does not include an active-idle (u=0) point")
    return float(p[0] / p[-1])


def dynamic_range(utilization: Sequence[float], power: Sequence[float]) -> float:
    """Fraction of peak power that is load-dependent: (P_peak - P_idle)/P_peak.

    A server with a high peak efficiency but a low dynamic range is not
    energy proportional (Section I), which is why the paper tracks the
    two properties separately.
    """
    return 1.0 - idle_power_fraction(utilization, power)


def ideal_power(utilization: Sequence[float]) -> np.ndarray:
    """The ideal (strictly proportional) normalized power curve."""
    u = np.asarray(utilization, dtype=float)
    if np.any(u < 0.0) or np.any(u > 1.0):
        raise ValueError("utilization values must lie in [0, 1]")
    return u.copy()
