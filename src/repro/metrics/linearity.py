"""Companion proportionality metrics: IPR, LD, and ER.

Hsu & Poole (ref. [16] of the paper) compare the EP metric against a
family of alternative proportionality measures; the paper itself
invokes *linear deviation* (LD) in Section III.C to explain why two
servers with identical EP can have differently shaped curves.  All
metrics operate on the normalized power--utilization curve.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.ep import _as_curve, proportionality_area


def idle_to_peak_ratio(
    utilization: Sequence[float], power: Sequence[float]
) -> float:
    """IPR: idle power divided by peak power (lower is better).

    Equivalent to the idle power percentage of Section III.D.  An
    ideally proportional server has IPR 0; a constant-power server has
    IPR 1.
    """
    u, p = _as_curve(utilization, power)
    if u[0] > 0.0:
        raise ValueError("curve does not include an active-idle (u=0) point")
    return float(p[0] / p[-1])


def linear_deviation(
    utilization: Sequence[float], power: Sequence[float]
) -> float:
    """LD: signed area between the power curve and its idle-to-peak chord.

    The chord runs from (0, p_idle) to (1, 1) on the normalized curve.
    A positive LD means the curve bows *above* the chord (power rises
    early -- superlinear shape, worse at low load); a negative LD means
    it bows below (power is deferred to high load -- the shape behind
    EP values above ``1 - idle``).  Two servers with equal EP but
    different LD have the differently shaped curves discussed around
    Fig. 10.
    """
    u, p = _as_curve(utilization, power)
    p_norm = p / p[-1]
    if u[0] > 0.0:
        u = np.concatenate(([0.0], u))
        p_norm = np.concatenate(([p_norm[0]], p_norm))
    idle = p_norm[0]
    chord = idle + (1.0 - idle) * u
    return float(np.trapezoid(p_norm - chord, u))


def energy_ratio(utilization: Sequence[float], power: Sequence[float]) -> float:
    """ER: area under the ideal curve over area under the actual curve.

    ER is 1.0 for an ideally proportional server and approaches 0.5 for
    a constant-power server.  It ranks servers consistently with EP
    (both are monotone transforms of the same area) but compresses the
    scale, which is why the paper standardizes on EP.
    """
    area = proportionality_area(utilization, power)
    if area <= 0.0:
        raise ValueError("degenerate curve: area under power curve is zero")
    return float(0.5 / area)
