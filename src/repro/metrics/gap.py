"""The proportionality gap (PG) of Wong & Annavaram.

Refs. [17]/[48] of the paper measure, per utilization level, how far a
server's normalized power sits above the ideal proportional line:

    PG(u) = P_norm(u) - u

A perfectly proportional server has PG = 0 everywhere; the gap is
largest at low utilization for real servers -- Wong & Annavaram's
finding, quoted in the paper's related work, that "when servers are
running at low utilization there appears significant proportionality
gap" even as overall EP improved.  The corpus-level view of this
metric lives in :mod:`repro.analysis.gap`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.metrics.ep import _as_curve


def proportionality_gap(
    utilization: Sequence[float], power: Sequence[float]
) -> np.ndarray:
    """PG at every measured point: normalized power minus utilization."""
    u, p = _as_curve(utilization, power)
    return p / p[-1] - u


def gap_at(
    utilization: Sequence[float], power: Sequence[float], at: float
) -> float:
    """PG at one utilization (linear interpolation between levels)."""
    if not 0.0 <= at <= 1.0:
        raise ValueError("utilization must lie in [0, 1]")
    u, p = _as_curve(utilization, power)
    return float(np.interp(at, u, p / p[-1]) - at)


def peak_gap(
    utilization: Sequence[float], power: Sequence[float]
) -> Tuple[float, float]:
    """(utilization, gap) of the largest proportionality gap."""
    u, p = _as_curve(utilization, power)
    gaps = p / p[-1] - u
    index = int(np.argmax(gaps))
    return float(u[index]), float(gaps[index])


def low_utilization_gap(
    utilization: Sequence[float],
    power: Sequence[float],
    band: Tuple[float, float] = (0.1, 0.3),
) -> float:
    """Mean PG over the low-utilization band (10-30% by default).

    This is the region Wong & Annavaram single out: most production
    servers actually operate there, so a large low-band gap means the
    fleet runs far from proportional even when the scalar EP looks
    respectable.
    """
    low, high = band
    if not 0.0 <= low < high <= 1.0:
        raise ValueError("band must satisfy 0 <= low < high <= 1")
    u, p = _as_curve(utilization, power)
    inside = (u >= low - 1e-12) & (u <= high + 1e-12)
    if not np.any(inside):
        raise ValueError("no measured levels inside the band")
    gaps = p / p[-1] - u
    return float(gaps[inside].mean())
