"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` -- enumerate the reproducible artifacts;
* ``figure <id>`` -- regenerate one artifact and print it;
* ``generate --out corpus.csv`` -- write the calibrated corpus to CSV;
* ``validate <corpus.csv>`` -- lint a corpus for integrity problems;
* ``report --out EXPERIMENTS.md`` -- write the paper-vs-measured report;
* ``sweep <server#>`` -- run a Table II memory x frequency sweep;
* ``run-all --output-dir DIR`` -- render every artifact to files;
  ``--on-error isolate`` quarantines failures instead of aborting,
  ``--retry N``/``--timeout S`` bound each build, and
  ``--inject PLAN.json`` runs the build under a deterministic
  fault-injection plan (see :mod:`repro.core.faults`);
* ``ensemble --seeds N --jobs J`` -- recompute the headline statistics
  over N seeded corpora and print mean/CI summaries;
* ``fleet-replay --servers N --steps S`` -- replay a diurnal day over
  a tiled N-server fleet through the columnar, sharded out-of-core
  (million-server), or scalar engine;
* ``query <spec.json|{...}>`` -- execute any :mod:`repro.api` request
  given as JSON (inline or ``@file``) and print the result envelope;
* ``serve --port P`` -- run the async query daemon
  (:mod:`repro.serve`) in the foreground; ``--max-inflight``/
  ``--max-queue`` bound admission (beyond them it sheds with 503),
  ``--drain-s`` budgets the SIGTERM graceful drain, and
  ``--breaker-failures``/``--breaker-cooldown-s`` tune the per-spec
  circuit breaker;
* ``checks [paths]`` -- run the domain-aware static analysis
  (determinism, registry, concurrency, parity and dispatch rules);
* ``cache stats|clear`` -- inspect or empty the artifact cache.

Every command is a thin shell over the unified query API: it builds a
frozen :class:`repro.api.QueryRequest`, hands it to
:func:`repro.api.execute`, and prints the result -- as the classic
text rendering by default, or as the full JSON envelope (payload +
provenance) under the global ``--format json``.

The global ``--jobs N`` option widens the execution engine's thread
pool and ``--cache`` (with optional ``--cache-dir DIR``) enables the
content-addressed artifact cache (default store: ``.repro_cache/``),
so e.g. ``python -m repro --jobs 4 --cache run-all`` builds in
parallel and a repeat invocation is served from disk.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.api import (
    ArtifactQuery,
    CacheQuery,
    EnsembleQuery,
    GenerateQuery,
    ListArtifactsQuery,
    QueryContext,
    QueryResult,
    ReplayQuery,
    ReportQuery,
    RunAllQuery,
    SweepQuery,
    ValidateQuery,
    execute,
    request_from_dict,
)
from repro.checks.cli import add_checks_parser, cmd_checks
from repro.core.cache import DEFAULT_CACHE_DIR, ArtifactCache


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Energy Proportional Servers: Where Are We "
            "in 2016?' (ICDCS 2017)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=2016, help="corpus generation seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the artifact engine (default 1 = serial)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            "enable the content-addressed artifact cache "
            f"(default store: {DEFAULT_CACHE_DIR}/)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache store directory (implies --cache)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help=(
            "output rendering: classic terminal text (default) or the "
            "full QueryResult JSON envelope"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="enumerate the reproducible artifacts")

    figure = commands.add_parser("figure", help="regenerate one artifact")
    figure.add_argument("figure_id", help="artifact id, e.g. fig3 or eq2")

    generate = commands.add_parser("generate", help="write the corpus to CSV")
    generate.add_argument("--out", default="corpus.csv", help="output path")

    validate = commands.add_parser(
        "validate", help="lint a corpus CSV for integrity problems"
    )
    validate.add_argument("path", help="corpus CSV to check")

    report = commands.add_parser(
        "report", help="write the paper-vs-measured report"
    )
    report.add_argument("--out", default="EXPERIMENTS.md", help="output path")

    sweep = commands.add_parser(
        "sweep", help="run a Table II memory x frequency sweep"
    )
    sweep.add_argument(
        "server", type=int, choices=(1, 2, 3, 4), help="testbed server number"
    )

    run_all = commands.add_parser(
        "run-all", help="render every artifact to files"
    )
    run_all.add_argument(
        "--output-dir", default="artifacts", help="directory for the renders"
    )
    run_all.add_argument(
        "--report",
        action="store_true",
        help="print per-artifact wall times and cache hits",
    )
    run_all.add_argument(
        "--on-error",
        choices=("raise", "isolate"),
        default="raise",
        help=(
            "failure semantics: 'raise' aborts on the first builder error, "
            "'isolate' quarantines the failing artifact (plus dependents) "
            "and finishes the rest (default: raise)"
        ),
    )
    run_all.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help="total attempts per artifact (deterministic backoff; default 1)",
    )
    run_all.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-artifact wall-clock budget in seconds (default: none)",
    )
    run_all.add_argument(
        "--inject",
        default=None,
        metavar="PLAN.json",
        help="deterministic fault-injection plan to run the build under",
    )

    ensemble = commands.add_parser(
        "ensemble",
        help="across-seed stability of the headline statistics",
    )
    ensemble.add_argument(
        "--seeds",
        type=int,
        default=5,
        metavar="N",
        help="ensemble size: N consecutive seeds starting at --seed (default 5)",
    )
    ensemble.add_argument(
        "--per-seed",
        action="store_true",
        help="also print the per-seed statistics rows",
    )

    fleet_replay = commands.add_parser(
        "fleet-replay",
        help="replay a diurnal day over a tiled fleet at scale",
    )
    fleet_replay.add_argument(
        "--servers",
        type=int,
        default=1000,
        metavar="N",
        help="fleet size; the 2016 corpus cohort is tiled to N (default 1000)",
    )
    fleet_replay.add_argument(
        "--steps",
        type=int,
        default=96,
        metavar="S",
        help="trace steps per day (default 96)",
    )
    fleet_replay.add_argument(
        "--policy",
        choices=("ep-aware", "pack-to-full"),
        default="ep-aware",
        help="placement policy to replay (default ep-aware)",
    )
    fleet_replay.add_argument(
        "--backend",
        choices=("auto", "scalar", "columnar", "sharded"),
        default="auto",
        help="fleet engine to use (default auto)",
    )
    fleet_replay.add_argument(
        "--power-off-unused",
        action="store_true",
        help="power unused servers off instead of idling them",
    )

    query = commands.add_parser(
        "query",
        help="execute one repro.api request given as JSON",
    )
    query.add_argument(
        "spec",
        help=(
            "the request as a JSON object (e.g. "
            "'{\"family\": \"stats\", \"metric\": \"ep\"}') "
            "or @path/to/spec.json"
        ),
    )

    serve = commands.add_parser(
        "serve", help="run the async query daemon in the foreground"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8631, help="TCP port (default 8631)"
    )
    serve.add_argument(
        "--workers", default="auto", metavar="N",
        help="engine worker processes: an integer, or 'auto' for "
             "cores-1 (default); 0 serves in-thread (bit-identity "
             "fallback: no forked state, single-core compute)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="concurrent query executions before queueing (default 64)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="queued queries before shedding with 503 (default 256)",
    )
    serve.add_argument(
        "--drain-s", type=float, default=10.0, metavar="S",
        help="graceful-drain budget on SIGTERM/SIGINT (default 10)",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=5, metavar="N",
        help="consecutive permanent failures that trip a spec's "
             "circuit breaker (default 5)",
    )
    serve.add_argument(
        "--breaker-cooldown-s", type=float, default=30.0, metavar="S",
        help="how long a tripped spec fails fast before one probe "
             "is allowed (default 30)",
    )

    add_checks_parser(commands)

    cache = commands.add_parser(
        "cache", help="inspect or empty the artifact cache"
    )
    cache.add_argument(
        "action", choices=("stats", "clear"), help="what to do with the store"
    )
    return parser


def _emit(result: QueryResult, fmt: str, out) -> int:
    """Print one result in the requested rendering; returns exit code."""
    if fmt == "json":
        print(result.to_json(), file=out)
    elif result.text:
        print(result.text, file=out)
    return result.exit_code


def _cmd_list(args, context: QueryContext, out) -> int:
    result = execute(ListArtifactsQuery(seed=args.seed), context)
    return _emit(result, args.format, out)


def _cmd_figure(args, context: QueryContext, out) -> int:
    try:
        result = execute(
            ArtifactQuery(seed=args.seed, artifact_id=args.figure_id), context
        )
    except KeyError:
        print(
            f"unknown artifact {args.figure_id!r}; run 'repro list'",
            file=sys.stderr,
        )
        return 2
    return _emit(result, args.format, out)


def _cmd_generate(args, context: QueryContext, out) -> int:
    result = execute(GenerateQuery(seed=args.seed, out=args.out), context)
    return _emit(result, args.format, out)


def _cmd_validate(args, context: QueryContext, out) -> int:
    result = execute(ValidateQuery(path=args.path), context)
    return _emit(result, args.format, out)


def _cmd_report(args, context: QueryContext, out) -> int:
    result = execute(ReportQuery(seed=args.seed, out=args.out), context)
    return _emit(result, args.format, out)


def _cmd_sweep(args, context: QueryContext, out) -> int:
    result = execute(SweepQuery(server=args.server), context)
    return _emit(result, args.format, out)


def _cmd_run_all(args, context: QueryContext, out) -> int:
    result = execute(
        RunAllQuery(
            seed=args.seed,
            output_dir=args.output_dir,
            jobs=args.jobs,
            show_report=args.report,
            on_error=args.on_error,
            retry=args.retry,
            timeout_s=args.timeout,
            inject=args.inject,
            use_cache=args.cache,
            cache_dir=args.cache_dir,
        ),
        context,
    )
    return _emit(result, args.format, out)


def _cmd_ensemble(args, context: QueryContext, out) -> int:
    result = execute(
        EnsembleQuery(
            seed=args.seed,
            seeds=args.seeds,
            jobs=args.jobs,
            per_seed=args.per_seed,
        ),
        context,
    )
    return _emit(result, args.format, out)


def _cmd_fleet_replay(args, context: QueryContext, out) -> int:
    result = execute(
        ReplayQuery(
            seed=args.seed,
            servers=args.servers,
            steps=args.steps,
            policy=args.policy,
            fleet_backend=args.backend,
            power_off_unused=args.power_off_unused,
        ),
        context,
    )
    return _emit(result, args.format, out)


def _cmd_cache(args, context: QueryContext, out) -> int:
    result = execute(
        CacheQuery(action=args.action, cache_dir=args.cache_dir), context
    )
    return _emit(result, args.format, out)


def _cmd_query(args, context: QueryContext, out) -> int:
    spec = args.spec
    if spec.startswith("@"):
        with open(spec[1:], "r", encoding="utf-8") as handle:
            spec = handle.read()
    try:
        payload = json.loads(spec)
        if not isinstance(payload, dict):
            raise ValueError("request spec must be a JSON object")
        request = request_from_dict(payload)
        result = execute(request, context)
    except (ValueError, KeyError) as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 2
    fmt = payload.get("format", args.format)
    return _emit(result, fmt, out)


def _resolve_workers(value: str) -> int:
    """Parse ``--workers``: 'auto' means cores-1, never negative."""
    if value == "auto":
        return max(0, (os.cpu_count() or 1) - 1)
    workers = int(value)
    if workers < 0:
        raise ValueError(f"--workers must be >= 0 or 'auto', got {workers}")
    return workers


def _cmd_serve(args, context: QueryContext, out) -> int:
    from repro.serve.daemon import run_daemon
    from repro.serve.resilience import ServeLimits

    try:
        workers = _resolve_workers(args.workers)
        limits = ServeLimits(
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            drain_s=args.drain_s,
            breaker_failures=args.breaker_failures,
            breaker_cooldown_s=args.breaker_cooldown_s,
        )
    except ValueError as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 2
    return run_daemon(
        host=args.host,
        port=args.port,
        seed=args.seed,
        cache_dir=args.cache_dir if (args.cache or args.cache_dir) else None,
        out=out,
        limits=limits,
        workers=workers,
    )


_COMMANDS = {
    "list": _cmd_list,
    "figure": _cmd_figure,
    "generate": _cmd_generate,
    "validate": _cmd_validate,
    "report": _cmd_report,
    "sweep": _cmd_sweep,
    "run-all": _cmd_run_all,
    "ensemble": _cmd_ensemble,
    "fleet-replay": _cmd_fleet_replay,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = sys.stdout if out is None else out
    args = _build_parser().parse_args(argv)
    if args.command == "checks":
        return cmd_checks(args, out)
    cache = None
    if args.cache or args.cache_dir is not None:
        cache = ArtifactCache(args.cache_dir or DEFAULT_CACHE_DIR)
    context = QueryContext(cache=cache)
    command = _COMMANDS.get(args.command)
    if command is None:
        raise AssertionError(f"unhandled command {args.command!r}")
    return command(args, context, out)
