"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` -- enumerate the reproducible artifacts;
* ``figure <id>`` -- regenerate one artifact and print it;
* ``generate --out corpus.csv`` -- write the calibrated corpus to CSV;
* ``validate <corpus.csv>`` -- lint a corpus for integrity problems;
* ``report --out EXPERIMENTS.md`` -- write the paper-vs-measured report;
* ``sweep <server#>`` -- run a Table II memory x frequency sweep;
* ``run-all --output-dir DIR`` -- render every artifact to files;
  ``--on-error isolate`` quarantines failures instead of aborting,
  ``--retry N``/``--timeout S`` bound each build, and
  ``--inject PLAN.json`` runs the build under a deterministic
  fault-injection plan (see :mod:`repro.core.faults`);
* ``ensemble --seeds N --jobs J`` -- recompute the headline statistics
  over N seeded corpora and print mean/CI summaries;
* ``fleet-replay --servers N --steps S`` -- replay a diurnal day over
  a tiled N-server fleet through the columnar (or scalar) engine;
* ``checks [paths]`` -- run the domain-aware static analysis
  (determinism, registry, concurrency, reference-parity rules);
* ``cache stats|clear`` -- inspect or empty the artifact cache.

The global ``--jobs N`` option widens the execution engine's thread
pool and ``--cache`` (with optional ``--cache-dir DIR``) enables the
content-addressed artifact cache (default store: ``.repro_cache/``),
so e.g. ``python -m repro --jobs 4 --cache run-all`` builds in
parallel and a repeat invocation is served from disk.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.checks.cli import add_checks_parser, cmd_checks
from repro.core.cache import DEFAULT_CACHE_DIR, ArtifactCache
from repro.core.pipeline import build_experiments_report
from repro.core.registry import REGISTRY
from repro.core.study import Study
from repro.dataset.io import save_corpus
from repro.dataset.synthesis import generate_corpus


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Energy Proportional Servers: Where Are We "
            "in 2016?' (ICDCS 2017)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=2016, help="corpus generation seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the artifact engine (default 1 = serial)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            "enable the content-addressed artifact cache "
            f"(default store: {DEFAULT_CACHE_DIR}/)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache store directory (implies --cache)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="enumerate the reproducible artifacts")

    figure = commands.add_parser("figure", help="regenerate one artifact")
    figure.add_argument("figure_id", help="artifact id, e.g. fig3 or eq2")

    generate = commands.add_parser("generate", help="write the corpus to CSV")
    generate.add_argument("--out", default="corpus.csv", help="output path")

    validate = commands.add_parser(
        "validate", help="lint a corpus CSV for integrity problems"
    )
    validate.add_argument("path", help="corpus CSV to check")

    report = commands.add_parser(
        "report", help="write the paper-vs-measured report"
    )
    report.add_argument("--out", default="EXPERIMENTS.md", help="output path")

    sweep = commands.add_parser(
        "sweep", help="run a Table II memory x frequency sweep"
    )
    sweep.add_argument(
        "server", type=int, choices=(1, 2, 3, 4), help="testbed server number"
    )

    run_all = commands.add_parser(
        "run-all", help="render every artifact to files"
    )
    run_all.add_argument(
        "--output-dir", default="artifacts", help="directory for the renders"
    )
    run_all.add_argument(
        "--report",
        action="store_true",
        help="print per-artifact wall times and cache hits",
    )
    run_all.add_argument(
        "--on-error",
        choices=("raise", "isolate"),
        default="raise",
        help=(
            "failure semantics: 'raise' aborts on the first builder error, "
            "'isolate' quarantines the failing artifact (plus dependents) "
            "and finishes the rest (default: raise)"
        ),
    )
    run_all.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help="total attempts per artifact (deterministic backoff; default 1)",
    )
    run_all.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-artifact wall-clock budget in seconds (default: none)",
    )
    run_all.add_argument(
        "--inject",
        default=None,
        metavar="PLAN.json",
        help="deterministic fault-injection plan to run the build under",
    )

    ensemble = commands.add_parser(
        "ensemble",
        help="across-seed stability of the headline statistics",
    )
    ensemble.add_argument(
        "--seeds",
        type=int,
        default=5,
        metavar="N",
        help="ensemble size: N consecutive seeds starting at --seed (default 5)",
    )
    ensemble.add_argument(
        "--per-seed",
        action="store_true",
        help="also print the per-seed statistics rows",
    )

    fleet_replay = commands.add_parser(
        "fleet-replay",
        help="replay a diurnal day over a tiled fleet at scale",
    )
    fleet_replay.add_argument(
        "--servers",
        type=int,
        default=1000,
        metavar="N",
        help="fleet size; the 2016 corpus cohort is tiled to N (default 1000)",
    )
    fleet_replay.add_argument(
        "--steps",
        type=int,
        default=96,
        metavar="S",
        help="trace steps per day (default 96)",
    )
    fleet_replay.add_argument(
        "--policy",
        choices=("ep-aware", "pack-to-full"),
        default="ep-aware",
        help="placement policy to replay (default ep-aware)",
    )
    fleet_replay.add_argument(
        "--backend",
        choices=("auto", "scalar", "columnar"),
        default="auto",
        help="fleet engine to use (default auto)",
    )
    fleet_replay.add_argument(
        "--power-off-unused",
        action="store_true",
        help="power unused servers off instead of idling them",
    )

    add_checks_parser(commands)

    cache = commands.add_parser(
        "cache", help="inspect or empty the artifact cache"
    )
    cache.add_argument(
        "action", choices=("stats", "clear"), help="what to do with the store"
    )
    return parser


def _cmd_list(out) -> int:
    width = max(len(figure_id) for figure_id in REGISTRY)
    for figure_id, spec in REGISTRY.items():
        print(f"{figure_id:<{width}}  {spec.description}", file=out)
    return 0


def _cmd_figure(study: Study, figure_id: str, out) -> int:
    if figure_id not in REGISTRY:
        print(
            f"unknown artifact {figure_id!r}; run 'repro list'", file=sys.stderr
        )
        return 2
    result = study.figure(figure_id)
    print(f"== {figure_id}: {result.title} ==", file=out)
    print(result.text, file=out)
    return 0


def _cmd_generate(seed: int, path: str, out) -> int:
    corpus = generate_corpus(seed)
    save_corpus(corpus, path)
    print(f"wrote {len(corpus)} results to {path}", file=out)
    return 0


def _cmd_validate(path: str, out) -> int:
    from repro.dataset.io import load_corpus
    from repro.dataset.validation import errors_only, validate_corpus

    corpus = load_corpus(path)
    findings = validate_corpus(corpus)
    for finding in findings:
        print(finding, file=out)
    errors = errors_only(findings)
    print(
        f"{len(corpus)} results: {len(errors)} error(s), "
        f"{len(findings) - len(errors)} warning(s)",
        file=out,
    )
    return 1 if errors else 0


def _cmd_report(study: Study, path: str, out) -> int:
    Path(path).write_text(build_experiments_report(study))
    print(f"wrote {path}", file=out)
    return 0


def _cmd_sweep(server_number: int, out) -> int:
    from repro.hwexp.sweeps import run_sweep
    from repro.hwexp.testbed import TESTBED
    from repro.viz.tables import format_table

    server = TESTBED[server_number]
    sweep = run_sweep(server)
    rows = []
    for mpc in server.tested_memory_per_core:
        for frequency in list(server.frequencies_ghz) + ["ondemand"]:
            cell = sweep.cell(mpc, frequency)
            rows.append(
                [
                    f"{mpc:g}",
                    frequency if isinstance(frequency, str) else f"{frequency:g}",
                    cell.overall_efficiency,
                    cell.peak_power_w,
                ]
            )
    print(
        format_table(
            ["GB/core", "freq (GHz)", "EE (ops/W)", "peak W"],
            rows,
            title=f"server #{server_number}: {server.name}",
            float_format="{:.1f}",
        ),
        file=out,
    )
    print(f"best memory per core: {sweep.best_memory_per_core():g} GB", file=out)
    return 0


def _cmd_run_all(
    study: Study,
    output_dir: str,
    out,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    show_report: bool = False,
    on_error: str = "raise",
    retry: Optional[int] = None,
    timeout_s: Optional[float] = None,
    inject: Optional[str] = None,
) -> int:
    from repro.core.faults import FaultPlan
    from repro.core.resilience import RetryPolicy

    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    faults = FaultPlan.load(inject) if inject is not None else None
    policy = RetryPolicy(attempts=retry) if retry is not None else None
    run_report = study.run_all(
        jobs=jobs,
        cache=cache,
        report=True,
        on_error=on_error,
        retry=policy,
        timeout_s=timeout_s,
        faults=faults,
    )
    for figure_id, result in run_report.results.items():
        (directory / f"{figure_id}.txt").write_text(
            f"== {result.title} ==\n{result.text}\n"
        )
    if show_report:
        print(run_report.render(), file=out)
    built = len(run_report.results)
    print(f"wrote {built} of {len(REGISTRY)} artifacts to {directory}/", file=out)
    if run_report.failures:
        print(run_report.failures.render(), file=out)
        return 1
    return 0


def _cmd_ensemble(
    seed: int, count: int, jobs: int, per_seed: bool, out
) -> int:
    from repro.core.ensemble import run_ensemble
    from repro.viz.tables import format_table

    result = run_ensemble(count, jobs=jobs, base_seed=seed)
    if per_seed:
        rows = [
            [
                stats.seed,
                stats.ep_mean,
                stats.ee_mean,
                stats.eq2_r_squared,
                stats.corr_ep_idle,
            ]
            for stats in result.per_seed
        ]
        print(
            format_table(
                ["seed", "mean EP", "mean EE", "Eq.2 R^2", "corr(EP,idle)"],
                rows,
                title="per-seed headline statistics",
                float_format="{:.4f}",
            ),
            file=out,
        )
    print(result.render(), file=out)
    return 0


def _cmd_fleet_replay(
    seed: int,
    servers: int,
    steps: int,
    policy: str,
    backend: str,
    power_off_unused: bool,
    out,
) -> int:
    from repro.cluster.fleet_arrays import tile_fleet
    from repro.cluster.trace import diurnal_trace, replay_trace

    corpus = generate_corpus(seed)
    base = corpus.by_hw_year(2016).results()
    fleet = tile_fleet(base, servers)
    trace = diurnal_trace(steps_per_day=steps, noise=0.0)
    outcome = replay_trace(
        fleet, trace, policy, power_off_unused, fleet_backend=backend
    )
    print(
        f"{servers} servers x {steps} steps, {policy}, backend={backend}",
        file=out,
    )
    print(
        f"energy {outcome.energy_kwh:.1f} kWh/day, "
        f"served {outcome.served_gops:.1f} Gops, "
        f"{outcome.unserved_steps} unserved step(s)",
        file=out,
    )
    return 0


def _cmd_cache(action: str, cache: Optional[ArtifactCache], out) -> int:
    cache = cache if cache is not None else ArtifactCache()
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr(ies) from {cache.root}/", file=out)
        return 0
    entries = cache.entries()
    print(
        f"{cache.root}/: {len(entries)} entr(ies), "
        f"{cache.size_bytes() / 1024.0:.1f} KiB, "
        f"engine version {cache.engine_version}",
        file=out,
    )
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = sys.stdout if out is None else out
    args = _build_parser().parse_args(argv)
    cache = None
    if args.cache or args.cache_dir is not None:
        cache = ArtifactCache(args.cache_dir or DEFAULT_CACHE_DIR)

    if args.command == "list":
        return _cmd_list(out)
    if args.command == "generate":
        return _cmd_generate(args.seed, args.out, out)
    if args.command == "validate":
        return _cmd_validate(args.path, out)
    if args.command == "sweep":
        return _cmd_sweep(args.server, out)
    if args.command == "cache":
        return _cmd_cache(args.action, cache, out)
    if args.command == "ensemble":
        return _cmd_ensemble(args.seed, args.seeds, args.jobs, args.per_seed, out)
    if args.command == "checks":
        return cmd_checks(args, out)
    if args.command == "fleet-replay":
        return _cmd_fleet_replay(
            args.seed,
            args.servers,
            args.steps,
            args.policy,
            args.backend,
            args.power_off_unused,
            out,
        )

    study = Study(seed=args.seed)
    if args.command == "figure":
        return _cmd_figure(study, args.figure_id, out)
    if args.command == "report":
        return _cmd_report(study, args.out, out)
    if args.command == "run-all":
        return _cmd_run_all(
            study,
            args.output_dir,
            out,
            jobs=args.jobs,
            cache=cache,
            show_report=args.report,
            on_error=args.on_error,
            retry=args.retry,
            timeout_s=args.timeout,
            inject=args.inject,
        )
    raise AssertionError(f"unhandled command {args.command!r}")
