"""Reproduction of "Energy Proportional Servers: Where Are We in 2016?".

This package reproduces the ICDCS 2017 measurement study by Jiang et al.
It contains:

* :mod:`repro.metrics` -- energy-proportionality (EP) and energy-efficiency
  (EE) metrics, curve analysis, correlation and regression tools.
* :mod:`repro.power` -- component-level server power models (CPU with DVFS,
  DRAM, disks, fans, PSU) and frequency governors.
* :mod:`repro.ssj` -- a discrete-event SPECpower_ssj2008-style benchmark
  simulator (calibration, graduated load levels, power metering, reports).
* :mod:`repro.dataset` -- a calibrated synthetic corpus of 477 SPECpower
  results matching the statistical shape of the published results the
  paper analyses.
* :mod:`repro.analysis` -- the paper's analyses: hardware-availability-year
  reorganization, trend statistics, CDFs, grouping, peak-EE shifting,
  asynchrony, and the idle-power regression (Eq. 2).
* :mod:`repro.hwexp` -- models of the paper's 4-server testbed (Table II)
  and the memory-per-core / DVFS sweep experiments (Figs. 18-21).
* :mod:`repro.cluster` -- Section V operational guidance: optimal working
  regions, logical clusters, and EP-aware workload placement.
* :mod:`repro.core` -- the one-call study pipeline: a declarative
  artifact registry, a parallel execution engine with a
  content-addressed artifact cache, and the Study facade regenerating
  every figure and table in the paper.
* :mod:`repro.api` -- the unified query layer: typed ``QueryRequest``
  families, one dispatch table, and provenance-stamped ``QueryResult``
  envelopes shared by the CLI, :class:`Study`, and the daemon.
* :mod:`repro.serve` -- the async HTTP query daemon (``repro serve``)
  with request coalescing, fleet-query batching, and a response memo.
"""

from repro.api import QueryResult, execute, request_from_dict
from repro.core.cache import ArtifactCache
from repro.core.ensemble import EnsembleResult, run_ensemble
from repro.core.executor import ArtifactExecutor, RunReport
from repro.core.registry import ArtifactSpec
from repro.core.study import FigureResult, Study
from repro.dataset.corpus import Corpus
from repro.dataset.synthesis import generate_corpus
from repro.metrics.ee import overall_score, peak_efficiency
from repro.metrics.ep import energy_proportionality

__version__ = "1.2.0"

__all__ = [
    "ArtifactCache",
    "ArtifactExecutor",
    "ArtifactSpec",
    "Corpus",
    "EnsembleResult",
    "FigureResult",
    "QueryResult",
    "RunReport",
    "Study",
    "__version__",
    "energy_proportionality",
    "execute",
    "generate_corpus",
    "overall_score",
    "peak_efficiency",
    "request_from_dict",
    "run_ensemble",
]
