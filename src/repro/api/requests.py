"""The typed query surface: one frozen request dataclass per family.

Every way of asking this repo a question -- a CLI subcommand, a
:meth:`repro.core.study.Study.query` call, an HTTP ``POST /query`` to
the :mod:`repro.serve` daemon -- builds one of these requests and
hands it to :func:`repro.api.dispatch.execute`.  A request is a frozen
dataclass with explicit ``seed`` / ``fleet_backend`` / ``format``
fields, validated at construction, so there is exactly one place where
argument plumbing and defaulting happen.

Identity: :func:`canonical_spec` renders the request as canonical JSON
*excluding* ``format`` (a rendering preference) and ``fleet_backend``
(the scalar, columnar, and sharded engines are bit-identical per the
REP4xx parity contract, so the backend is provenance, not identity).  The
spec hash derived from it keys the artifact cache, the daemon's
coalescing map, and its response memo.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional, Tuple, Type

#: Accepted ``fleet_backend`` values (mirrors the cluster resolvers).
FLEET_BACKENDS = ("auto", "scalar", "columnar", "sharded")

#: Accepted ``format`` values (CLI rendering preference).
FORMATS = ("text", "json")

#: Placement policies understood by the fleet query families.
POLICIES = ("ep-aware", "pack-to-full")

#: Metrics the stats/cdf families can slice.
METRICS = ("ep", "score", "peak_ee", "idle_fraction", "memory_per_core_gb")

#: Groupings the group family understands.
GROUP_KEYS = ("family", "codename", "memory_per_core")


@dataclass(frozen=True)
class QueryRequest:
    """Base of every query family.

    Subclasses set the class-level ``family`` tag plus three traits:
    ``servable`` (the daemon accepts it), ``cacheable`` (results may be
    memoized / written to the artifact cache), and ``needs_corpus``
    (the handler touches the seeded corpus, so provenance carries its
    fingerprint).  Instances are frozen and validated on construction.
    """

    family: ClassVar[str] = ""
    servable: ClassVar[bool] = True
    cacheable: ClassVar[bool] = True
    needs_corpus: ClassVar[bool] = True

    seed: int = 2016
    fleet_backend: str = "auto"
    format: str = "text"

    def __post_init__(self) -> None:
        if self.fleet_backend not in FLEET_BACKENDS:
            raise ValueError(
                f"unknown fleet_backend {self.fleet_backend!r}; "
                f"choose from {list(FLEET_BACKENDS)}"
            )
        if self.format not in FORMATS:
            raise ValueError(
                f"unknown format {self.format!r}; choose from {list(FORMATS)}"
            )
        self.validate()

    def validate(self) -> None:
        """Family-specific field validation; raises ``ValueError``."""

    def spec_fields(self) -> Dict[str, Any]:
        """The identity-bearing fields, for :func:`canonical_spec`.

        Excludes ``format`` (rendering only) and ``fleet_backend``
        (all backends are bit-identical; which one served the query is
        recorded in provenance instead).
        """
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("format", "fleet_backend")
        }

    def to_dict(self) -> Dict[str, Any]:
        """The wire form: every field plus the ``family`` tag."""
        payload: Dict[str, Any] = {"family": type(self).family}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class ListArtifactsQuery(QueryRequest):
    """Enumerate the registered artifacts (``repro list``)."""

    family: ClassVar[str] = "list"
    cacheable: ClassVar[bool] = False
    needs_corpus: ClassVar[bool] = False


@dataclass(frozen=True)
class ArtifactQuery(QueryRequest):
    """Regenerate one registered artifact (``repro figure <id>``)."""

    family: ClassVar[str] = "artifact"

    artifact_id: str = ""

    def validate(self) -> None:
        """Require a non-empty artifact id."""
        _require(bool(self.artifact_id), "artifact_id must be non-empty")


@dataclass(frozen=True)
class StatsQuery(QueryRequest):
    """Summary statistics of one metric over a corpus slice."""

    family: ClassVar[str] = "stats"

    metric: str = "ep"
    hw_year_min: Optional[int] = None
    hw_year_max: Optional[int] = None

    def validate(self) -> None:
        """Require a known metric and an ordered year range."""
        _require(
            self.metric in METRICS,
            f"unknown metric {self.metric!r}; choose from {list(METRICS)}",
        )
        if self.hw_year_min is not None and self.hw_year_max is not None:
            _require(
                self.hw_year_min <= self.hw_year_max,
                "hw_year_min must not exceed hw_year_max",
            )


@dataclass(frozen=True)
class CdfQuery(QueryRequest):
    """Empirical-CDF landmarks of one metric (Fig. 5 family)."""

    family: ClassVar[str] = "cdf"

    metric: str = "ep"
    lo: Optional[float] = None
    hi: Optional[float] = None

    def validate(self) -> None:
        """Require a known metric and an ordered [lo, hi) band."""
        _require(
            self.metric in METRICS,
            f"unknown metric {self.metric!r}; choose from {list(METRICS)}",
        )
        _require(
            (self.lo is None) == (self.hi is None),
            "pass both of lo/hi or neither",
        )
        if self.lo is not None and self.hi is not None:
            _require(self.lo < self.hi, "need lo < hi")


@dataclass(frozen=True)
class GroupQuery(QueryRequest):
    """Population/EP breakdown by family, codename, or GB-per-core."""

    family: ClassVar[str] = "group"

    by: str = "family"

    def validate(self) -> None:
        """Require a known grouping key."""
        _require(
            self.by in GROUP_KEYS,
            f"unknown grouping {self.by!r}; choose from {list(GROUP_KEYS)}",
        )


@dataclass(frozen=True)
class PlacementQuery(QueryRequest):
    """A placement what-if at one demand level (Section V.C)."""

    family: ClassVar[str] = "placement"

    policy: str = "ep-aware"
    demand_fraction: float = 0.5
    hw_year_min: int = 2013
    hw_year_max: int = 2016
    servers: Optional[int] = None
    power_off_unused: bool = False

    def validate(self) -> None:
        """Require a known policy, a sane demand, an ordered cohort."""
        _require(
            self.policy in POLICIES,
            f"unknown policy {self.policy!r}; choose from {list(POLICIES)}",
        )
        _require(
            0.0 <= self.demand_fraction <= 1.0,
            "demand_fraction must lie in [0, 1]",
        )
        _require(
            self.hw_year_min <= self.hw_year_max,
            "hw_year_min must not exceed hw_year_max",
        )
        _require(
            self.servers is None or self.servers > 0,
            "servers must be positive when given",
        )


@dataclass(frozen=True)
class CapQuery(QueryRequest):
    """``max_throughput_under_cap`` under a fixed power budget."""

    family: ClassVar[str] = "cap"

    power_cap_w: float = 0.0
    policy: str = "ep-aware"
    hw_year_min: int = 2013
    hw_year_max: int = 2016
    servers: Optional[int] = None
    power_off_unused: bool = False

    def validate(self) -> None:
        """Require a positive cap, known policy, ordered cohort."""
        _require(self.power_cap_w > 0.0, "power_cap_w must be positive")
        _require(
            self.policy in POLICIES,
            f"unknown policy {self.policy!r}; choose from {list(POLICIES)}",
        )
        _require(
            self.hw_year_min <= self.hw_year_max,
            "hw_year_min must not exceed hw_year_max",
        )
        _require(
            self.servers is None or self.servers > 0,
            "servers must be positive when given",
        )


@dataclass(frozen=True)
class ReplayQuery(QueryRequest):
    """A diurnal-day trace replay over a tiled fleet."""

    family: ClassVar[str] = "replay"

    servers: int = 1000
    steps: int = 96
    policy: str = "ep-aware"
    power_off_unused: bool = False
    hw_year_min: int = 2016
    hw_year_max: int = 2016

    def validate(self) -> None:
        """Require positive sizes, a known policy, ordered cohort."""
        _require(self.servers > 0, "servers must be positive")
        _require(self.steps >= 4, "need at least four trace steps")
        _require(
            self.policy in POLICIES,
            f"unknown policy {self.policy!r}; choose from {list(POLICIES)}",
        )
        _require(
            self.hw_year_min <= self.hw_year_max,
            "hw_year_min must not exceed hw_year_max",
        )


@dataclass(frozen=True)
class SweepQuery(QueryRequest):
    """A Table II memory x frequency sweep (``repro sweep N``)."""

    family: ClassVar[str] = "sweep"
    needs_corpus: ClassVar[bool] = False

    server: int = 4

    def validate(self) -> None:
        """Require a Table II server number."""
        _require(
            self.server in (1, 2, 3, 4),
            f"unknown testbed server {self.server}; choose from [1, 2, 3, 4]",
        )


@dataclass(frozen=True)
class EnsembleQuery(QueryRequest):
    """Across-seed headline statistics (``repro ensemble``)."""

    family: ClassVar[str] = "ensemble"
    servable: ClassVar[bool] = False  # spawns a process pool
    cacheable: ClassVar[bool] = False

    seeds: int = 5
    jobs: int = 1
    per_seed: bool = False

    def validate(self) -> None:
        """Require positive ensemble size and worker count."""
        _require(self.seeds > 0, "seeds must be positive")
        _require(self.jobs > 0, "jobs must be positive")


@dataclass(frozen=True)
class GenerateQuery(QueryRequest):
    """Write the calibrated corpus to CSV (``repro generate``)."""

    family: ClassVar[str] = "generate"
    servable: ClassVar[bool] = False  # writes to the local filesystem
    cacheable: ClassVar[bool] = False

    out: str = "corpus.csv"


@dataclass(frozen=True)
class ValidateQuery(QueryRequest):
    """Lint a corpus CSV for integrity problems (``repro validate``)."""

    family: ClassVar[str] = "validate"
    servable: ClassVar[bool] = False  # reads the local filesystem
    cacheable: ClassVar[bool] = False
    needs_corpus: ClassVar[bool] = False

    path: str = ""

    def validate(self) -> None:
        """Require a corpus path."""
        _require(bool(self.path), "path must be non-empty")


@dataclass(frozen=True)
class ReportQuery(QueryRequest):
    """Write the paper-vs-measured report (``repro report``)."""

    family: ClassVar[str] = "report"
    servable: ClassVar[bool] = False  # writes to the local filesystem
    cacheable: ClassVar[bool] = False

    out: str = "EXPERIMENTS.md"


@dataclass(frozen=True)
class RunAllQuery(QueryRequest):
    """Render every artifact to files (``repro run-all``)."""

    family: ClassVar[str] = "run_all"
    servable: ClassVar[bool] = False  # writes files, may fork the build
    cacheable: ClassVar[bool] = False

    output_dir: str = "artifacts"
    jobs: int = 1
    show_report: bool = False
    on_error: str = "raise"
    retry: Optional[int] = None
    timeout_s: Optional[float] = None
    inject: Optional[str] = None
    use_cache: bool = False
    cache_dir: Optional[str] = None

    def validate(self) -> None:
        """Require known failure semantics and positive bounds."""
        _require(
            self.on_error in ("raise", "isolate"),
            "on_error must be 'raise' or 'isolate'",
        )
        _require(self.jobs > 0, "jobs must be positive")
        _require(
            self.retry is None or self.retry > 0,
            "retry must be positive when given",
        )


@dataclass(frozen=True)
class CacheQuery(QueryRequest):
    """Inspect or empty the artifact cache (``repro cache``)."""

    family: ClassVar[str] = "cache"
    servable: ClassVar[bool] = False  # mutates the local store
    cacheable: ClassVar[bool] = False
    needs_corpus: ClassVar[bool] = False

    action: str = "stats"
    cache_dir: Optional[str] = None

    def validate(self) -> None:
        """Require a known cache action."""
        _require(
            self.action in ("stats", "clear"),
            "action must be 'stats' or 'clear'",
        )


#: Every request family, in catalog order.
REQUEST_TYPES: Tuple[Type[QueryRequest], ...] = (
    ListArtifactsQuery,
    ArtifactQuery,
    StatsQuery,
    CdfQuery,
    GroupQuery,
    PlacementQuery,
    CapQuery,
    ReplayQuery,
    SweepQuery,
    EnsembleQuery,
    GenerateQuery,
    ValidateQuery,
    ReportQuery,
    RunAllQuery,
    CacheQuery,
)

#: family tag -> request type.
FAMILIES: Dict[str, Type[QueryRequest]] = {
    cls.family: cls for cls in REQUEST_TYPES
}

#: The families the cluster batching layer may merge (they share one
#: fleet/engine per cohort).
FLEET_FAMILIES = ("placement", "cap", "replay")

#: Wire fields that address the *transport*, not the query: the serve
#: layer strips these before strict decoding.  ``deadline_ms`` bounds
#: one exchange and never participates in spec identity.
TRANSPORT_FIELDS = ("deadline_ms",)


def request_from_dict(payload: Dict[str, Any]) -> QueryRequest:
    """Build a request from its wire form; strict about field names."""
    if not isinstance(payload, dict):
        raise ValueError("query payload must be a JSON object")
    family = payload.get("family")
    if family not in FAMILIES:
        raise ValueError(
            f"unknown query family {family!r}; "
            f"choose from {sorted(FAMILIES)}"
        )
    cls = FAMILIES[family]
    known = {f.name for f in fields(cls)}
    kwargs = {key: value for key, value in payload.items() if key != "family"}
    unknown = sorted(set(kwargs) - known)
    if unknown:
        hint = ""
        if any(name in TRANSPORT_FIELDS for name in unknown):
            hint = (
                " (transport fields like 'deadline_ms' are only understood "
                "by the serve daemon)"
            )
        raise ValueError(
            f"unknown field(s) {unknown} for query family {family!r}; "
            f"known fields: {sorted(known)}{hint}"
        )
    return cls(**kwargs)


def canonical_spec(request: QueryRequest) -> str:
    """Canonical JSON identity of a request (family + spec fields)."""
    document = {"family": type(request).family}
    document.update(request.spec_fields())
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def spec_suffix(request: QueryRequest) -> str:
    """The artifact-cache id this request's result is stored under.

    Artifact queries reuse the bare artifact id so they share disk
    entries with ``Study.run_all`` warm caches; every other family
    hashes its canonical spec under an ``api:`` namespace.
    """
    if isinstance(request, ArtifactQuery):
        return request.artifact_id
    digest = hashlib.sha256(canonical_spec(request).encode()).hexdigest()
    return f"api:{type(request).family}:{digest[:16]}"
