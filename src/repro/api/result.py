"""The uniform answer envelope: payload plus provenance.

Every query family returns a :class:`QueryResult` -- the structured
``payload`` (plain dicts/lists/floats), the terminal ``text``
rendering (byte-identical to the pre-redesign CLI output where tests
pin it), a process ``exit_code``, and a :class:`Provenance` block
recording exactly how the answer was produced: corpus fingerprint,
spec key, engine/API versions, the *concrete* fleet backend that
served it, whether the disk cache hit, and the wall time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.api.serialize import jsonify

#: Version of the query API envelope.
API_VERSION = "1"


@dataclass(frozen=True)
class Provenance:
    """How one :class:`QueryResult` came to be."""

    fingerprint: str
    spec_key: str
    engine_version: str
    api_version: str = API_VERSION
    fleet_backend: str = "-"
    cache_hit: bool = False
    wall_time_ms: float = 0.0
    #: Which serve worker executed the query: ``w<N>`` under the
    #: process-pool tier, ``-`` for in-thread execution (and for
    #: everything outside the daemon).  Excluded from byte-identity
    #: comparisons across ``--workers`` settings.
    worker: str = "-"

    def to_dict(self) -> Dict[str, Any]:
        """The JSON form of the provenance block."""
        return {
            "fingerprint": self.fingerprint,
            "spec_key": self.spec_key,
            "engine_version": self.engine_version,
            "api_version": self.api_version,
            "fleet_backend": self.fleet_backend,
            "cache_hit": self.cache_hit,
            "wall_time_ms": self.wall_time_ms,
            "worker": self.worker,
        }


@dataclass(frozen=True)
class QueryResult:
    """One answered query: payload + text + provenance + exit code."""

    family: str
    payload: Dict[str, Any] = field(default_factory=dict)
    text: str = ""
    provenance: Provenance = Provenance("", "", "")
    exit_code: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """The JSON envelope (payload passed through :func:`jsonify`)."""
        return {
            "family": self.family,
            "payload": jsonify(self.payload),
            "text": self.text,
            "provenance": self.provenance.to_dict(),
            "exit_code": self.exit_code,
        }

    def to_json(self, indent: int = 2) -> str:
        """The envelope rendered as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
