"""JSON-safe conversion of query payloads.

Handler payloads carry whatever the analysis layers produce -- numpy
scalars and arrays, enum members, tuple-keyed dicts (the CDF decile
bands), nested dataclass-free structures.  :func:`jsonify` converts
them to plain JSON types without touching float values (so a payload
compared float-for-float before and after serialization stays equal).
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np


def jsonify(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-representable types.

    Numpy scalars become python scalars, arrays become lists, enums
    collapse to their ``value``, tuples become lists, and non-string
    dict keys are rendered with ``str()`` (tuple keys joined by ``-``).
    """
    if isinstance(value, dict):
        return {_key(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, enum.Enum):
        return jsonify(value.value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return "-".join(str(jsonify(part)) for part in key)
    if isinstance(key, enum.Enum):
        return str(key.value)
    return str(key)
