"""One dispatch table for every query path (CLI, Study, daemon).

:func:`execute` is the single entry point: it resolves the concrete
fleet backend *before* hashing (the cache-key audit: ``"auto"`` never
leaks into identity, and provenance records which engine actually
served the query), probes the content-addressed artifact cache under
the same fingerprint+spec key the executor uses, routes the request to
its family handler, and wraps the answer in a
:class:`~repro.api.result.QueryResult` envelope.

:class:`QueryContext` is the warm state a long-lived process (the
:mod:`repro.serve` daemon, a REPL session) shares across queries:
corpora, corpus slices, studies, tiled fleets, columnar placement
engines and trace replayers, all memoized under one lock so concurrent
executor threads build each at most once.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.api.requests import (
    ArtifactQuery,
    CacheQuery,
    CapQuery,
    CdfQuery,
    EnsembleQuery,
    FAMILIES,
    FLEET_FAMILIES,
    GenerateQuery,
    GroupQuery,
    ListArtifactsQuery,
    PlacementQuery,
    QueryRequest,
    ReplayQuery,
    ReportQuery,
    RunAllQuery,
    SweepQuery,
    StatsQuery,
    ValidateQuery,
    spec_suffix,
)
from repro.api.result import API_VERSION, Provenance, QueryResult
from repro.core.cache import (
    DEFAULT_CACHE_DIR,
    ENGINE_VERSION,
    ArtifactCache,
    cache_key,
)


@dataclass
class Built:
    """What a family handler produced, before envelope wrapping."""

    payload: Dict[str, Any]
    text: str
    exit_code: int = 0
    artifact: Optional[Any] = None  # FigureResult persisted for run_all reuse


Handler = Callable[[QueryRequest, "QueryContext"], Built]

#: request type -> handler, the one dispatch table.
DISPATCH: Dict[Type[QueryRequest], Handler] = {}


def handler(request_type: Type[QueryRequest]) -> Callable[[Handler], Handler]:
    """Register a family handler in :data:`DISPATCH`."""

    def register(fn: Handler) -> Handler:
        DISPATCH[request_type] = fn
        return fn

    return register


def build_artifact(study: Any, figure_id: str) -> Any:
    """The canonical artifact build: registry spec bound to a study.

    Both :meth:`repro.core.study.Study.figure` and the artifact query
    handler go through here, so there is exactly one build path.
    """
    from repro.core.registry import REGISTRY

    if figure_id not in REGISTRY:
        raise KeyError(f"unknown artifact {figure_id!r}")
    return REGISTRY[figure_id].bind(study)()


class QueryContext:
    """Warm, shareable state for executing queries.

    Everything is memoized under one re-entrant lock: corpora (per
    seed), filtered corpus slices, studies, tiled fleets, columnar
    placement engines and trace replayers, diurnal traces, and testbed
    sweeps.  A single context handed to concurrent executor threads
    builds each of these at most once -- which is what makes the
    daemon's batching window collapse a group of compatible fleet
    queries into one engine construction.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None):
        self.cache = cache
        self._lock = threading.RLock()
        self._corpora: Dict[int, Any] = {}
        self._slices: Dict[Tuple[int, Optional[int], Optional[int]], Any] = {}
        self._studies: Dict[Tuple[int, str], Any] = {}
        self._fleets: Dict[Tuple[int, int, int, Optional[int]], List[Any]] = {}
        self._engines: Dict[Tuple[Tuple[int, int, int, Optional[int]], str], Any] = {}
        self._replayers: Dict[int, Any] = {}
        self._traces: Dict[int, Any] = {}
        self._sweeps: Dict[int, Any] = {}

    def corpus(self, seed: int) -> Any:
        """The calibrated corpus for ``seed`` (memoized)."""
        with self._lock:
            if seed not in self._corpora:
                from repro.dataset.synthesis import generate_corpus

                self._corpora[seed] = generate_corpus(seed)
            return self._corpora[seed]

    def corpus_slice(
        self, seed: int, hw_year_min: Optional[int], hw_year_max: Optional[int]
    ) -> Any:
        """A hardware-year slice of the seeded corpus (memoized)."""
        key = (seed, hw_year_min, hw_year_max)
        with self._lock:
            if key not in self._slices:
                corpus = self.corpus(seed)
                if hw_year_min is not None or hw_year_max is not None:
                    corpus = corpus.by_hw_year_range(
                        hw_year_min if hw_year_min is not None else -(10**6),
                        hw_year_max if hw_year_max is not None else 10**6,
                    )
                self._slices[key] = corpus
            return self._slices[key]

    def study(self, request: QueryRequest) -> Any:
        """A :class:`Study` over the request's corpus (memoized)."""
        key = (request.seed, request.fleet_backend)
        with self._lock:
            if key not in self._studies:
                from repro.core.study import Study

                self._studies[key] = Study(
                    corpus=self.corpus(request.seed),
                    seed=request.seed,
                    fleet_backend=request.fleet_backend,
                )
            return self._studies[key]

    def adopt_study(self, study: Any) -> None:
        """Register an existing study (and its corpus) in the memos."""
        with self._lock:
            self._corpora.setdefault(study.seed, study.corpus)
            self._studies.setdefault(
                (study.seed, study.fleet_backend), study
            )

    # -- fleet machinery ---------------------------------------------------------

    @staticmethod
    def fleet_key(request: QueryRequest) -> Tuple[int, int, int, Optional[int]]:
        """The cohort identity of a fleet-family request."""
        servers = getattr(request, "servers", None)
        return (
            request.seed,
            getattr(request, "hw_year_min"),
            getattr(request, "hw_year_max"),
            servers,
        )

    def fleet(self, request: QueryRequest) -> List[Any]:
        """The (optionally tiled) server cohort of a fleet request."""
        key = self.fleet_key(request)
        with self._lock:
            if key not in self._fleets:
                seed, year_min, year_max, servers = key
                base = self.corpus_slice(seed, year_min, year_max).results()
                if not base:
                    raise ValueError(
                        f"empty fleet cohort: hw years {year_min}-{year_max}"
                    )
                if servers is not None:
                    from repro.cluster.fleet_arrays import tile_fleet

                    base = tile_fleet(base, servers)
                self._fleets[key] = base
            return self._fleets[key]

    def engine(self, request: QueryRequest) -> Optional[Any]:
        """The columnar engine for the request's fleet, or ``None``.

        Resolution happens here -- once per (cohort, backend) -- so
        every execution path agrees on the concrete backend and the
        engine construction is shared across a batch group.
        """
        key = (self.fleet_key(request), request.fleet_backend)
        with self._lock:
            if key not in self._engines:
                from repro.cluster.batch_placement import resolve_backend

                self._engines[key] = resolve_backend(
                    self.fleet(request), request.fleet_backend
                )
            return self._engines[key]

    def replayer(self, engine: Any) -> Any:
        """The trace replayer over ``engine`` (memoized).

        Sharded engines replay through the windowed
        :class:`~repro.cluster.sharded.ShardedTraceReplay`; columnar
        ones through :class:`~repro.cluster.batch_trace.BatchTraceReplay`.
        """
        with self._lock:
            key = id(engine)
            if key not in self._replayers:
                from repro.cluster.batch_trace import BatchTraceReplay
                from repro.cluster.sharded import (
                    ShardedFleetEngine,
                    ShardedTraceReplay,
                )

                if isinstance(engine, ShardedFleetEngine):
                    self._replayers[key] = ShardedTraceReplay(engine)
                else:
                    self._replayers[key] = BatchTraceReplay(engine)
            return self._replayers[key]

    def resolved_backend(self, request: QueryRequest) -> str:
        """The concrete backend that will serve this request.

        Fleet families resolve ``"auto"`` to
        ``"scalar"``/``"columnar"``/``"sharded"`` through the real
        resolver *before* any hashing or computation; artifact queries
        report the study's configured backend mode (they may touch
        several internal fleets); other families have no fleet and
        report ``"-"``.
        """
        if type(request).family in FLEET_FAMILIES:
            engine = self.engine(request)
            if engine is None:
                return "scalar"
            from repro.cluster.sharded import ShardedFleetEngine

            if isinstance(engine, ShardedFleetEngine):
                return "sharded"
            return "columnar"
        if isinstance(request, ArtifactQuery):
            return request.fleet_backend
        return "-"

    def trace(self, steps: int) -> Any:
        """The deterministic diurnal trace with ``steps`` steps."""
        with self._lock:
            if steps not in self._traces:
                from repro.cluster.trace import diurnal_trace

                self._traces[steps] = diurnal_trace(
                    steps_per_day=steps, noise=0.0
                )
            return self._traces[steps]

    def sweep(self, number: int) -> Any:
        """The Table II sweep for testbed server ``number`` (memoized)."""
        with self._lock:
            if number not in self._sweeps:
                from repro.hwexp.sweeps import run_sweep
                from repro.hwexp.testbed import TESTBED

                self._sweeps[number] = run_sweep(TESTBED[number])
            return self._sweeps[number]


def execute(
    request: QueryRequest,
    context: Optional[QueryContext] = None,
    cache: Optional[ArtifactCache] = None,
) -> QueryResult:
    """Answer one request through the dispatch table.

    Order matters: the concrete backend is resolved first (so
    ``fleet_backend="auto"`` can never reach the hashing step), then
    the spec key is derived and the disk cache probed, and only on a
    miss does the family handler run.  Cacheable non-artifact results
    are persisted as pickled :class:`QueryResult` envelopes; artifact
    results are persisted as plain ``FigureResult`` objects so they
    share entries with ``Study.run_all`` warm caches.
    """
    if context is None:
        context = QueryContext(cache=cache)
    family_handler = DISPATCH.get(type(request))
    if family_handler is None:
        raise ValueError(
            f"no handler registered for {type(request).__name__}"
        )
    started = time.perf_counter()
    backend = context.resolved_backend(request)
    fingerprint = (
        context.corpus(request.seed).fingerprint()
        if type(request).needs_corpus
        else ""
    )
    suffix = spec_suffix(request)
    spec_key = cache_key(fingerprint, suffix, ENGINE_VERSION)
    store = context.cache if type(request).cacheable else None

    built: Optional[Built] = None
    cache_hit = False
    if store is not None:
        hit = store.get(fingerprint, suffix)
        if hit is not None:
            cache_hit = True
            if isinstance(hit, QueryResult):
                built = Built(
                    payload=hit.payload, text=hit.text, exit_code=hit.exit_code
                )
            else:  # a FigureResult written by the artifact executor
                built = _artifact_built(request, hit)
    if built is None:
        built = family_handler(request, context)

    elapsed_ms = (time.perf_counter() - started) * 1000.0
    provenance = Provenance(
        fingerprint=fingerprint,
        spec_key=spec_key,
        engine_version=ENGINE_VERSION,
        api_version=API_VERSION,
        fleet_backend=backend,
        cache_hit=cache_hit,
        wall_time_ms=elapsed_ms,
    )
    result = QueryResult(
        family=type(request).family,
        payload=built.payload,
        text=built.text,
        provenance=provenance,
        exit_code=built.exit_code,
    )
    if store is not None and not cache_hit and built.exit_code == 0:
        store.put(
            fingerprint,
            suffix,
            built.artifact if built.artifact is not None else result,
        )
    return result


# -- family handlers -----------------------------------------------------------


@handler(ListArtifactsQuery)
def _handle_list(request: QueryRequest, context: QueryContext) -> Built:
    """Enumerate the registry, matching the classic ``repro list``."""
    from repro.core.registry import REGISTRY

    width = max(len(figure_id) for figure_id in REGISTRY)
    lines = [
        f"{figure_id:<{width}}  {spec.description}"
        for figure_id, spec in REGISTRY.items()
    ]
    payload = {
        "artifacts": [
            {
                "id": figure_id,
                "description": spec.description,
                "tags": list(spec.tags),
                "depends": list(spec.depends),
            }
            for figure_id, spec in REGISTRY.items()
        ]
    }
    return Built(payload=payload, text="\n".join(lines))


def _artifact_built(request: QueryRequest, figure) -> Built:
    payload = {
        "artifact_id": figure.figure_id,
        "title": figure.title,
        "series": figure.series,
        "text": figure.text,
    }
    text = f"== {figure.figure_id}: {figure.title} ==\n{figure.text}"
    return Built(payload=payload, text=text, artifact=figure)


@handler(ArtifactQuery)
def _handle_artifact(request: ArtifactQuery, context: QueryContext) -> Built:
    """Regenerate one artifact via the canonical registry build."""
    figure = build_artifact(context.study(request), request.artifact_id)
    return _artifact_built(request, figure)


def _metric_values(request, context: QueryContext):
    corpus = context.corpus_slice(
        request.seed,
        getattr(request, "hw_year_min", None),
        getattr(request, "hw_year_max", None),
    )
    if len(corpus) == 0:
        raise ValueError("empty corpus slice for the requested year range")
    return corpus.columns().array(request.metric)


@handler(StatsQuery)
def _handle_stats(request: StatsQuery, context: QueryContext) -> Built:
    """Summary statistics of one metric over a corpus slice."""
    import numpy as np

    values = _metric_values(request, context)
    payload = {
        "metric": request.metric,
        "hw_year_min": request.hw_year_min,
        "hw_year_max": request.hw_year_max,
        "count": int(values.size),
        "mean": float(np.mean(values)),
        "median": float(np.median(values)),
        "min": float(np.min(values)),
        "max": float(np.max(values)),
        "std": float(np.std(values)),
    }
    span = (
        f" [hw {request.hw_year_min}-{request.hw_year_max}]"
        if request.hw_year_min is not None or request.hw_year_max is not None
        else ""
    )
    text = (
        f"{request.metric} over {payload['count']} result(s){span}:\n"
        f"  mean {payload['mean']:.4f}  median {payload['median']:.4f}  "
        f"min {payload['min']:.4f}  max {payload['max']:.4f}  "
        f"std {payload['std']:.4f}"
    )
    return Built(payload=payload, text=text)


@handler(CdfQuery)
def _handle_cdf(request: CdfQuery, context: QueryContext) -> Built:
    """Empirical-CDF quantiles, decile bands, optional [lo, hi) share."""
    from repro.analysis.cdf import decile_shares, empirical_cdf

    values = _metric_values(request, context)
    cdf = empirical_cdf(values.tolist())
    quantiles = {
        f"p{int(q * 100)}": cdf.quantile(q)
        for q in (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)
    }
    deciles = [
        {"lo": lo, "hi": hi, "share": share}
        for (lo, hi), share in decile_shares(cdf).items()
    ]
    payload: Dict[str, Any] = {
        "metric": request.metric,
        "count": len(values),
        "quantiles": quantiles,
        "deciles": deciles,
    }
    lines = [f"{request.metric} CDF over {len(values)} result(s):"]
    lines.append(
        "  " + "  ".join(f"{k} {v:.4f}" for k, v in quantiles.items())
    )
    if request.lo is not None and request.hi is not None:
        share = cdf.share_in(request.lo, request.hi)
        payload["band"] = {"lo": request.lo, "hi": request.hi, "share": share}
        lines.append(
            f"  share in [{request.lo:g}, {request.hi:g}): {share:.2%}"
        )
    return Built(payload=payload, text="\n".join(lines))


@handler(GroupQuery)
def _handle_group(request: GroupQuery, context: QueryContext) -> Built:
    """Population and EP/EE breakdown under one grouping key."""
    from repro.analysis.grouping import (
        codename_ep_table,
        family_table,
        memory_per_core_table,
    )
    from repro.viz.tables import format_table

    corpus = context.corpus(request.seed)
    tables = {
        "family": family_table,
        "codename": codename_ep_table,
        "memory_per_core": memory_per_core_table,
    }
    stats = tables[request.by](corpus)
    payload = {
        "by": request.by,
        "groups": [
            {
                "label": stat.label,
                "count": stat.count,
                "ep_mean": stat.ep.mean,
                "score_mean": stat.score.mean,
            }
            for stat in stats
        ],
    }
    rows = [
        [stat.label, stat.count, stat.ep.mean, stat.score.mean]
        for stat in stats
    ]
    text = format_table(
        ["group", "count", "mean EP", "mean score"],
        rows,
        title=f"grouped by {request.by}",
        float_format="{:.4f}",
    )
    return Built(payload=payload, text=text)


def _fleet_capacity(fleet) -> float:
    from repro.cluster.fleet_arrays import TiledFleetView

    if isinstance(fleet, TiledFleetView):
        # Stream the fold over base-cycle repeats instead of cloning a
        # million records; bit-identical to the flat generator sum.
        from repro.cluster.sharded import streamed_level_capacity

        return streamed_level_capacity(fleet.base, len(fleet))
    return sum(
        level.ssj_ops
        for server in fleet
        for level in server.levels
        if level.target_load == 1.0
    )


def _outcome_payload(outcome) -> Dict[str, Any]:
    return {
        "policy": outcome.policy,
        "demand_ops": outcome.demand_ops,
        "placed_ops": outcome.placed_ops,
        "total_power_w": outcome.total_power_w,
        "unused_idle_power_w": outcome.unused_idle_power_w,
        "servers_used": outcome.servers_used,
        "fleet_efficiency": outcome.fleet_efficiency,
        "satisfied": outcome.satisfied(),
    }


@handler(PlacementQuery)
def _handle_placement(request: PlacementQuery, context: QueryContext) -> Built:
    """One placement what-if at a fractional demand level."""
    from repro.cluster.placement import (
        ep_aware_placement,
        pack_to_full_placement,
    )

    fleet = context.fleet(request)
    demand = request.demand_fraction * _fleet_capacity(fleet)
    engine = context.engine(request)
    if engine is not None:
        if request.policy == "ep-aware":
            outcome = engine.ep_aware(demand, request.power_off_unused)
        else:
            outcome = engine.pack_to_full(demand, request.power_off_unused)
    else:
        place = (
            ep_aware_placement
            if request.policy == "ep-aware"
            else pack_to_full_placement
        )
        outcome = place(
            fleet,
            demand,
            power_off_unused=request.power_off_unused,
            fleet_backend="scalar",
        )
    payload = _outcome_payload(outcome)
    payload.update(
        {
            "demand_fraction": request.demand_fraction,
            "fleet_size": len(fleet),
        }
    )
    text = (
        f"{request.policy} over {len(fleet)} servers at "
        f"{request.demand_fraction:.0%} demand: "
        f"{outcome.servers_used} used, {outcome.total_power_w:.0f} W, "
        f"{outcome.fleet_efficiency:.1f} ops/W"
    )
    return Built(payload=payload, text=text)


@handler(CapQuery)
def _handle_cap(request: CapQuery, context: QueryContext) -> Built:
    """Maximum throughput under a fixed power budget."""
    from repro.cluster.placement import max_throughput_under_cap

    fleet = context.fleet(request)
    engine = context.engine(request)
    if engine is not None:
        outcome = engine.max_throughput_under_cap(
            request.power_cap_w, request.policy, request.power_off_unused
        )
    else:
        outcome = max_throughput_under_cap(
            fleet,
            request.power_cap_w,
            policy=request.policy,
            power_off_unused=request.power_off_unused,
            fleet_backend="scalar",
        )
    payload = _outcome_payload(outcome)
    payload.update(
        {"power_cap_w": request.power_cap_w, "fleet_size": len(fleet)}
    )
    text = (
        f"{request.policy} under {request.power_cap_w:.0f} W over "
        f"{len(fleet)} servers: {outcome.placed_ops:.0f} ops at "
        f"{outcome.total_power_w:.0f} W ({outcome.servers_used} used)"
    )
    return Built(payload=payload, text=text)


@handler(ReplayQuery)
def _handle_replay(request: ReplayQuery, context: QueryContext) -> Built:
    """Replay a diurnal day over the tiled cohort."""
    from repro.cluster.trace import replay_trace

    fleet = context.fleet(request)
    trace = context.trace(request.steps)
    engine = context.engine(request)
    if engine is not None:
        outcome = context.replayer(engine).replay(
            trace, request.policy, request.power_off_unused
        )
    else:
        outcome = replay_trace(
            fleet,
            trace,
            policy=request.policy,
            power_off_unused=request.power_off_unused,
            fleet_backend="scalar",
        )
    payload = {
        "servers": request.servers,
        "steps": request.steps,
        "policy": outcome.policy,
        "energy_kwh": outcome.energy_kwh,
        "served_gops": outcome.served_gops,
        "step_hours": outcome.step_hours,
        "unserved_steps": outcome.unserved_steps,
        "energy_per_gop": outcome.energy_per_gop,
    }
    text = (
        f"{request.servers} servers x {request.steps} steps, "
        f"{request.policy}, backend={request.fleet_backend}\n"
        f"energy {outcome.energy_kwh:.1f} kWh/day, "
        f"served {outcome.served_gops:.1f} Gops, "
        f"{outcome.unserved_steps} unserved step(s)"
    )
    return Built(payload=payload, text=text)


@handler(SweepQuery)
def _handle_sweep(request: SweepQuery, context: QueryContext) -> Built:
    """The Table II sweep, matching the classic ``repro sweep N``."""
    from repro.hwexp.testbed import TESTBED
    from repro.viz.tables import format_table

    server = TESTBED[request.server]
    sweep = context.sweep(request.server)
    rows = []
    cells = []
    for mpc in server.tested_memory_per_core:
        for frequency in list(server.frequencies_ghz) + ["ondemand"]:
            cell = sweep.cell(mpc, frequency)
            rows.append(
                [
                    f"{mpc:g}",
                    frequency if isinstance(frequency, str) else f"{frequency:g}",
                    cell.overall_efficiency,
                    cell.peak_power_w,
                ]
            )
            cells.append(
                {
                    "memory_per_core_gb": mpc,
                    "frequency": frequency,
                    "overall_efficiency": cell.overall_efficiency,
                    "peak_power_w": cell.peak_power_w,
                }
            )
    best = sweep.best_memory_per_core()
    table = format_table(
        ["GB/core", "freq (GHz)", "EE (ops/W)", "peak W"],
        rows,
        title=f"server #{request.server}: {server.name}",
        float_format="{:.1f}",
    )
    text = f"{table}\nbest memory per core: {best:g} GB"
    payload = {
        "server": request.server,
        "name": server.name,
        "cells": cells,
        "best_memory_per_core_gb": best,
    }
    return Built(payload=payload, text=text)


@handler(EnsembleQuery)
def _handle_ensemble(request: EnsembleQuery, context: QueryContext) -> Built:
    """Across-seed stability, matching the classic ``repro ensemble``."""
    from repro.core.ensemble import run_ensemble
    from repro.viz.tables import format_table

    result = run_ensemble(
        request.seeds, jobs=request.jobs, base_seed=request.seed
    )
    parts = []
    if request.per_seed:
        rows = [
            [
                stats.seed,
                stats.ep_mean,
                stats.ee_mean,
                stats.eq2_r_squared,
                stats.corr_ep_idle,
            ]
            for stats in result.per_seed
        ]
        parts.append(
            format_table(
                ["seed", "mean EP", "mean EE", "Eq.2 R^2", "corr(EP,idle)"],
                rows,
                title="per-seed headline statistics",
                float_format="{:.4f}",
            )
        )
    parts.append(result.render())
    payload = {
        "seeds": list(result.seeds),
        "per_seed": [
            {
                "seed": stats.seed,
                "ep_mean": stats.ep_mean,
                "ee_mean": stats.ee_mean,
                "eq2_r_squared": stats.eq2_r_squared,
                "corr_ep_idle": stats.corr_ep_idle,
            }
            for stats in result.per_seed
        ],
        "summaries": {
            name: {
                "mean": summary.mean,
                "std": summary.std,
                "ci_low": summary.ci_low,
                "ci_high": summary.ci_high,
            }
            for name, summary in result.summaries.items()
        },
    }
    return Built(payload=payload, text="\n".join(parts))


@handler(GenerateQuery)
def _handle_generate(request: GenerateQuery, context: QueryContext) -> Built:
    """Write the seeded corpus to CSV."""
    from repro.dataset.io import save_corpus

    corpus = context.corpus(request.seed)
    save_corpus(corpus, request.out)
    return Built(
        payload={"path": request.out, "results": len(corpus)},
        text=f"wrote {len(corpus)} results to {request.out}",
    )


@handler(ValidateQuery)
def _handle_validate(request: ValidateQuery, context: QueryContext) -> Built:
    """Lint a corpus CSV; exit code 1 when errors are found."""
    from repro.dataset.io import load_corpus
    from repro.dataset.validation import errors_only, validate_corpus

    corpus = load_corpus(request.path)
    findings = validate_corpus(corpus)
    errors = errors_only(findings)
    lines = [str(finding) for finding in findings]
    lines.append(
        f"{len(corpus)} results: {len(errors)} error(s), "
        f"{len(findings) - len(errors)} warning(s)"
    )
    payload = {
        "path": request.path,
        "results": len(corpus),
        "errors": len(errors),
        "warnings": len(findings) - len(errors),
        "findings": [str(finding) for finding in findings],
    }
    return Built(
        payload=payload,
        text="\n".join(lines),
        exit_code=1 if errors else 0,
    )


@handler(ReportQuery)
def _handle_report(request: ReportQuery, context: QueryContext) -> Built:
    """Write the paper-vs-measured report."""
    from pathlib import Path

    from repro.core.pipeline import build_experiments_report

    Path(request.out).write_text(
        build_experiments_report(context.study(request))
    )
    return Built(
        payload={"path": request.out}, text=f"wrote {request.out}"
    )


@handler(RunAllQuery)
def _handle_run_all(request: RunAllQuery, context: QueryContext) -> Built:
    """Render every artifact to files, with the classic failure modes."""
    from pathlib import Path

    from repro.core.faults import FaultPlan
    from repro.core.registry import REGISTRY
    from repro.core.resilience import RetryPolicy

    directory = Path(request.output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    faults = FaultPlan.load(request.inject) if request.inject else None
    policy = RetryPolicy(attempts=request.retry) if request.retry else None
    cache = None
    if request.use_cache or request.cache_dir is not None:
        cache = ArtifactCache(request.cache_dir or DEFAULT_CACHE_DIR)
    run_report = context.study(request).run_all(
        jobs=request.jobs,
        cache=cache,
        report=True,
        on_error=request.on_error,
        retry=policy,
        timeout_s=request.timeout_s,
        faults=faults,
    )
    for figure_id, result in run_report.results.items():
        (directory / f"{figure_id}.txt").write_text(
            f"== {result.title} ==\n{result.text}\n"
        )
    lines = []
    if request.show_report:
        lines.append(run_report.render())
    built = len(run_report.results)
    lines.append(
        f"wrote {built} of {len(REGISTRY)} artifacts to {directory}/"
    )
    exit_code = 0
    if run_report.failures:
        lines.append(run_report.failures.render())
        exit_code = 1
    payload = {
        "output_dir": str(directory),
        "written": built,
        "total": len(REGISTRY),
        "artifacts": sorted(run_report.results),
        "failures": list(run_report.failures.failed_ids),
    }
    return Built(payload=payload, text="\n".join(lines), exit_code=exit_code)


@handler(CacheQuery)
def _handle_cache(request: CacheQuery, context: QueryContext) -> Built:
    """Inspect or empty an artifact cache store."""
    cache = (
        context.cache
        if context.cache is not None and request.cache_dir is None
        else ArtifactCache(request.cache_dir or DEFAULT_CACHE_DIR)
    )
    if request.action == "clear":
        removed = cache.clear()
        return Built(
            payload={"root": str(cache.root), "removed": removed},
            text=f"removed {removed} cache entr(ies) from {cache.root}/",
        )
    entries = cache.entries()
    payload = {
        "root": str(cache.root),
        "entries": len(entries),
        "size_bytes": cache.size_bytes(),
        "engine_version": cache.engine_version,
    }
    text = (
        f"{cache.root}/: {len(entries)} entr(ies), "
        f"{cache.size_bytes() / 1024.0:.1f} KiB, "
        f"engine version {cache.engine_version}"
    )
    return Built(payload=payload, text=text)


def _assert_dispatch_complete() -> None:
    """Every request family must be wired into :data:`DISPATCH`."""
    missing = [
        cls.__name__ for cls in FAMILIES.values() if cls not in DISPATCH
    ]
    if missing:  # pragma: no cover - wiring bug, caught at import
        raise RuntimeError(f"families without handlers: {missing}")


_assert_dispatch_complete()
