"""The unified query API: ``QueryRequest`` in, ``QueryResult`` out.

Every way of asking this repo a question -- the CLI, an interactive
:class:`~repro.core.study.Study`, the :mod:`repro.serve` daemon --
routes through one dispatch table keyed by frozen request dataclasses:

>>> from repro.api import ReplayQuery, execute
>>> result = execute(ReplayQuery(servers=30, steps=8))
>>> result.payload["unserved_steps"]
0

Requests carry explicit ``seed``, ``fleet_backend`` and ``format``
fields; results carry the structured payload, the terminal text
rendering, and a provenance block (fingerprint, spec key, engine
version, concrete serving backend, cache hit, wall time).
"""

from repro.api.dispatch import (
    DISPATCH,
    Built,
    QueryContext,
    build_artifact,
    execute,
)
from repro.api.requests import (
    ArtifactQuery,
    CacheQuery,
    CapQuery,
    CdfQuery,
    EnsembleQuery,
    FAMILIES,
    FLEET_BACKENDS,
    FLEET_FAMILIES,
    FORMATS,
    GenerateQuery,
    GroupQuery,
    ListArtifactsQuery,
    PlacementQuery,
    QueryRequest,
    ReplayQuery,
    ReportQuery,
    RunAllQuery,
    SweepQuery,
    StatsQuery,
    ValidateQuery,
    canonical_spec,
    request_from_dict,
    spec_suffix,
)
from repro.api.result import API_VERSION, Provenance, QueryResult
from repro.api.serialize import jsonify

__all__ = [
    "API_VERSION",
    "ArtifactQuery",
    "Built",
    "CacheQuery",
    "CapQuery",
    "CdfQuery",
    "DISPATCH",
    "EnsembleQuery",
    "FAMILIES",
    "FLEET_BACKENDS",
    "FLEET_FAMILIES",
    "FORMATS",
    "GenerateQuery",
    "GroupQuery",
    "ListArtifactsQuery",
    "PlacementQuery",
    "Provenance",
    "QueryContext",
    "QueryRequest",
    "QueryResult",
    "ReplayQuery",
    "ReportQuery",
    "RunAllQuery",
    "SweepQuery",
    "StatsQuery",
    "ValidateQuery",
    "build_artifact",
    "canonical_spec",
    "execute",
    "jsonify",
    "request_from_dict",
    "spec_suffix",
]
