"""Deprecation shims for the pre-``repro.api`` call signatures.

PR 6 redesigned the public query surface around frozen
:class:`repro.api.requests.QueryRequest` dataclasses with explicit
keyword fields.  The old entry points -- ``Study(corpus, 2016)``,
``replay_trace(fleet, trace, "ep-aware", True)`` -- passed their
options positionally, which is exactly the ad-hoc argument plumbing
the redesign removes.  :func:`warn_positional` keeps those call shapes
working (nothing breaks) while emitting a :class:`DeprecationWarning`
that points at the ``QueryRequest`` equivalent.

This module sits below :mod:`repro.api` in the layering (it imports
only the standard library) so the cluster entry points can use it
without creating an import cycle.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Any, Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., Any])


def warn_positional(first_keyword: str, replacement: str) -> Callable[[_F], _F]:
    """Deprecate positional use of the trailing option parameters.

    Parameters from ``first_keyword`` onward keep accepting positional
    arguments, but doing so emits a :class:`DeprecationWarning` naming
    the :mod:`repro.api` ``replacement`` to migrate to.  Keyword calls
    stay silent.
    """

    def decorate(fn: _F) -> _F:
        parameters = list(inspect.signature(fn).parameters)
        cutoff = parameters.index(first_keyword)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if len(args) > cutoff:
                names = ", ".join(parameters[cutoff:len(args)])
                warnings.warn(
                    f"passing {names} positionally to {fn.__qualname__} is "
                    f"deprecated; pass keywords, or route the query through "
                    f"repro.api ({replacement})",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
