"""The paper's analyses, computed from a :class:`~repro.dataset.corpus.Corpus`.

One module per analysis axis:

* :mod:`repro.analysis.stats` -- summary-statistic primitives;
* :mod:`repro.analysis.temporal` -- trends by hardware-availability
  year vs. published year (Figs. 2-4, the reorganization deltas);
* :mod:`repro.analysis.cdf` -- the EP distribution (Fig. 5);
* :mod:`repro.analysis.grouping` -- microarchitecture and
  memory-per-core breakdowns (Figs. 6-8, 17, Table I);
* :mod:`repro.analysis.envelopes` -- the pencil-head and almond charts
  and the selected-curve studies (Figs. 9-12);
* :mod:`repro.analysis.scale` -- economies of scale in nodes and chips
  (Figs. 13-15);
* :mod:`repro.analysis.peak_shift` -- peak-efficiency utilization
  shifting (Fig. 16) and the comparison with Wong's ISCA'16 claim;
* :mod:`repro.analysis.asynchrony` -- EP/EE top-decile divergence
  (Section IV.B);
* :mod:`repro.analysis.regression_study` -- Eq. 2 and the headline
  correlations (Sections I and III.D).
"""

from repro.analysis.asynchrony import asynchrony_report
from repro.analysis.forecast import ep_headroom, spot_drift_forecast
from repro.analysis.gap import gap_trend, low_band_lag, mean_gap_profile
from repro.analysis.metric_comparison import metric_table, rank_correlation_matrix
from repro.analysis.prior_subsets import (
    ep_score_correlation_drift,
    hsu_poole_subset,
    wong_2011_subset,
    wong_2015_subset,
)
from repro.analysis.process_node import ep_by_process_node, shrink_regressions
from repro.analysis.ticktock import lineage_transitions, tick_tock_summary
from repro.analysis.cdf import ep_cdf
from repro.analysis.decomposition import decompose_ep_change, stagnation_decomposition
from repro.analysis.envelopes import curve_envelope, selected_curves
from repro.analysis.grouping import (
    codename_ep_table,
    family_counts,
    memory_per_core_table,
    mix_by_year,
)
from repro.analysis.peak_shift import peak_spot_shares, peak_spot_trend
from repro.analysis.regression_study import idle_regression
from repro.analysis.scale import chip_scaling, node_scaling, two_chip_comparison
from repro.analysis.stats import Summary, summarize
from repro.analysis.temporal import reorganization_deltas, yearly_trend

__all__ = [
    "Summary",
    "asynchrony_report",
    "chip_scaling",
    "decompose_ep_change",
    "codename_ep_table",
    "curve_envelope",
    "ep_cdf",
    "ep_headroom",
    "ep_score_correlation_drift",
    "hsu_poole_subset",
    "spot_drift_forecast",
    "ep_by_process_node",
    "gap_trend",
    "family_counts",
    "idle_regression",
    "memory_per_core_table",
    "metric_table",
    "low_band_lag",
    "mean_gap_profile",
    "mix_by_year",
    "node_scaling",
    "peak_spot_shares",
    "peak_spot_trend",
    "reorganization_deltas",
    "rank_correlation_matrix",
    "shrink_regressions",
    "selected_curves",
    "stagnation_decomposition",
    "summarize",
    "tick_tock_summary",
    "lineage_transitions",
    "two_chip_comparison",
    "wong_2011_subset",
    "wong_2015_subset",
    "yearly_trend",
]
