"""Tick/tock attribution of the EP step-jumps (Section III.A).

The paper: "From 2008 to 2009, the majority of the servers switch their
processor microarchitecture from Core (Penryn) to Nehalem.  From 2011
to 2012 ... from Nehalem (Westmere) to Sandy Bridge.  These two
switches are called *tock* in Intel's tick-tock chip iteration model."
This module tests the attribution directly: along the Intel server
lineage, do new-microarchitecture steps (tocks) move EP more than
die-shrink steps (ticks)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.dataset.corpus import Corpus
from repro.power.microarch import CATALOG, Codename

#: The Intel 2-socket server lineage, in succession order.
SERVER_LINEAGE: Tuple[Codename, ...] = (
    Codename.CORE,
    Codename.PENRYN,
    Codename.NEHALEM_EP,
    Codename.WESTMERE_EP,
    Codename.SANDY_BRIDGE_EP,
    Codename.IVY_BRIDGE_EP,
    Codename.HASWELL,
    Codename.BROADWELL,
    Codename.SKYLAKE,
)


@dataclass(frozen=True)
class Transition:
    """One generation step along the lineage."""

    predecessor: Codename
    successor: Codename
    kind: str  # "tick" (die shrink) or "tock" (new microarchitecture)
    ep_change: float
    predecessor_ep: float
    successor_ep: float


def _kind(successor: Codename) -> str:
    return "tock" if CATALOG[successor].is_tock else "tick"


def lineage_transitions(corpus: Corpus) -> List[Transition]:
    """EP change at every step of the server lineage, from the corpus."""
    transitions: List[Transition] = []
    for predecessor, successor in zip(SERVER_LINEAGE, SERVER_LINEAGE[1:]):
        old = corpus.by_codename(predecessor)
        new = corpus.by_codename(successor)
        if len(old) == 0 or len(new) == 0:
            continue
        old_ep = float(np.mean(old.eps()))
        new_ep = float(np.mean(new.eps()))
        transitions.append(
            Transition(
                predecessor=predecessor,
                successor=successor,
                kind=_kind(successor),
                ep_change=new_ep - old_ep,
                predecessor_ep=old_ep,
                successor_ep=new_ep,
            )
        )
    return transitions


def tick_tock_summary(corpus: Corpus) -> dict:
    """Mean EP change per transition kind, plus the headline steps.

    The paper's attribution holds when the mean tock gain exceeds the
    mean tick gain and the two named tocks (Penryn -> Nehalem EP,
    Westmere-EP -> Sandy Bridge EP) are the largest single gains.
    """
    transitions = lineage_transitions(corpus)
    ticks = [t.ep_change for t in transitions if t.kind == "tick"]
    tocks = [t.ep_change for t in transitions if t.kind == "tock"]
    if not ticks or not tocks:
        raise ValueError("corpus does not cover enough of the lineage")
    named = {
        (Codename.PENRYN, Codename.NEHALEM_EP),
        (Codename.WESTMERE_EP, Codename.SANDY_BRIDGE_EP),
    }
    largest = sorted(transitions, key=lambda t: -t.ep_change)[:2]
    return {
        "transitions": transitions,
        "mean_tick_gain": float(np.mean(ticks)),
        "mean_tock_gain": float(np.mean(tocks)),
        "named_tocks_are_largest": {
            (t.predecessor, t.successor) for t in largest
        }
        == named,
    }
