"""Forward projections the paper closes with (Sections III.D and IV.A).

Two forward-looking statements in the paper are quantitative enough to
operationalize:

1. *Idle-power headroom* (Section III.D): "if we decrease the idle
   power percentage further, server energy proportionality can still
   be improved exponentially.  For example, if the idle percentage is
   5%, then the energy proportionality will be 1.17", with a
   theoretical ceiling of ~1.297 at zero idle.  Given the fitted Eq. 2,
   :func:`ep_headroom` projects the EP the fleet would reach at target
   idle levels and how much of the ceiling is already banked.

2. *Peak-spot drift* (Section IV.A): "We can expect the peak energy
   efficiency at 50% or even 40% utilization in the near future."
   :func:`spot_drift_forecast` fits the recent trend of the mean
   peak-efficiency spot and projects when it reaches a target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.regression_study import IdleRegression, idle_regression
from repro.dataset.corpus import Corpus
from repro.metrics.regression import linear_fit


@dataclass(frozen=True)
class HeadroomProjection:
    """EP projections at hypothetical idle-power levels."""

    fitted_ceiling: float
    current_mean_ep: float
    current_mean_idle: float
    projections: Dict[float, float]  # idle fraction -> projected EP

    @property
    def banked_fraction(self) -> float:
        """Share of the ceiling already achieved by the current fleet."""
        return self.current_mean_ep / self.fitted_ceiling


def ep_headroom(
    corpus: Corpus,
    idle_targets: Sequence[float] = (0.20, 0.10, 0.05, 0.02),
    regression: IdleRegression = None,
) -> HeadroomProjection:
    """Project fleet EP at target idle-power percentages via Eq. 2."""
    if regression is None:
        regression = idle_regression(corpus)
    for idle in idle_targets:
        if not 0.0 <= idle < 1.0:
            raise ValueError("idle targets must lie in [0, 1)")
    projections = {
        float(idle): regression.predicted_ep(idle) for idle in idle_targets
    }
    return HeadroomProjection(
        fitted_ceiling=regression.ceiling,
        current_mean_ep=float(np.mean(corpus.eps())),
        current_mean_idle=float(np.mean(corpus.idle_fractions())),
        projections=projections,
    )


@dataclass(frozen=True)
class SpotDriftForecast:
    """Linear forecast of the mean peak-efficiency spot."""

    fit_years: Tuple[int, ...]
    mean_spots: Tuple[float, ...]
    slope_per_year: float
    forecast: Dict[int, float]  # year -> projected mean spot

    def year_reaching(self, target_spot: float) -> int:
        """First projected year whose mean spot is at or below target."""
        if self.slope_per_year >= 0.0:
            raise ValueError("the spot is not drifting downward")
        last_year = self.fit_years[-1]
        last_value = self.mean_spots[-1]
        years_needed = (target_spot - last_value) / self.slope_per_year
        return int(np.ceil(last_year + max(0.0, years_needed)))


def spot_drift_forecast(
    corpus: Corpus,
    fit_from: int = 2010,
    horizon: int = 5,
) -> SpotDriftForecast:
    """Fit the post-2010 drift of the mean peak spot and extrapolate.

    Fitting starts at the first diverse year (the paper: before 2010
    everything pinned at 100%, so earlier years carry no signal).
    """
    years: List[int] = []
    means: List[float] = []
    for year in corpus.hw_years():
        if year < fit_from:
            continue
        members = corpus.by_hw_year(year)
        spots = [result.primary_peak_spot for result in members]
        years.append(year)
        means.append(float(np.mean(spots)))
    if len(years) < 3:
        raise ValueError("not enough years to fit a drift")
    fit = linear_fit([float(y) for y in years], means)
    last_year = years[-1]
    forecast = {
        year: max(0.1, float(fit.predict([float(year)])[0]))
        for year in range(last_year + 1, last_year + 1 + horizon)
    }
    return SpotDriftForecast(
        fit_years=tuple(years),
        mean_spots=tuple(means),
        slope_per_year=fit.slope,
        forecast=forecast,
    )
