"""Microarchitecture and configuration breakdowns (Figs. 6-8, 17, Table I).

Section III.B explains the apparent EP stagnation of 2013-2014 by
grouping the corpus by processor microarchitecture: the dip tracks the
adoption of codenames (Ivy Bridge, early Haswell platforms) whose EP
trails Sandy Bridge EN/EP, not a technology plateau.  Section V.A adds
the memory-per-core view (Table I / Fig. 17).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.stats import Summary, summarize
from repro.dataset.corpus import Corpus
from repro.power.microarch import Codename, Family


@dataclass(frozen=True)
class GroupStat:
    """One group's population and EP/EE summaries."""

    label: str
    count: int
    ep: Summary
    score: Summary


def _group_stat(label: str, corpus: Corpus) -> GroupStat:
    return GroupStat(
        label=label,
        count=len(corpus),
        ep=summarize(corpus.eps()),
        score=summarize(corpus.scores()),
    )


def family_counts(corpus: Corpus) -> Dict[Family, int]:
    """Fig. 6: server counts per microarchitecture family."""
    return corpus.count_by_family()


def family_table(corpus: Corpus) -> List[GroupStat]:
    """Fig. 6 with the per-family average EP annotations."""
    table = []
    for family in corpus.families():
        table.append(_group_stat(family.value, corpus.by_family(family)))
    table.sort(key=lambda stat: -stat.count)
    return table


def codename_ep_table(
    corpus: Corpus, family: Optional[Family] = None
) -> List[GroupStat]:
    """Fig. 7: average EP per codename (optionally within one family)."""
    scope = corpus if family is None else corpus.by_family(family)
    table = []
    for codename in scope.codenames():
        table.append(_group_stat(codename.value, scope.by_codename(codename)))
    table.sort(key=lambda stat: -stat.ep.mean)
    return table


def mix_by_year(
    corpus: Corpus, first: int = 2012, last: int = 2016
) -> Dict[int, Dict[Codename, int]]:
    """Fig. 8: codename composition per year over [first, last]."""
    mix: Dict[int, Dict[Codename, int]] = {}
    for year in range(first, last + 1):
        sub = corpus.by_hw_year(year)
        if len(sub) == 0:
            continue
        mix[year] = sub.count_by_codename()
    return mix


def stagnation_explanation(corpus: Corpus) -> Dict[str, float]:
    """Section III.B's argument, quantified.

    Returns the average EP of the 2013-2014 servers, the average EP the
    same years would have shown with 2012's microarchitecture mix (mix
    counterfactual, using per-codename corpus-wide averages), and the
    recovery years' average.  The stagnation is "specious" exactly when
    the counterfactual is markedly higher than the observed dip.
    """
    columns = corpus.columns()
    ep = columns.array("ep")
    hw_year = columns.array("hw_year")
    codenames = columns.array("codename")
    reference_mix = dict(Counter(codenames[hw_year == 2012].tolist()))
    codename_ep = {
        codename: float(np.mean(ep[codenames == codename]))
        for codename in sorted(set(codenames.tolist()), key=lambda c: c.value)
    }
    total = sum(reference_mix.values())
    counterfactual = sum(
        count * codename_ep[codename] for codename, count in reference_mix.items()
    ) / total
    return {
        "observed_2013_2014": float(np.mean(ep[(hw_year >= 2013) & (hw_year <= 2014)])),
        "counterfactual_2012_mix": counterfactual,
        "observed_2015_2016": float(np.mean(ep[(hw_year >= 2015) & (hw_year <= 2016)])),
    }


def memory_per_core_table(corpus: Corpus, min_count: int = 11) -> List[GroupStat]:
    """Table I / Fig. 17: servers and EP/EE per memory-per-core bucket.

    Buckets with fewer than ``min_count`` servers are omitted; the
    default of 11 is Table I's own rule ("each ratio with more than 10
    counts"), which keeps exactly the seven buckets covering 430 of the
    477 servers.
    """
    columns = corpus.columns()
    ep = columns.array("ep")
    score = columns.array("score")
    # Python round (not np.round) keeps the bucket keys identical to
    # the per-record loop this replaces.
    ratios = [round(v, 2) for v in columns.array("memory_per_core_gb").tolist()]
    buckets: Dict[float, List[int]] = {}
    for position, ratio in enumerate(ratios):
        buckets.setdefault(ratio, []).append(position)
    table = []
    for ratio in sorted(buckets):
        rows = buckets[ratio]
        if len(rows) < min_count:
            continue
        index = np.array(rows)
        table.append(
            GroupStat(
                label=f"{ratio:g}",
                count=len(rows),
                ep=summarize(ep[index].tolist()),
                score=summarize(score[index].tolist()),
            )
        )
    return table


def best_memory_per_core(corpus: Corpus) -> Dict[str, float]:
    """Fig. 17 headline: the EP-best and EE-best ratios."""
    table = memory_per_core_table(corpus)
    if not table:
        raise ValueError("no memory-per-core bucket has enough servers")
    best_ep = max(table, key=lambda stat: stat.ep.mean)
    best_ee = max(table, key=lambda stat: stat.score.mean)
    return {"ep": float(best_ep.label), "ee": float(best_ee.label)}
