"""The pencil-head and almond charts and the selected-curve studies.

Fig. 9 overlays all 477 normalized power curves ("pencil head"): every
curve lies between the curve of the least proportional server (EP 0.18,
the upper envelope) and the most proportional one (EP 1.05, the lower
envelope).  Fig. 11 does the same for relative efficiency ("almond"),
with the envelope roles swapped.  Figs. 10 and 12 pull out eleven
representative servers and study where their curves intersect the
ideal line and how early they reach 0.8x / 1.0x of their full-load
efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataset.corpus import Corpus
from repro.dataset.schema import SpecPowerResult
from repro.metrics.curves import ee_relative_curve, envelope
from repro.metrics.ep import UTILIZATION_LEVELS


@dataclass(frozen=True)
class CurveEnvelope:
    """Pointwise envelope of a family of aligned curves."""

    utilization: Tuple[float, ...]
    lower: Tuple[float, ...]
    upper: Tuple[float, ...]
    lower_id: str  # id of the server tracing most of the lower edge
    upper_id: str

    def contains(self, curve) -> bool:
        """True when the aligned curve lies inside the envelope."""
        arr = np.asarray(curve, dtype=float)
        return bool(
            np.all(arr >= np.asarray(self.lower) - 1e-9)
            and np.all(arr <= np.asarray(self.upper) + 1e-9)
        )


def _aligned_curves(corpus: Corpus, kind: str) -> Tuple[np.ndarray, List[str]]:
    """(matrix, ids): each row is one server's normalized curve."""
    rows = []
    ids = []
    for result in corpus:
        loads, powers = result.curve()
        if kind == "power":
            peak = powers[-1]
            rows.append([p / peak for p in powers])
        elif kind == "ee":
            rows.append(list(ee_relative_curve(loads, powers)))
        else:
            raise ValueError("kind must be 'power' or 'ee'")
        ids.append(result.result_id)
    return np.asarray(rows), ids


def curve_envelope(corpus: Corpus, kind: str = "power") -> CurveEnvelope:
    """The Fig. 9 (power) or Fig. 11 (efficiency) envelope."""
    matrix, ids = _aligned_curves(corpus, kind)
    lower, upper = envelope(matrix)
    # Attribute each edge to the server hugging it most often.
    lower_hits = (np.abs(matrix - lower[None, :]) < 1e-9).sum(axis=1)
    upper_hits = (np.abs(matrix - upper[None, :]) < 1e-9).sum(axis=1)
    return CurveEnvelope(
        utilization=tuple(UTILIZATION_LEVELS),
        lower=tuple(float(v) for v in lower),
        upper=tuple(float(v) for v in upper),
        lower_id=ids[int(np.argmax(lower_hits))],
        upper_id=ids[int(np.argmax(upper_hits))],
    )


@dataclass(frozen=True)
class SelectedCurve:
    """One representative server's curve-shape facts (Figs. 10 / 12)."""

    result_id: str
    hw_year: int
    ep: float
    power_curve: Tuple[float, ...]
    ee_curve: Tuple[float, ...]
    ideal_intersections: Tuple[float, ...]
    crossing_08: float  # earliest utilization reaching 0.8x EE(100%)
    crossing_10: float  # earliest utilization reaching 1.0x EE(100%)
    peak_spot: float


def _selected_curve(result: SpecPowerResult) -> SelectedCurve:
    loads, powers = result.curve()
    peak = powers[-1]
    return SelectedCurve(
        result_id=result.result_id,
        hw_year=result.hw_year,
        ep=result.ep,
        power_curve=tuple(p / peak for p in powers),
        ee_curve=tuple(float(v) for v in ee_relative_curve(loads, powers)),
        ideal_intersections=tuple(result.ideal_intersections()),
        crossing_08=result.ee_crossing(0.8),
        crossing_10=result.ee_crossing(1.0),
        peak_spot=result.primary_peak_spot,
    )


def selected_curves(
    corpus: Corpus, targets: Optional[Dict[str, float]] = None
) -> List[SelectedCurve]:
    """The eleven representative servers of Figs. 10/12.

    ``targets`` maps a label to an EP value; for each (year, EP) pair
    the closest corpus member is selected.  The default reproduces the
    paper's selection.
    """
    if targets is None:
        targets = {
            "2008": 0.18,
            "2005": 0.30,
            "2009": 0.61,
            "2011": 0.75,
            "2016a": 0.75,
            "2016b": 0.82,
            "2014": 0.86,
            "2016c": 0.87,
            "2016d": 0.96,
            "2016e": 1.02,
            "2012": 1.05,
        }
    chosen: List[SelectedCurve] = []
    used = set()
    for label, ep_target in targets.items():
        year = int(label[:4])
        members = [
            result
            for result in corpus.by_hw_year(year)
            if result.result_id not in used
        ]
        if not members:
            raise ValueError(f"no corpus members in year {year}")
        best = min(members, key=lambda result: abs(result.ep - ep_target))
        used.add(best.result_id)
        chosen.append(_selected_curve(best))
    chosen.sort(key=lambda curve: curve.ep)
    return chosen


def intersection_ordering(curves: List[SelectedCurve]) -> List[Tuple[float, float]]:
    """(EP, first-intersection) pairs for curves that cross the ideal line.

    Section III.C: among curves that intersect the ideal EP curve, the
    higher the EP, the farther the intersection sits from 100%
    utilization (i.e. the smaller the crossing utilization).
    """
    pairs = [
        (curve.ep, curve.ideal_intersections[0])
        for curve in curves
        if curve.ideal_intersections
    ]
    pairs.sort()
    return pairs
