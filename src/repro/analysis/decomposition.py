"""Mix-shift decomposition of the EP trend (Section III.B, rigorous).

The paper argues the 2013-2014 EP dip is "mainly caused by the adoption
of processors of specific microarchitecture" -- a composition effect,
not a technology plateau.  The standard shift-share decomposition makes
the argument quantitative.  For two years A -> B with codename shares
``s`` and codename-mean EPs ``e``:

    EP_B - EP_A = sum_c (s_B[c] - s_A[c]) * e_avg[c]     (mix term)
                + sum_c s_avg[c] * (e_B[c] - e_A[c])     (within term)

with ``e_avg``/``s_avg`` the two-year means (the symmetric Marshall-
Edgeworth form, which makes the two terms sum exactly to the total).
A codename absent from a year contributes through the other year's
mean.  The paper's claim is precisely that the 2012 -> 2013/14 change
is dominated by the *mix* term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.dataset.corpus import Corpus
from repro.power.microarch import Codename


@dataclass(frozen=True)
class EpDecomposition:
    """One year-pair's EP change, split into mix and within terms."""

    year_a: int
    year_b: int
    total_change: float
    mix_term: float
    within_term: float

    @property
    def mix_share(self) -> float:
        """Fraction of the change explained by composition."""
        if self.total_change == 0.0:
            return 0.0
        return self.mix_term / self.total_change


def _composition(corpus: Corpus, year: int):
    members = corpus.by_hw_year(year)
    if len(members) == 0:
        raise ValueError(f"no results for year {year}")
    shares: Dict[Codename, float] = {}
    means: Dict[Codename, float] = {}
    for codename in members.codenames():
        sub = members.by_codename(codename)
        shares[codename] = len(sub) / len(members)
        means[codename] = float(np.mean(sub.eps()))
    return shares, means


def decompose_ep_change(corpus: Corpus, year_a: int, year_b: int) -> EpDecomposition:
    """Shift-share decomposition of the EP change between two years."""
    shares_a, means_a = _composition(corpus, year_a)
    shares_b, means_b = _composition(corpus, year_b)
    codenames = set(shares_a) | set(shares_b)

    mix_term = 0.0
    within_term = 0.0
    for codename in codenames:
        s_a = shares_a.get(codename, 0.0)
        s_b = shares_b.get(codename, 0.0)
        # A codename absent from a year has no own-year mean; use the
        # other year's so the within term is zero for it.
        e_a = means_a.get(codename, means_b.get(codename, 0.0))
        e_b = means_b.get(codename, means_a.get(codename, 0.0))
        mix_term += (s_b - s_a) * 0.5 * (e_a + e_b)
        within_term += 0.5 * (s_a + s_b) * (e_b - e_a)

    ep_a = float(np.mean(corpus.by_hw_year(year_a).eps()))
    ep_b = float(np.mean(corpus.by_hw_year(year_b).eps()))
    return EpDecomposition(
        year_a=year_a,
        year_b=year_b,
        total_change=ep_b - ep_a,
        mix_term=mix_term,
        within_term=within_term,
    )


def stagnation_decomposition(corpus: Corpus) -> Dict[str, EpDecomposition]:
    """The Section III.B year pairs: the dip into 2013 and the tocks.

    The paper's attribution holds when the 2012->2013 *decrease* is
    mix-dominated while the 2008->2009 and 2011->2012 *increases* carry
    large within-architecture components too (new designs, not just new
    shares).
    """
    return {
        "dip_2012_2013": decompose_ep_change(corpus, 2012, 2013),
        "tock_2008_2009": decompose_ep_change(corpus, 2008, 2009),
        "tock_2011_2012": decompose_ep_change(corpus, 2011, 2012),
    }
