"""Corpus-level proportionality-gap analysis (related-work extension).

Wong & Annavaram (refs. [17]/[48] of the paper) tracked the per-level
proportionality gap across the published results and found that the
low-utilization region lags: overall EP improved, yet servers at
10-30% utilization still burn far more than proportional power.  This
module reproduces that view on the corpus so the related-work claim
can be checked alongside the paper's own Fig. 3 trend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.dataset.corpus import Corpus
from repro.metrics.gap import low_utilization_gap, peak_gap, proportionality_gap
from repro.metrics.ep import UTILIZATION_LEVELS


@dataclass(frozen=True)
class GapTrend:
    """Per-year mean proportionality gap, overall and low-utilization."""

    years: Tuple[int, ...]
    mean_gap: Tuple[float, ...]         # mean over all levels
    low_band_gap: Tuple[float, ...]     # mean over 10-30% utilization
    peak_gap_location: Tuple[float, ...]  # utilization of the largest gap


def gap_trend(corpus: Corpus) -> GapTrend:
    """The yearly proportionality-gap trend."""
    years = corpus.hw_years()
    mean_gaps: List[float] = []
    low_gaps: List[float] = []
    peak_locations: List[float] = []
    for year in years:
        members = corpus.by_hw_year(year)
        gaps = []
        lows = []
        locations = []
        for result in members:
            loads, powers = result.curve()
            gaps.append(float(proportionality_gap(loads, powers).mean()))
            lows.append(low_utilization_gap(loads, powers))
            locations.append(peak_gap(loads, powers)[0])
        mean_gaps.append(float(np.mean(gaps)))
        low_gaps.append(float(np.mean(lows)))
        peak_locations.append(float(np.mean(locations)))
    return GapTrend(
        years=tuple(years),
        mean_gap=tuple(mean_gaps),
        low_band_gap=tuple(low_gaps),
        peak_gap_location=tuple(peak_locations),
    )


def mean_gap_profile(corpus: Corpus) -> Dict[float, float]:
    """Corpus-mean PG per measurement level (the Wong profile chart)."""
    matrix = []
    for result in corpus:
        loads, powers = result.curve()
        matrix.append(proportionality_gap(loads, powers))
    mean = np.asarray(matrix).mean(axis=0)
    return {
        float(level): float(value)
        for level, value in zip(UTILIZATION_LEVELS, mean)
    }


def low_band_lag(corpus: Corpus) -> Dict[str, float]:
    """Quantify the related-work claim on the modern cohort.

    Returns the modern (2013-2016) cohort's scalar EP alongside its
    low-band gap, plus the ratio of low-band gap to mid-band gap; a
    ratio well above 1 is exactly "the low-utilization region is not
    well energy proportional" even on servers with good EP.
    """
    modern = corpus.by_hw_year_range(2013, 2016)
    low = []
    mid = []
    for result in modern:
        loads, powers = result.curve()
        low.append(low_utilization_gap(loads, powers, band=(0.1, 0.3)))
        mid.append(low_utilization_gap(loads, powers, band=(0.5, 0.8)))
    low_mean = float(np.mean(low))
    mid_mean = float(np.mean(mid))
    return {
        "modern_avg_ep": float(np.mean(modern.eps())),
        "low_band_gap": low_mean,
        "mid_band_gap": mid_mean,
        "low_minus_mid": low_mean - mid_mean,
        "low_over_mid": low_mean / max(mid_mean, 1e-9),
    }
