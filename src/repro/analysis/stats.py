"""Summary-statistic primitives shared by the analyses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Min / max / mean / median of one statistic over a population."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float

    def as_dict(self) -> dict:
        """The summary as a plain mapping (keys: count/min/max/avg/median)."""
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "avg": self.mean,
            "median": self.median,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summary of a non-empty sequence."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return Summary(
        count=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
    )


def relative_change(before: float, after: float) -> float:
    """(after - before) / before; the paper's percent-change convention."""
    if before == 0.0:
        raise ValueError("relative change from zero is undefined")
    return (after - before) / before
