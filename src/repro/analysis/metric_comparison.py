"""Comparison of the proportionality-metric family (Hsu & Poole).

Ref. [16] of the paper compares "a wide range of metrics for measuring
energy proportionality, such as ER, EP, IPR, and LD".  This module
computes the whole family over a corpus and their mutual (rank)
correlation matrix, making the metric-choice question the prior work
debates inspectable:

* EP and ER must agree perfectly (both are monotone transforms of the
  same curve area);
* IPR anti-correlates strongly with EP (the Eq. 2 mechanism);
* LD captures *shape* information the scalar metrics ignore -- two
  servers with equal EP can differ in LD (Section III.C's point about
  the two EP=0.75 curves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dataset.corpus import Corpus
from repro.metrics.correlation import spearman
from repro.metrics.gap import low_utilization_gap
from repro.metrics.linearity import energy_ratio, idle_to_peak_ratio, linear_deviation

#: Metric extractors over one result's power curve.
METRIC_FAMILY = ("ep", "er", "ipr", "ld", "pg_low")


@dataclass(frozen=True)
class MetricTable:
    """Every family metric for every server."""

    ids: Tuple[str, ...]
    values: Dict[str, Tuple[float, ...]]

    def column(self, metric: str) -> List[float]:
        """One metric's values, corpus order."""
        return list(self.values[metric])


def metric_table(corpus: Corpus) -> MetricTable:
    """Compute the full metric family over the corpus."""
    columns: Dict[str, List[float]] = {metric: [] for metric in METRIC_FAMILY}
    ids = []
    for result in corpus:
        loads, powers = result.curve()
        ids.append(result.result_id)
        columns["ep"].append(result.ep)
        columns["er"].append(energy_ratio(loads, powers))
        columns["ipr"].append(idle_to_peak_ratio(loads, powers))
        columns["ld"].append(linear_deviation(loads, powers))
        columns["pg_low"].append(low_utilization_gap(loads, powers))
    return MetricTable(
        ids=tuple(ids),
        values={metric: tuple(values) for metric, values in columns.items()},
    )


def rank_correlation_matrix(
    corpus: Corpus,
) -> Dict[Tuple[str, str], float]:
    """Spearman correlations between every pair of family metrics."""
    table = metric_table(corpus)
    matrix: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(METRIC_FAMILY):
        for b in METRIC_FAMILY[i:]:
            value = (
                1.0
                if a == b
                else spearman(table.column(a), table.column(b))
            )
            matrix[(a, b)] = value
            matrix[(b, a)] = value
    return matrix


def equal_ep_different_ld(
    corpus: Corpus, ep_tolerance: float = 0.01, ld_gap: float = 0.03
) -> List[Tuple[str, str]]:
    """Pairs of servers with (near-)equal EP but clearly different LD.

    These are the pairs Section III.C uses to argue that the scalar EP
    conceals shape: same headline number, different curve.
    """
    table = metric_table(corpus)
    entries = sorted(
        zip(table.ids, table.column("ep"), table.column("ld")),
        key=lambda row: row[1],
    )
    pairs: List[Tuple[str, str]] = []
    for (id_a, ep_a, ld_a), (id_b, ep_b, ld_b) in zip(entries, entries[1:]):
        if abs(ep_a - ep_b) <= ep_tolerance and abs(ld_a - ld_b) >= ld_gap:
            pairs.append((id_a, id_b))
    return pairs
