"""EP/EE top-decile divergence (Section IV.B).

The paper's two asynchrony observations:

1. *temporal*: the top-10% most proportional servers are overwhelmingly
   2012 hardware (91.7%, against 2012's 27.4% population share), while
   the top-10% most efficient are dominated by 2015-2016 hardware (all
   of it qualifies) with only 16.7% from 2012;
2. *per-server*: proportionality rank and efficiency rank barely
   overlap -- only 14.6% of the top-10% EP servers also make the
   top-10% EE list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dataset.corpus import Corpus


@dataclass(frozen=True)
class AsynchronyReport:
    """Quantified Section IV.B findings."""

    decile_size: int
    top_ep_share_2012: float
    top_ee_share_2012: float
    population_share_2012: float
    overlap_fraction: float
    recent_servers: int  # 2015-2016 population
    recent_in_top_ee: int

    @property
    def ep_overrepresentation(self) -> float:
        """How many times 2012 exceeds its population share in top EP."""
        return self.top_ep_share_2012 / self.population_share_2012

    @property
    def all_recent_in_top_ee(self) -> bool:
        return self.recent_in_top_ee == self.recent_servers


def asynchrony_report(corpus: Corpus, fraction: float = 0.10) -> AsynchronyReport:
    """Compute the Section IV.B report for any decile fraction."""
    top_ep = corpus.top_fraction_by(lambda r: r.ep, fraction)
    top_ee = corpus.top_fraction_by(lambda r: r.overall_score, fraction)
    ids_ep = {result.result_id for result in top_ep}
    ids_ee = {result.result_id for result in top_ee}
    recent = corpus.filter(lambda r: r.hw_year >= 2015)
    return AsynchronyReport(
        decile_size=len(top_ep),
        top_ep_share_2012=sum(1 for r in top_ep if r.hw_year == 2012) / len(top_ep),
        top_ee_share_2012=sum(1 for r in top_ee if r.hw_year == 2012) / len(top_ee),
        population_share_2012=len(corpus.by_hw_year(2012)) / len(corpus),
        overlap_fraction=len(ids_ep & ids_ee) / len(ids_ep),
        recent_servers=len(recent),
        recent_in_top_ee=sum(1 for r in recent if r.result_id in ids_ee),
    )


def rank_correlation(corpus: Corpus) -> float:
    """Spearman correlation between EP rank and EE rank."""
    from repro.metrics.correlation import spearman

    return spearman(corpus.eps(), corpus.scores())


def year_share_in_top(
    corpus: Corpus, key: str, fraction: float = 0.10
) -> Dict[int, float]:
    """Per-year composition of the top decile under 'ep' or 'score'."""
    extractors = {"ep": lambda r: r.ep, "score": lambda r: r.overall_score}
    if key not in extractors:
        raise ValueError("key must be 'ep' or 'score'")
    top = corpus.top_fraction_by(extractors[key], fraction)
    shares: Dict[int, float] = {}
    for result in top:
        shares[result.hw_year] = shares.get(result.hw_year, 0.0) + 1.0
    return {year: count / len(top) for year, count in sorted(shares.items())}
