"""Peak-efficiency utilization shifting (Section IV.A, Fig. 16).

Before 2010 every published server reached its best efficiency flat
out; by 2016 only 3 of 18 did, with 10 peaking at 80% and 5 at 70%
utilization.  Spot counting follows the paper's convention: a server
whose efficiency ties at two levels contributes both (477 servers,
478 spots).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.dataset.corpus import Corpus

#: The measurement levels a peak can land on.
SPOT_LEVELS: Tuple[float, ...] = (0.6, 0.7, 0.8, 0.9, 1.0)


def _spot_table(corpus: Corpus) -> Tuple[np.ndarray, np.ndarray]:
    """(rounded spot values, owning hardware year) per spot, flat.

    Both come off the corpus' cached column store: the CSR spot values
    rounded to the measurement grid (Python ``round``, matching the
    per-record loops this replaces) and each spot's record hardware
    year expanded via the CSR offsets.
    """
    columns = corpus.columns()
    rounded = np.array(
        [round(spot, 1) for spot in columns.peak_spot_values().tolist()]
    )
    spot_year = np.repeat(
        columns.array("hw_year"), np.diff(columns.peak_spot_offsets())
    )
    return rounded, spot_year


def spot_counts(corpus: Corpus) -> Dict[float, int]:
    """Spot occurrences over the corpus (ties contribute each level)."""
    rounded, _ = _spot_table(corpus)
    return dict(sorted(Counter(rounded.tolist()).items()))


def total_spots(corpus: Corpus) -> int:
    """Total spot count; the paper reports 478 for 477 servers."""
    return sum(spot_counts(corpus).values())


def peak_spot_shares(corpus: Corpus) -> Dict[float, float]:
    """Share of servers peaking at each level (denominator: servers)."""
    counts = spot_counts(corpus)
    n = len(corpus)
    return {spot: count / n for spot, count in counts.items()}


def peak_spot_trend(corpus: Corpus) -> Dict[int, Dict[float, float]]:
    """Fig. 16: per-year distribution of peak-efficiency spots."""
    rounded, spot_year = _spot_table(corpus)
    trend: Dict[int, Dict[float, float]] = {}
    for year in np.unique(corpus.columns().array("hw_year")).tolist():
        counts = dict(sorted(Counter(rounded[spot_year == year].tolist()).items()))
        total = sum(counts.values())
        trend[year] = {spot: count / total for spot, count in counts.items()}
    return trend


@dataclass(frozen=True)
class IntervalComparison:
    """Spot shares of the two eras Section IV.A contrasts."""

    era: Tuple[int, int]
    servers: int
    shares: Dict[float, float]


def era_comparison(
    corpus: Corpus,
    first_era: Tuple[int, int] = (2004, 2012),
    second_era: Tuple[int, int] = (2013, 2016),
) -> List[IntervalComparison]:
    """The 2004-2012 vs. 2013-2016 contrast.

    The paper: 75.71% of first-era servers peak at 100% utilization;
    in the second era only 23.21% do, while 35.71% peak at 80% and
    26.79% at 70%.
    """
    rounded, spot_year = _spot_table(corpus)
    hw_year = corpus.columns().array("hw_year")
    comparisons = []
    for era in (first_era, second_era):
        first, last = era
        spot_mask = (spot_year >= first) & (spot_year <= last)
        counts = dict(sorted(Counter(rounded[spot_mask].tolist()).items()))
        n = int(((hw_year >= first) & (hw_year <= last)).sum())
        comparisons.append(
            IntervalComparison(
                era=era,
                servers=n,
                shares={spot: count / n for spot, count in counts.items()},
            )
        )
    return comparisons


def first_diverse_year(corpus: Corpus) -> int:
    """First hardware year with any sub-100% peak spot (paper: 2010)."""
    rounded, spot_year = _spot_table(corpus)
    for year in np.unique(corpus.columns().array("hw_year")).tolist():
        if np.any(rounded[spot_year == year] < 1.0 - 1e-9):
            return year
    raise ValueError("every server peaks at 100% utilization")


def wong_comparison(corpus: Corpus) -> Dict[str, float]:
    """Section VI's check of Wong's ISCA'16 claim.

    Wong argued highly proportional servers typically peak near 60%
    utilization; the paper counters that only ~2% of all published
    results peak at 60% while ~69% still peak at 100%.  Returns both
    shares plus the average peak efficiency of the 60%-peaking group
    (which the paper notes resembles the 2013 cohort).
    """
    shares = peak_spot_shares(corpus)
    columns = corpus.columns()
    sixty = np.abs(columns.array("primary_peak_spot") - 0.6) < 1e-9
    count = int(sixty.sum())
    avg_peak_ee_60 = (
        sum(columns.array("peak_ee")[sixty].tolist()) / count
        if count
        else float("nan")
    )
    return {
        "share_100": shares.get(1.0, 0.0),
        "share_60": shares.get(0.6, 0.0),
        "count_60": float(count),
        "avg_peak_ee_60": avg_peak_ee_60,
    }
