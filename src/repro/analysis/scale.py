"""Economies of scale in nodes and chips (Figs. 13-15, Section III.E).

The paper's findings:

* multi-node systems get *more* proportional with node count -- median
  EP rises monotonically from 1 through 16 nodes, though the average
  dips at 8 nodes (a thin, bimodal group);
* within single-node servers the benefit stops at 2 chips: 2-chip
  boxes lead every EP/EE statistic except the median EP (1-chip wins
  that one by a hair), and both metrics fall monotonically at 4 and 8
  chips;
* the 284 two-chip single-node servers beat the whole-corpus same-year
  averages by +2.94% (EP) and +4.13% (EE).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.stats import Summary, summarize
from repro.dataset.corpus import Corpus


@dataclass(frozen=True)
class ScaleStat:
    """EP/EE summaries of one node-count or chip-count group."""

    key: int
    count: int
    ep: Summary
    score: Summary


def node_scaling(corpus: Corpus, min_count: int = 3) -> List[ScaleStat]:
    """Fig. 13: EP/EE per total node count (groups with >= min_count)."""
    stats = []
    for nodes in corpus.node_counts():
        group = corpus.by_nodes(nodes)
        if len(group) < min_count:
            continue
        stats.append(
            ScaleStat(
                key=nodes,
                count=len(group),
                ep=summarize(group.eps()),
                score=summarize(group.scores()),
            )
        )
    return stats


def chip_scaling(corpus: Corpus) -> List[ScaleStat]:
    """Fig. 14: EP/EE of single-node servers per chip count."""
    single = corpus.single_node()
    stats = []
    for chips in single.chip_counts():
        group = single.by_chips(chips)
        stats.append(
            ScaleStat(
                key=chips,
                count=len(group),
                ep=summarize(group.eps()),
                score=summarize(group.scores()),
            )
        )
    return stats


@dataclass(frozen=True)
class TwoChipComparison:
    """Fig. 15: 2-chip single-node servers vs. all servers, same-year."""

    avg_ep_gain: float
    avg_ee_gain: float
    median_ep_gain: float
    median_ee_gain: float
    years_compared: int


def two_chip_comparison(corpus: Corpus) -> TwoChipComparison:
    """Same-hardware-availability-year comparison, weighted by the
    number of 2-chip servers in each year (so thin years do not swamp
    the estimate)."""
    gains: Dict[str, float] = {"aep": 0.0, "aee": 0.0, "mep": 0.0, "mee": 0.0}
    weight = 0
    for year in corpus.hw_years():
        everyone = corpus.by_hw_year(year)
        two_chip = everyone.single_node().by_chips(2)
        if len(two_chip) == 0:
            continue
        k = len(two_chip)
        weight += k
        all_ep, all_ee = np.asarray(everyone.eps()), np.asarray(everyone.scores())
        two_ep, two_ee = np.asarray(two_chip.eps()), np.asarray(two_chip.scores())
        gains["aep"] += k * (two_ep.mean() / all_ep.mean() - 1.0)
        gains["aee"] += k * (two_ee.mean() / all_ee.mean() - 1.0)
        gains["mep"] += k * (np.median(two_ep) / np.median(all_ep) - 1.0)
        gains["mee"] += k * (np.median(two_ee) / np.median(all_ee) - 1.0)
    if weight == 0:
        raise ValueError("corpus has no 2-chip single-node servers")
    return TwoChipComparison(
        avg_ep_gain=gains["aep"] / weight,
        avg_ee_gain=gains["aee"] / weight,
        median_ep_gain=gains["mep"] / weight,
        median_ee_gain=gains["mee"] / weight,
        years_compared=len(
            [y for y in corpus.hw_years() if len(corpus.by_hw_year(y).single_node().by_chips(2)) > 0]
        ),
    )
