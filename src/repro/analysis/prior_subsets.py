"""What earlier studies would have concluded (Sections I and VI).

The paper positions itself against three prior analyses of the same
published data, each on an earlier (and differently filtered) subset:

* **Hsu & Poole** (ICPE'15, ref. [16]): 459 results through June 2014,
  including non-compliant submissions.  They computed corr(EP, overall
  score) = 0.83; the paper re-computes 0.741 on all 477 valid results
  and notes "with newer results published, the derived models and
  conclusions from previous work pose greater errors".
* **Wong & Annavaram** (MICRO'12, ref. [17]): 291 results, Nov 2007 -
  Dec 2011.
* **Wong** (ISCA'16, ref. [41]): 426 results through Sept 2015,
  arguing highly proportional servers typically peak near 60%
  utilization -- which the paper rebuts on the full population.

This module carves the corresponding *published-year* subsets out of
the corpus (prior work indexed by publication, which is the point) and
recomputes the contested statistics, so the "conclusions drift with
more data" claim is itself reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.dataset.corpus import Corpus
from repro.metrics.correlation import pearson


@dataclass(frozen=True)
class SubsetComparison:
    """A contested statistic on a prior subset vs. the full corpus."""

    label: str
    subset_size: int
    subset_value: float
    full_value: float

    @property
    def drift(self) -> float:
        """How far the full-data value moved from the subset's."""
        return self.full_value - self.subset_value


def hsu_poole_subset(corpus: Corpus) -> Corpus:
    """Results published through 2014 (the ICPE'15 study window)."""
    return corpus.filter(lambda r: r.published_year <= 2014)


def wong_2011_subset(corpus: Corpus) -> Corpus:
    """Results published 2007-2011 (the MICRO'12 study window)."""
    return corpus.filter(lambda r: 2007 <= r.published_year <= 2011)


def wong_2015_subset(corpus: Corpus) -> Corpus:
    """Results published through 2015 (the ISCA'16 study window)."""
    return corpus.filter(lambda r: r.published_year <= 2015)


def ep_score_correlation_drift(corpus: Corpus) -> SubsetComparison:
    """The Hsu & Poole number: corr(EP, score) then vs. now.

    The paper reports the correlation *decreasing* from 0.83 (459
    partial results) to 0.741 (477 valid results) as the 2015-2016
    high-efficiency / moderate-EP cohort arrived.
    """
    subset = hsu_poole_subset(corpus)
    return SubsetComparison(
        label="corr(EP, overall score)",
        subset_size=len(subset),
        subset_value=pearson(subset.eps(), subset.scores()),
        full_value=pearson(corpus.eps(), corpus.scores()),
    )


def mean_ep_drift(corpus: Corpus) -> SubsetComparison:
    """Fleet-average EP as seen in 2011 vs. the full record."""
    subset = wong_2011_subset(corpus)
    return SubsetComparison(
        label="mean EP",
        subset_size=len(subset),
        subset_value=float(np.mean(subset.eps())),
        full_value=float(np.mean(corpus.eps())),
    )


def high_ep_peak_spot_comparison(corpus: Corpus) -> Dict[str, float]:
    """The Wong ISCA'16 dispute, on his window and on the full record.

    Wong's claim: highly proportional servers typically peak near 60%
    utilization.  The paper's rebuttal: on all published results only
    ~2% peak at 60% (and ~69% still peak at 100%).  Both views are
    computed here: the *share of high-EP servers* (EP >= 0.9) peaking
    at or below 70%, per window.
    """

    def low_spot_share(population: Corpus) -> float:
        high_ep = population.filter(lambda r: r.ep >= 0.9)
        if len(high_ep) == 0:
            return float("nan")
        low = sum(1 for r in high_ep if r.primary_peak_spot <= 0.7)
        return low / len(high_ep)

    subset = wong_2015_subset(corpus)
    return {
        "window_size": float(len(subset)),
        "high_ep_low_spot_share_window": low_spot_share(subset),
        "high_ep_low_spot_share_full": low_spot_share(corpus),
        "share_60_full": sum(
            1 for r in corpus if abs(r.primary_peak_spot - 0.6) < 1e-9
        )
        / len(corpus),
    }
