"""Temporal trends and the hardware-availability-year reorganization.

The paper's core methodological move (Sections I and III) is to
re-index every published result by its *hardware availability year*
rather than its published year: 74 of the 477 results (15.5%) differ,
some by as much as six years, and per-year statistics shift by up to
~20% once corrected.  :func:`yearly_trend` computes the per-year
statistics under either indexing and :func:`reorganization_deltas`
quantifies the difference -- the numbers behind the paper's
"-6.2%~8.7%" (EP) and "-2.2%~16.6%" (EE) ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.stats import Summary, relative_change, summarize
from repro.dataset.corpus import Corpus
from repro.dataset.schema import SpecPowerResult

#: Statistic extractors the trend analyses support.
METRICS: Dict[str, Callable[[SpecPowerResult], float]] = {
    "ep": lambda result: result.ep,
    "score": lambda result: result.overall_score,
    "peak_ee": lambda result: result.peak_ee,
    "idle_fraction": lambda result: result.idle_fraction,
}


@dataclass(frozen=True)
class YearlyTrend:
    """Per-year summaries of one metric under one year indexing."""

    metric: str
    basis: str  # "hw" or "published"
    by_year: Dict[int, Summary]

    def years(self) -> List[int]:
        """Covered years, ascending."""
        return sorted(self.by_year)

    def series(self, field: str) -> List[float]:
        """One statistic ("avg", "median", "min", "max") across years."""
        return [self.by_year[year].as_dict()[field] for year in self.years()]


def yearly_trend(corpus: Corpus, metric: str = "ep", basis: str = "hw") -> YearlyTrend:
    """Summaries of ``metric`` per year.

    ``basis`` selects the year indexing: ``"hw"`` (hardware
    availability, the paper's corrected view) or ``"published"``.
    """
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose from {sorted(METRICS)}")
    if basis not in ("hw", "published"):
        raise ValueError("basis must be 'hw' or 'published'")
    extract = METRICS[metric]
    key = (lambda r: r.hw_year) if basis == "hw" else (lambda r: r.published_year)
    groups: Dict[int, List[float]] = {}
    for result in corpus:
        groups.setdefault(key(result), []).append(extract(result))
    return YearlyTrend(
        metric=metric,
        basis=basis,
        by_year={year: summarize(values) for year, values in groups.items()},
    )


@dataclass(frozen=True)
class ReorganizationDelta:
    """How one year's statistic moves when re-indexed by hardware year."""

    year: int
    published_value: float
    hw_value: float

    @property
    def relative(self) -> float:
        return relative_change(self.published_value, self.hw_value)


def reorganization_deltas(
    corpus: Corpus, metric: str = "ep", field: str = "avg"
) -> List[ReorganizationDelta]:
    """Per-year (hw-basis minus published-basis) deltas of a statistic.

    Only years present under *both* indexings are compared (hardware
    years before the benchmark existed have no published counterpart).
    The paper reports the spread of these deltas: average EP moves by
    -6.2%~8.7% and median EP by -8.6%~13.1%; average EE by -2.2%~16.6%
    and median EE by -5.0%~20.8%.
    """
    hw = yearly_trend(corpus, metric, basis="hw").by_year
    published = yearly_trend(corpus, metric, basis="published").by_year
    deltas = []
    for year in sorted(set(hw) & set(published)):
        deltas.append(
            ReorganizationDelta(
                year=year,
                published_value=published[year].as_dict()[field],
                hw_value=hw[year].as_dict()[field],
            )
        )
    return deltas


def delta_range(deltas: List[ReorganizationDelta]) -> tuple:
    """(most negative, most positive) relative delta across years."""
    if not deltas:
        raise ValueError("no overlapping years to compare")
    values = [delta.relative for delta in deltas]
    return min(values), max(values)


def mismatch_fraction(corpus: Corpus) -> float:
    """Share of results whose published year differs from hw year."""
    mismatched = sum(
        1 for result in corpus if result.published_year != result.hw_year
    )
    return mismatched / len(corpus)


def ep_step_changes(corpus: Corpus) -> Dict[str, float]:
    """The two EP step-jumps the paper attributes to Intel "tocks".

    Returns the relative increases of average and median EP from 2008
    to 2009 (Core -> Nehalem) and from 2011 to 2012 (Westmere -> Sandy
    Bridge); the paper reports +48.65%/+51.35% and +24.24%/+26.87%.
    """
    trend = yearly_trend(corpus, "ep", "hw").by_year
    return {
        "avg_2008_2009": relative_change(trend[2008].mean, trend[2009].mean),
        "median_2008_2009": relative_change(trend[2008].median, trend[2009].median),
        "avg_2011_2012": relative_change(trend[2011].mean, trend[2012].mean),
        "median_2011_2012": relative_change(trend[2011].median, trend[2012].median),
    }
