"""The EP distribution (Fig. 5).

The paper reads three landmarks off the CDF: 25.21% of servers fall in
[0.6, 0.7), 17.44% in [0.8, 0.9), and 99.58% score below 1.0 (only two
servers ever exceeded ideal proportionality).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Sequence, Tuple

import numpy as np

from repro.dataset.corpus import Corpus


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical CDF over a finite sample."""

    sorted_values: Tuple[float, ...]

    @cached_property
    def _array(self) -> np.ndarray:
        """The sample as a numpy array, built once per instance."""
        arr = np.asarray(self.sorted_values)
        arr.setflags(write=False)
        return arr

    def __call__(self, x: float) -> float:
        """P(value <= x)."""
        arr = self._array
        return float(np.searchsorted(arr, x, side="right")) / len(arr)

    def share_in(self, low: float, high: float) -> float:
        """P(low <= value < high)."""
        arr = self._array
        below_high = float(np.searchsorted(arr, high, side="left"))
        below_low = float(np.searchsorted(arr, low, side="left"))
        return (below_high - below_low) / len(arr)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` of the sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        return float(np.quantile(self._array, q))

    def series(self) -> Tuple[List[float], List[float]]:
        """(x, F(x)) pairs for plotting."""
        arr = list(self.sorted_values)
        n = len(arr)
        return arr, [(i + 1) / n for i in range(n)]


def empirical_cdf(values: Sequence[float]) -> EmpiricalCdf:
    """Build an empirical CDF from a finite sample."""
    ordered = tuple(sorted(float(v) for v in values))
    if not ordered:
        raise ValueError("cannot build a CDF from an empty sample")
    return EmpiricalCdf(sorted_values=ordered)


def ep_cdf(corpus: Corpus) -> EmpiricalCdf:
    """The Fig. 5 CDF: energy proportionality over the whole corpus.

    Pulls the EP column from the corpus' cached column store and sorts
    it in one vectorized pass; same tuple as sorting the per-record
    comprehension.
    """
    values = corpus.columns().array("ep")
    if values.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    return EmpiricalCdf(sorted_values=tuple(np.sort(values).tolist()))


def decile_shares(cdf: EmpiricalCdf) -> dict:
    """Share of the population in each 0.1-wide EP band."""
    bands = {}
    for i in range(0, 12):
        low = round(0.1 * i, 1)
        high = round(0.1 * (i + 1), 1)
        share = cdf.share_in(low, high)
        if share > 0.0:
            bands[(low, high)] = share
    return bands
