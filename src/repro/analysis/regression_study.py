"""Eq. 2 and the headline correlations (Sections I and III.D).

* corr(EP, idle power percentage) = -0.92: the lower a server idles,
  the more proportional it is;
* EP = 1.2969 * exp(k * idle), R^2 = 0.892 (k ~= -2.06, recovered from
  the paper's idle=5% => EP=1.17 example): proportionality improves
  *exponentially* as idle power falls, with a theoretical ceiling of
  1.297 at zero idle;
* corr(EP, overall score) = 0.741 (the paper notes this is lower than
  the 0.83 earlier work computed on a smaller, partly non-compliant
  sample).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.corpus import Corpus
from repro.metrics.correlation import pearson
from repro.metrics.regression import ExponentialFit, exponential_fit


@dataclass(frozen=True)
class IdleRegression:
    """The Section III.D study: Eq. 2 plus the idle correlation."""

    fit: ExponentialFit
    correlation: float
    n: int

    def predicted_ep(self, idle_fraction: float) -> float:
        """EP the fitted Eq. 2 predicts for an idle power percentage."""
        return float(self.fit.predict([idle_fraction])[0])

    @property
    def ceiling(self) -> float:
        """Theoretical maximum EP (idle -> 0); the paper derives 1.297."""
        return self.fit.amplitude


def idle_regression(corpus: Corpus) -> IdleRegression:
    """Fit Eq. 2 on the corpus and compute corr(EP, idle%)."""
    eps = corpus.eps()
    idles = corpus.idle_fractions()
    return IdleRegression(
        fit=exponential_fit(idles, eps),
        correlation=pearson(eps, idles),
        n=len(corpus),
    )


def ep_score_correlation(corpus: Corpus) -> float:
    """corr(EP, overall SPECpower score); the paper reports 0.741."""
    return pearson(corpus.eps(), corpus.scores())
