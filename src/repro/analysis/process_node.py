"""Lithography-node analysis (Section III.B's die-shrink discussion).

The paper observes that "usually the servers with newer processor and
finer manufacturing process have higher energy proportionality ...
However, the server's energy proportionality maybe lower even if it is
equipped with finer lithography process based processor" -- the Ivy
Bridge (22 nm) regression below Sandy Bridge (32 nm) being the named
counterexample.  This module quantifies both halves of the claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.dataset.corpus import Corpus
from repro.metrics.correlation import spearman
from repro.power.microarch import CATALOG, Codename


@dataclass(frozen=True)
class NodeStat:
    """EP summary of one lithography node."""

    process_nm: int
    count: int
    avg_ep: float
    codenames: Tuple[str, ...]


def ep_by_process_node(corpus: Corpus) -> List[NodeStat]:
    """Average EP per lithography node, finest node last."""
    groups: Dict[int, List] = {}
    names: Dict[int, set] = {}
    for result in corpus:
        if result.codename is Codename.UNKNOWN:
            continue
        nm = CATALOG[result.codename].process_nm
        groups.setdefault(nm, []).append(result.ep)
        names.setdefault(nm, set()).add(result.codename.value)
    stats = [
        NodeStat(
            process_nm=nm,
            count=len(values),
            avg_ep=float(np.mean(values)),
            codenames=tuple(sorted(names[nm])),
        )
        for nm, values in groups.items()
    ]
    stats.sort(key=lambda stat: -stat.process_nm)
    return stats


def node_ep_correlation(corpus: Corpus) -> float:
    """Rank correlation between process fineness and EP (positive =
    finer nodes are more proportional, the "usual" direction)."""
    fineness = []
    eps = []
    for result in corpus:
        if result.codename is Codename.UNKNOWN:
            continue
        fineness.append(-CATALOG[result.codename].process_nm)
        eps.append(result.ep)
    return spearman(fineness, eps)


def shrink_regressions(corpus: Corpus) -> List[Tuple[str, str, float]]:
    """Codename pairs where the finer-node successor has *lower* EP.

    Each entry is (successor, predecessor, EP deficit).  The paper's
    named case -- Ivy Bridge below Sandy Bridge -- must appear.
    """
    lineage = [
        (Codename.IVY_BRIDGE, Codename.SANDY_BRIDGE),
        (Codename.IVY_BRIDGE_EP, Codename.SANDY_BRIDGE_EP),
        (Codename.SKYLAKE, Codename.BROADWELL),
        (Codename.HASWELL, Codename.SANDY_BRIDGE_EN),
        (Codename.BROADWELL, Codename.HASWELL),
        (Codename.NEHALEM_EP, Codename.PENRYN),
        (Codename.SANDY_BRIDGE, Codename.WESTMERE),
    ]
    regressions = []
    for successor, predecessor in lineage:
        new = corpus.by_codename(successor)
        old = corpus.by_codename(predecessor)
        if len(new) == 0 or len(old) == 0:
            continue
        new_nm = CATALOG[successor].process_nm
        old_nm = CATALOG[predecessor].process_nm
        if new_nm > old_nm:
            continue  # not a shrink
        deficit = float(np.mean(old.eps())) - float(np.mean(new.eps()))
        if deficit > 0.0:
            regressions.append(
                (successor.value, predecessor.value, deficit)
            )
    return regressions
