"""Capacity planning: which server should the next rack buy?

The paper's conclusion lists "system capacity planning" among the uses
of its findings, and its central caution is that *peak* efficiency is
the wrong buying criterion: "a server with high peak energy efficiency
is not essentially highly energy proportional" (Section I).  This
module makes that concrete:

* :func:`fleet_for_demand` sizes a homogeneous fleet of one candidate
  model to carry a peak demand;
* :func:`evaluate_candidate` integrates that fleet's energy over a
  demand trace (the duty cycle the fleet will actually see);
* :func:`plan_procurement` ranks candidate models by trace energy and
  reports how the ranking differs from a naive peak-EE ranking --
  under a realistic diurnal duty cycle a more proportional server can
  beat one with a higher headline efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.regions import power_at, throughput_at
from repro.cluster.trace import DemandTrace, diurnal_trace
from repro.dataset.schema import SpecPowerResult


@dataclass(frozen=True)
class CandidateEvaluation:
    """One candidate model sized and priced in energy terms."""

    candidate: SpecPowerResult
    servers_needed: int
    daily_energy_kwh: float
    peak_ee: float
    ep: float

    @property
    def label(self) -> str:
        return f"{self.candidate.vendor} {self.candidate.model}"


def fleet_for_demand(
    candidate: SpecPowerResult,
    peak_demand_ops: float,
    headroom: float = 0.10,
) -> int:
    """Servers of this model needed to carry the peak with headroom."""
    if peak_demand_ops <= 0.0:
        raise ValueError("peak demand must be positive")
    if not 0.0 <= headroom < 1.0:
        raise ValueError("headroom must lie in [0, 1)")
    per_server = throughput_at(candidate, 1.0) * (1.0 - headroom)
    return max(1, math.ceil(peak_demand_ops / per_server))


def evaluate_candidate(
    candidate: SpecPowerResult,
    peak_demand_ops: float,
    trace: DemandTrace,
    headroom: float = 0.10,
) -> CandidateEvaluation:
    """Daily energy of a homogeneous fleet of this model on the trace.

    The fleet balances each step's demand evenly (homogeneous servers,
    no power-off: the rack is provisioned for the peak).
    """
    count = fleet_for_demand(candidate, peak_demand_ops, headroom)
    per_server_capacity = throughput_at(candidate, 1.0)
    step_hours = 24.0 / trace.steps
    energy_wh = 0.0
    for fraction in trace.demand_fraction:
        demand = fraction * peak_demand_ops
        utilization = min(1.0, demand / (count * per_server_capacity))
        energy_wh += count * power_at(candidate, utilization) * step_hours
    return CandidateEvaluation(
        candidate=candidate,
        servers_needed=count,
        daily_energy_kwh=energy_wh / 1000.0,
        peak_ee=candidate.peak_ee,
        ep=candidate.ep,
    )


@dataclass
class ProcurementPlan:
    """Ranked candidates plus the peak-EE-naive comparison."""

    evaluations: List[CandidateEvaluation]

    @property
    def best_by_energy(self) -> CandidateEvaluation:
        return min(self.evaluations, key=lambda e: e.daily_energy_kwh)

    @property
    def best_by_peak_ee(self) -> CandidateEvaluation:
        return max(self.evaluations, key=lambda e: e.peak_ee)

    @property
    def naive_choice_matches(self) -> bool:
        return (
            self.best_by_energy.candidate.result_id
            == self.best_by_peak_ee.candidate.result_id
        )

    @property
    def naive_penalty(self) -> float:
        """Extra daily energy of the peak-EE choice over the best."""
        best = self.best_by_energy.daily_energy_kwh
        naive = self.best_by_peak_ee.daily_energy_kwh
        return naive / best - 1.0


def build_controlled_candidates(
    ee_at_full: float = 45.0,
    peak_power_w: float = 300.0,
    low_ep: float = 0.65,
    high_ep: float = 0.95,
    throughput_edge: float = 0.12,
) -> List[SpecPowerResult]:
    """Two candidate models isolating the paper's Section I caution.

    The *throughput champion* carries ``throughput_edge`` more
    efficiency at full load (and therefore the higher peak EE) but a
    low EP; the *proportional* design gives up the headline number for
    a high EP.  Everything else (peak power, measurement grid) is
    identical, so a procurement comparison between them measures the
    value of proportionality alone.
    """
    from repro.dataset.curve_family import solve_curve_with_fallback
    from repro.dataset.schema import LoadLevel
    from repro.metrics.ep import TARGET_LOADS_DESCENDING
    from repro.power.microarch import Codename

    def materialize(result_id: str, model: str, ep: float, spot: float,
                    efficiency: float) -> SpecPowerResult:
        idle = 0.5 * (2.0 - ep) - 0.35  # a mid-band idle consistent with EP
        idle = min(max(idle, 0.06), 0.9 * (1.0 - ep / 2.0))
        curve = solve_curve_with_fallback(ep, idle, spot)
        grid = curve.grid_power()
        max_ops = efficiency * peak_power_w
        levels = [
            LoadLevel(
                target_load=load,
                ssj_ops=max_ops * load,
                average_power_w=peak_power_w * float(grid[int(round(load * 10))]),
            )
            for load in TARGET_LOADS_DESCENDING
        ]
        return SpecPowerResult(
            result_id=result_id,
            vendor="Controlled",
            model=model,
            form_factor="2U",
            hw_year=2016,
            published_year=2016,
            codename=Codename.HASWELL,
            nodes=1,
            chips_per_node=2,
            cores_per_chip=12,
            memory_gb=64.0,
            levels=levels,
            active_idle_power_w=peak_power_w * float(grid[0]),
        )

    champion = materialize(
        "ctrl-throughput", "Throughput champion", low_ep, 1.0,
        ee_at_full * (1.0 + throughput_edge),
    )
    proportional = materialize(
        "ctrl-proportional", "Proportional design", high_ep, 0.8, ee_at_full
    )
    return [champion, proportional]


def plan_procurement(
    candidates: Sequence[SpecPowerResult],
    peak_demand_ops: float,
    trace: Optional[DemandTrace] = None,
    headroom: float = 0.10,
) -> ProcurementPlan:
    """Evaluate every candidate model on the duty cycle and rank."""
    if not candidates:
        raise ValueError("no candidate models to evaluate")
    if trace is None:
        trace = diurnal_trace(noise=0.0)
    evaluations = [
        evaluate_candidate(candidate, peak_demand_ops, trace, headroom)
        for candidate in candidates
    ]
    evaluations.sort(key=lambda e: e.daily_energy_kwh)
    return ProcurementPlan(evaluations=evaluations)
