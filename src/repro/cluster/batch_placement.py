"""Columnar placement and job scheduling over :class:`FleetArrays`.

:class:`BatchPlacementEngine` is the vectorized twin of the scalar
paths in :mod:`repro.cluster.placement` and :mod:`repro.cluster.jobs`,
under the same bit-identity contract as the batch SSJ engine (PR 2):
the scalar implementations stay in place as the reference, and the
parity tests assert *exact* equality of every output object on the
seed corpus fleet.

The structure of the speedup: ranking keys, curve evaluations, and
utilization inversions -- the parts that cost one ``np.interp`` (or
fifty, for a bisection) per server in the scalar code -- are batched
through the :class:`FleetArrays` kernels, while the genuinely
sequential take/fit loops stay as cheap pure-Python float arithmetic
over pre-extracted lists, because their running-remainder accumulation
order is part of the bit-identity contract (``np.cumsum``'s pairwise
summation would drift in the last ulp).

``resolve_backend`` implements the ``fleet_backend`` switch shared by
the public entry points: ``"scalar"`` forces the originals,
``"columnar"`` forces this engine (raising where the fleet cannot be
columnized), and ``"auto"`` picks the engine for fleets large enough
to amortize construction, falling back to scalar for small or
non-uniform fleets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.fleet_arrays import FleetArrays, TiledFleetView
from repro.cluster.placement import Assignment, PlacementOutcome

#: Below this fleet size the scalar paths win: engine construction
#: (matrix building plus metric gathering) costs more than it saves.
AUTO_THRESHOLD = 24


def resolve_backend(fleet, fleet_backend: str):
    """The engine to use for ``fleet_backend``, or ``None`` for scalar.

    ``"sharded"`` returns a
    :class:`~repro.cluster.sharded.ShardedFleetEngine`; ``"auto"``
    picks it on its own for lazy ``TiledFleetView`` fleets of at least
    ``sharded.SHARDED_AUTO_THRESHOLD`` servers (eager fleets keep
    routing to the columnar engine, whose per-server assignments the
    schedulers need).
    """
    if fleet_backend == "scalar":
        return None
    if fleet_backend == "columnar":
        return BatchPlacementEngine(fleet)
    if fleet_backend == "sharded":
        from repro.cluster.sharded import ShardedFleetEngine

        return ShardedFleetEngine(fleet)
    if fleet_backend != "auto":
        raise ValueError(
            f"unknown fleet_backend {fleet_backend!r}; "
            "choose 'auto', 'scalar', 'columnar', or 'sharded'"
        )
    if isinstance(fleet, TiledFleetView):
        from repro.cluster.sharded import SHARDED_AUTO_THRESHOLD, ShardedFleetEngine

        try:
            if len(fleet) >= SHARDED_AUTO_THRESHOLD:
                return ShardedFleetEngine(fleet)
            return BatchPlacementEngine(fleet)
        except ValueError:  # unrepresentable base; scalar handles it
            return None
    if isinstance(fleet, FleetArrays):
        return BatchPlacementEngine(fleet)
    if len(fleet) < AUTO_THRESHOLD:
        return None
    try:
        return BatchPlacementEngine(fleet)
    except ValueError:
        return None


class BatchPlacementEngine:
    """Vectorized placement/scheduling policies, built once per fleet.

    Reproduces ``pack_to_full_placement``, ``ep_aware_placement``,
    ``max_throughput_under_cap``, and the two ``jobs.py`` schedulers
    bit-identically.  Construction precomputes the ranked orders
    (stable argsorts on the exact scalar sort keys) and the per-server
    capacity/idle columns the sequential loops consume.
    """

    def __init__(self, fleet):
        self.arrays = FleetArrays.from_fleet(fleet)
        arrays = self.arrays
        # Stable argsort on the negated key == Python's stable
        # descending sort on the same floats.
        self._pack_rows = np.argsort(-arrays.full_load_ee, kind="stable").tolist()
        self._ep_rows = np.argsort(-arrays.peak_ee, kind="stable").tolist()
        self._full_cap = arrays.full_capacity.tolist()
        self._spot_cap = arrays.spot_capacity.tolist()
        self._idle = arrays.idle_power_w.tolist()

    # -- fluid placement (placement.py twin) -------------------------------------

    def pack_to_full(
        self, demand_ops: float, power_off_unused: bool = False
    ) -> PlacementOutcome:
        """Columnar ``pack_to_full_placement``; identical outcome."""
        rows, takes, unused = self._pack(demand_ops, power_off_unused)
        return self._outcome("pack-to-full", demand_ops, rows, takes, unused)

    def ep_aware(
        self, demand_ops: float, power_off_unused: bool = False
    ) -> PlacementOutcome:
        """Columnar ``ep_aware_placement``; identical outcome."""
        rows, takes, unused = self._ep(demand_ops, power_off_unused)
        return self._outcome("ep-aware", demand_ops, rows, takes, unused)

    def place(
        self, policy: str, demand_ops: float, power_off_unused: bool = False
    ) -> PlacementOutcome:
        """Dispatch on the policy name used by the scalar registries."""
        if policy == "pack-to-full":
            return self.pack_to_full(demand_ops, power_off_unused)
        if policy == "ep-aware":
            return self.ep_aware(demand_ops, power_off_unused)
        raise ValueError(f"unknown policy {policy!r}")

    def _pack(
        self, demand_ops: float, power_off_unused: bool
    ) -> Tuple[List[int], List[float], float]:
        if demand_ops < 0.0:
            raise ValueError("demand cannot be negative")
        remaining = demand_ops
        rows: List[int] = []
        takes: List[float] = []
        unused = 0.0
        for row in self._pack_rows:
            if remaining <= 0.0:
                if not power_off_unused:
                    unused += self._idle[row]
                continue
            cap = self._full_cap[row]
            # min(remaining, cap), spelled out so the equal case keeps
            # the scalar path's operand choice.
            take = remaining if remaining <= cap else cap
            rows.append(row)
            takes.append(take)
            remaining -= take
        return rows, takes, unused

    def _ep(
        self, demand_ops: float, power_off_unused: bool
    ) -> Tuple[List[int], List[float], float]:
        if demand_ops < 0.0:
            raise ValueError("demand cannot be negative")
        remaining = demand_ops
        rows: List[int] = []
        takes: List[float] = []
        position = {}
        for row in self._ep_rows:
            if remaining <= 0.0:
                break
            cap = self._spot_cap[row]
            take = remaining if remaining <= cap else cap
            position[row] = len(rows)
            rows.append(row)
            takes.append(take)
            remaining -= take
        if remaining > 0.0:
            for row in self._ep_rows:
                if remaining <= 0.0:
                    break
                at = position.get(row)
                already = takes[at] if at is not None else 0.0
                headroom = self._full_cap[row] - already
                extra = remaining if remaining <= headroom else headroom
                if extra <= 0.0:
                    continue
                if at is None:
                    position[row] = len(rows)
                    rows.append(row)
                    takes.append(already + extra)
                else:
                    takes[at] = already + extra
                remaining -= extra
        unused = 0.0
        if not power_off_unused:
            assigned = set(rows)
            # Fleet order, like the scalar generator sum over `fleet`.
            for row in range(len(self._idle)):
                if row not in assigned:
                    unused += self._idle[row]
        return rows, takes, unused

    def _assignment_columns(
        self, rows: List[int], takes: List[float]
    ) -> Tuple[List[float], List[float]]:
        index = np.array(rows, dtype=np.intp)
        utils = self.arrays.utilization_for(np.array(takes), rows=index)
        powers = self.arrays.power_at(utils, rows=index)
        return utils.tolist(), powers.tolist()

    def _outcome(
        self,
        policy: str,
        demand_ops: float,
        rows: List[int],
        takes: List[float],
        unused: float,
    ) -> PlacementOutcome:
        outcome = PlacementOutcome(
            policy=policy, demand_ops=demand_ops, unused_idle_power_w=unused
        )
        if rows:
            utils, powers = self._assignment_columns(rows, takes)
            records = self.arrays.records
            outcome.assignments = [
                Assignment(
                    server=records[row],
                    utilization=utilization,
                    throughput_ops=take,
                    power_w=power,
                )
                for row, utilization, take, power in zip(rows, utils, takes, powers)
            ]
        return outcome

    def place_totals(
        self, policy: str, demand_ops: float, power_off_unused: bool = False
    ) -> Tuple[float, float]:
        """(placed_ops, total_power_w) without materializing outcomes.

        The trace replay only consumes these two totals per step;
        skipping the per-server ``Assignment`` objects keeps the hot
        loop allocation-free.  Both sums run sequentially over the
        assignment-order lists, matching the ``PlacementOutcome``
        property reductions bit for bit.
        """
        if policy == "pack-to-full":
            rows, takes, unused = self._pack(demand_ops, power_off_unused)
        elif policy == "ep-aware":
            rows, takes, unused = self._ep(demand_ops, power_off_unused)
        else:
            raise ValueError(f"unknown policy {policy!r}")
        placed = sum(takes)
        powers: List[float] = []
        if rows:
            _, powers = self._assignment_columns(rows, takes)
        return placed, sum(powers) + unused

    def max_throughput_under_cap(
        self,
        power_cap_w: float,
        policy: str = "ep-aware",
        power_off_unused: bool = False,
    ) -> PlacementOutcome:
        """Columnar ``max_throughput_under_cap``; identical outcome."""
        if power_cap_w <= 0.0:
            raise ValueError("power cap must be positive")
        if policy not in ("ep-aware", "pack-to-full"):
            raise ValueError(f"unknown policy {policy!r}")
        total_capacity = sum(self._full_cap)
        low, high = 0.0, total_capacity
        best = self.place(policy, 0.0, power_off_unused)
        for _ in range(40):
            mid = 0.5 * (low + high)
            outcome = self.place(policy, mid, power_off_unused)
            if outcome.total_power_w <= power_cap_w and outcome.satisfied():
                best = outcome
                low = mid
            else:
                high = mid
        return best

    # -- job scheduling (jobs.py twin) -------------------------------------------

    def first_fit_decreasing(self, jobs: Sequence) -> "Schedule":
        """Columnar ``FirstFitDecreasing.schedule``; identical schedule.

        The FFD rank key ``throughput_at(s, 1.0) / power_at(s, 1.0)``
        is the same IEEE division as the pack order's full-load
        efficiency, so the precomputed pack ranking is reused.
        """
        caps = [self._full_cap[row] + 1e-9 for row in self._pack_rows]
        return self._fit_jobs(
            "first-fit-decreasing", jobs, [(self._pack_rows, caps)]
        )

    def peak_spot_aware(self, jobs: Sequence) -> "Schedule":
        """Columnar ``PeakSpotAware.schedule``; identical schedule."""
        spot_caps = [self._spot_cap[row] + 1e-9 for row in self._ep_rows]
        full_caps = [self._full_cap[row] + 1e-9 for row in self._ep_rows]
        return self._fit_jobs(
            "peak-spot-aware",
            jobs,
            [(self._ep_rows, spot_caps), (self._ep_rows, full_caps)],
        )

    def schedule(self, policy: str, jobs: Sequence) -> "Schedule":
        """Dispatch on the scheduler name."""
        if policy == "first-fit-decreasing":
            return self.first_fit_decreasing(jobs)
        if policy == "peak-spot-aware":
            return self.peak_spot_aware(jobs)
        raise ValueError(f"unknown scheduler {policy!r}")

    def _fit_jobs(self, policy: str, jobs: Sequence, passes) -> "Schedule":
        from repro.cluster.jobs import Schedule

        schedule = Schedule(policy=policy, fleet=list(self.arrays.records))
        ids = self.arrays.ids
        pending = sorted(jobs, key=lambda job: -job.demand_ops)
        for rows, caps in passes:
            spill = []
            for job in pending:
                placed = False
                for slot, row in enumerate(rows):
                    result_id = ids[row]
                    used = schedule.loads_ops.get(result_id, 0.0)
                    if used + job.demand_ops <= caps[slot]:
                        schedule.loads_ops[result_id] = used + job.demand_ops
                        schedule.assignments[job.job_id] = result_id
                        placed = True
                        break
                if not placed:
                    spill.append(job)
            pending = spill
        schedule.unplaced.extend(job.job_id for job in pending)
        return schedule

    def schedule_power_w(self, schedule) -> float:
        """Vectorized ``Schedule.total_power_w``; identical float.

        One batched utilization inversion plus one batched power
        evaluation over the fleet replaces the scalar property's
        per-server 50-iteration bisections.
        """
        loads = np.array(
            [schedule.loads_ops.get(result_id, 0.0) for result_id in self.arrays.ids]
        )
        utils = self.arrays.utilization_for(loads)
        powers = self.arrays.power_at(utils)
        return sum(powers.tolist())
