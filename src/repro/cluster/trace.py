"""Trace-driven placement simulation.

Section V.C frames its guidance for live operation -- heterogeneous
servers, fluctuating demand, fixed racks.  This module closes the loop:
generate a diurnal demand trace (the double-peaked day shape that
motivates energy-proportional computing in the first place, per
Barroso & Hoelzle), replay it against a fleet under each placement
policy, and integrate energy over the day.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro._compat import warn_positional
from repro.cluster.placement import (
    PlacementOutcome,
    ep_aware_placement,
    pack_to_full_placement,
)
from repro.dataset.schema import SpecPowerResult

#: ``np.exp`` and ``math.exp`` disagree in the last ulp on some
#: arguments; mapping ``math.exp`` over the array keeps the vectorized
#: trace bit-identical to the per-timestep reference loop.
_EXP_UFUNC = np.frompyfunc(math.exp, 1, 1)


@dataclass(frozen=True)
class DemandTrace:
    """A demand time series, as fractions of fleet capacity."""

    times_h: tuple
    demand_fraction: tuple

    def __post_init__(self):
        if len(self.times_h) != len(self.demand_fraction) or not self.times_h:
            raise ValueError("trace arrays must align and be non-empty")
        if any(not 0.0 <= d <= 1.0 for d in self.demand_fraction):
            raise ValueError("demand fractions must lie in [0, 1]")
        if any(b <= a for a, b in zip(self.times_h, self.times_h[1:])):
            raise ValueError("trace times must be strictly increasing")

    @property
    def steps(self) -> int:
        return len(self.times_h)

    def mean_demand(self) -> float:
        """Average demand fraction over the trace."""
        return float(np.mean(self.demand_fraction))


def diurnal_trace(
    steps_per_day: int = 48,
    base: float = 0.25,
    peak: float = 0.85,
    peak_hour: float = 14.0,
    secondary_peak_hour: float = 20.5,
    noise: float = 0.02,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> DemandTrace:
    """A double-peaked day: quiet night, afternoon peak, evening bump.

    With ``noise > 0`` a randomness source is required: pass either a
    ``seed`` or an already-constructed ``rng`` so the stream stays
    visible at the call site (REP106).  ``noise=0.0`` is the
    deterministic shape and needs neither.

    Vectorized over the timesteps; bit-identical to the per-timestep
    reference loop (:mod:`repro.cluster.reference`): the exponentials
    go through ``math.exp`` via :data:`_EXP_UFUNC`, and a single
    ``rng.normal(0.0, noise, size=n)`` call draws the same stream as
    ``n`` scalar draws.
    """
    if not 0.0 <= base < peak <= 1.0:
        raise ValueError("need 0 <= base < peak <= 1")
    if steps_per_day < 4:
        raise ValueError("at least four steps per day")
    if rng is not None and seed is not None:
        raise ValueError("pass at most one of seed= or rng=")
    if noise > 0.0:
        if rng is None and seed is None:
            raise ValueError("noise > 0 needs a randomness source: seed= or rng=")
        if rng is None:
            rng = np.random.default_rng(seed)
    steps = np.arange(steps_per_day, dtype=np.float64)
    times = 24.0 * steps / steps_per_day
    main = _EXP_UFUNC(-((times - peak_hour) ** 2) / (2 * 3.5**2)).astype(np.float64)
    evening = 0.55 * _EXP_UFUNC(
        -((times - secondary_peak_hour) ** 2) / (2 * 1.8**2)
    ).astype(np.float64)
    level = base + (peak - base) * np.minimum(1.0, main + evening)
    if rng is not None:
        # rng.normal(0.0, 0.0) returns exactly 0.0, so skipping the
        # draw at noise == 0.0 keeps the stream and output identical.
        level = level + rng.normal(0.0, noise, size=steps_per_day)
    demands = np.minimum(1.0, np.maximum(0.0, level))
    return DemandTrace(
        times_h=tuple(times.tolist()), demand_fraction=tuple(demands.tolist())
    )


@dataclass
class TraceOutcome:
    """Energy accounting of one policy over one trace."""

    policy: str
    energy_kwh: float
    served_gops: float
    step_hours: float
    unserved_steps: int

    @property
    def energy_per_gop(self) -> float:
        if self.served_gops == 0.0:
            return float("inf")
        return self.energy_kwh / self.served_gops


_POLICIES: Dict[str, Callable] = {
    "pack-to-full": pack_to_full_placement,
    "ep-aware": ep_aware_placement,
}


@warn_positional("policy", "repro.api.ReplayQuery")
def replay_trace(
    fleet: Sequence[SpecPowerResult],
    trace: DemandTrace,
    policy: str = "ep-aware",
    power_off_unused: bool = False,
    fleet_backend: str = "auto",
) -> TraceOutcome:
    """Integrate fleet energy while serving the trace under a policy.

    ``fleet_backend`` selects the implementation: ``"scalar"`` is this
    per-step loop over the scalar placements, ``"columnar"`` the
    bit-identical :class:`repro.cluster.batch_trace.BatchTraceReplay`
    (placement engine built once, shared across all steps), and
    ``"auto"`` (default) picks the columnar path for fleets large
    enough to amortize it.
    """
    from repro.cluster.batch_trace import resolve_trace_backend

    replayer = resolve_trace_backend(fleet, fleet_backend)
    if replayer is not None:
        return replayer.replay(trace, policy, power_off_unused)
    if policy not in _POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {sorted(_POLICIES)}")
    place = _POLICIES[policy]
    capacity = sum(
        level.ssj_ops
        for server in fleet
        for level in server.levels
        if level.target_load == 1.0
    )
    step_hours = 24.0 / trace.steps
    energy_wh = 0.0
    served_ops_h = 0.0
    unserved = 0
    for fraction in trace.demand_fraction:
        outcome: PlacementOutcome = place(
            fleet,
            fraction * capacity,
            power_off_unused=power_off_unused,
            fleet_backend="scalar",
        )
        if not outcome.satisfied():
            unserved += 1
        energy_wh += outcome.total_power_w * step_hours
        served_ops_h += outcome.placed_ops * step_hours
    return TraceOutcome(
        policy=policy,
        energy_kwh=energy_wh / 1000.0,
        served_gops=served_ops_h * 3600.0 / 1e9,
        step_hours=step_hours,
        unserved_steps=unserved,
    )


@warn_positional("power_off_unused", "repro.api.ReplayQuery per policy")
def compare_policies(
    fleet: Sequence[SpecPowerResult],
    trace: Optional[DemandTrace] = None,
    power_off_unused: bool = False,
    fleet_backend: str = "auto",
) -> Dict[str, TraceOutcome]:
    """Replay the same trace under every policy."""
    if trace is None:
        trace = diurnal_trace(noise=0.0)
    from repro.cluster.batch_trace import resolve_trace_backend

    replayer = resolve_trace_backend(fleet, fleet_backend)
    if replayer is not None:
        return replayer.compare_policies(trace, power_off_unused)
    return {
        policy: replay_trace(
            fleet,
            trace,
            policy=policy,
            power_off_unused=power_off_unused,
            fleet_backend="scalar",
        )
        for policy in _POLICIES
    }


def daily_saving(outcomes: Dict[str, TraceOutcome]) -> float:
    """Relative daily energy saved by EP-aware placement over packing."""
    packed = outcomes["pack-to-full"].energy_kwh
    aware = outcomes["ep-aware"].energy_kwh
    if packed <= 0.0:
        raise ValueError("degenerate trace: no energy consumed")
    return 1.0 - aware / packed
