"""Job-granular scheduling: the Wong ISCA'16 comparator.

The paper's related work (Section VI) discusses Wong's *peak
efficiency aware scheduling* [41].  Where :mod:`repro.cluster.placement`
treats demand as a fluid, this module schedules discrete jobs -- each
with a fixed throughput demand -- onto a heterogeneous fleet:

* :class:`FirstFitDecreasing` -- classic consolidation: sort jobs by
  size, place each on the first server with room up to 100%;
* :class:`PeakSpotAware` -- Wong-style: cap each server at its
  peak-efficiency utilization while capacity allows, spilling to the
  band above the spot only when the fleet fills up.

Both return a :class:`Schedule` with per-server loads and fleet power.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.regions import power_at, throughput_at
from repro.dataset.schema import SpecPowerResult


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work."""

    job_id: str
    demand_ops: float

    def __post_init__(self):
        if self.demand_ops <= 0.0:
            raise ValueError("a job needs positive demand")


@dataclass
class Schedule:
    """Jobs mapped to servers, with the resulting fleet power."""

    policy: str
    assignments: Dict[str, str] = field(default_factory=dict)  # job -> server
    loads_ops: Dict[str, float] = field(default_factory=dict)  # server -> ops
    unplaced: List[str] = field(default_factory=list)
    fleet: Sequence[SpecPowerResult] = ()

    def utilization_of(self, server: SpecPowerResult) -> float:
        """Utilization this schedule drives the server to.

        Mirrors ``placement._utilization_for``'s edge handling: a
        non-positive load sits at 0.0 and a load at or beyond the
        server's capacity (including any load on a zero-capacity
        server) pins to 1.0.
        """
        load = self.loads_ops.get(server.result_id, 0.0)
        if load <= 0.0:
            return 0.0
        if load >= throughput_at(server, 1.0):
            return 1.0
        low, high = 0.0, 1.0
        for _ in range(50):
            mid = 0.5 * (low + high)
            if throughput_at(server, mid) < load:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    @property
    def total_power_w(self) -> float:
        return sum(
            power_at(server, self.utilization_of(server)) for server in self.fleet
        )

    @property
    def placed_ops(self) -> float:
        return sum(self.loads_ops.values())

    @property
    def servers_loaded(self) -> int:
        return sum(1 for load in self.loads_ops.values() if load > 0.0)


class JobScheduler(ABC):
    """Assigns a batch of jobs onto a fleet.

    ``fleet_backend`` selects the implementation on both concrete
    schedulers: ``"scalar"`` runs the per-server probe loops below,
    ``"columnar"`` the bit-identical vectorized engine
    (:mod:`repro.cluster.batch_placement`), and ``"auto"`` (default)
    picks the columnar path for fleets large enough to amortize it.
    """

    name: str = "abstract"

    @abstractmethod
    def schedule(
        self,
        fleet: Sequence[SpecPowerResult],
        jobs: Sequence[Job],
        fleet_backend: str = "auto",
    ) -> Schedule:
        """Place every job (or report it unplaced) on the fleet."""

    @staticmethod
    def _capacity(server: SpecPowerResult, cap_utilization: float) -> float:
        return throughput_at(server, cap_utilization)

    @staticmethod
    def _columnar_engine(fleet: Sequence[SpecPowerResult], fleet_backend: str):
        from repro.cluster.batch_placement import resolve_backend

        return resolve_backend(fleet, fleet_backend)


class FirstFitDecreasing(JobScheduler):
    """Bin-pack jobs to 100% utilization, best full-load EE first."""

    name = "first-fit-decreasing"

    def schedule(
        self,
        fleet: Sequence[SpecPowerResult],
        jobs: Sequence[Job],
        fleet_backend: str = "auto",
    ) -> Schedule:
        """Largest jobs first onto the most efficient-at-full servers."""
        engine = self._columnar_engine(fleet, fleet_backend)
        if engine is not None:
            return engine.first_fit_decreasing(jobs)
        schedule = Schedule(policy=self.name, fleet=list(fleet))
        ranked = sorted(
            fleet,
            key=lambda s: -(
                throughput_at(s, 1.0) / power_at(s, 1.0)
            ),
        )
        ordered_jobs = sorted(jobs, key=lambda job: -job.demand_ops)
        for job in ordered_jobs:
            placed = False
            for server in ranked:
                used = schedule.loads_ops.get(server.result_id, 0.0)
                if used + job.demand_ops <= self._capacity(server, 1.0) + 1e-9:
                    schedule.loads_ops[server.result_id] = used + job.demand_ops
                    schedule.assignments[job.job_id] = server.result_id
                    placed = True
                    break
            if not placed:
                schedule.unplaced.append(job.job_id)
        return schedule


class PeakSpotAware(JobScheduler):
    """Wong-style: fill servers only to their peak-efficiency spot.

    Two passes: the first caps every server at its peak spot (taking
    servers in descending peak efficiency); jobs that do not fit spill
    into a second pass that relaxes the cap to 100%.
    """

    name = "peak-spot-aware"

    def schedule(
        self,
        fleet: Sequence[SpecPowerResult],
        jobs: Sequence[Job],
        fleet_backend: str = "auto",
    ) -> Schedule:
        """Capped pass at the peak spots, then an uncapped spill pass."""
        engine = self._columnar_engine(fleet, fleet_backend)
        if engine is not None:
            return engine.peak_spot_aware(jobs)
        schedule = Schedule(policy=self.name, fleet=list(fleet))
        ranked = sorted(fleet, key=lambda s: -s.peak_ee)
        ordered_jobs = sorted(jobs, key=lambda job: -job.demand_ops)
        spill: List[Job] = []
        for job in ordered_jobs:
            if not self._place(schedule, ranked, job, capped=True):
                spill.append(job)
        for job in spill:
            if not self._place(schedule, ranked, job, capped=False):
                schedule.unplaced.append(job.job_id)
        return schedule

    def _place(
        self,
        schedule: Schedule,
        ranked: Sequence[SpecPowerResult],
        job: Job,
        capped: bool,
    ) -> bool:
        for server in ranked:
            cap = server.primary_peak_spot if capped else 1.0
            used = schedule.loads_ops.get(server.result_id, 0.0)
            if used + job.demand_ops <= self._capacity(server, cap) + 1e-9:
                schedule.loads_ops[server.result_id] = used + job.demand_ops
                schedule.assignments[job.job_id] = server.result_id
                return True
        return False


def synthesize_jobs(
    fleet: Sequence[SpecPowerResult],
    demand_fraction: float,
    mean_job_fraction: float = 0.002,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> List[Job]:
    """A job batch totalling ``demand_fraction`` of fleet capacity.

    Job sizes are lognormal around ``mean_job_fraction`` of capacity --
    many small jobs with a heavy tail, the usual cluster shape.  The
    randomness source is required: pass either a ``seed`` or an
    already-constructed ``rng`` so the stream stays visible at the
    call site (REP106).
    """
    if not 0.0 < demand_fraction <= 1.0:
        raise ValueError("demand fraction must lie in (0, 1]")
    if (rng is None) == (seed is None):
        raise ValueError("pass exactly one of seed= or rng=")
    if rng is None:
        rng = np.random.default_rng(seed)
    capacity = sum(throughput_at(server, 1.0) for server in fleet)
    target = demand_fraction * capacity
    jobs: List[Job] = []
    total = 0.0
    index = 0
    while total < target:
        size = float(
            rng.lognormal(mean=np.log(mean_job_fraction * capacity), sigma=0.8)
        )
        size = min(size, target - total) if target - total < size else size
        size = max(size, 1e-6 * capacity)
        jobs.append(Job(job_id=f"job-{index:05d}", demand_ops=size))
        total += size
        index += 1
    return jobs


def compare_schedulers(
    fleet: Sequence[SpecPowerResult],
    jobs: Sequence[Job],
    fleet_backend: str = "auto",
) -> Dict[str, Schedule]:
    """Run both schedulers on the same batch."""
    return {
        scheduler.name: scheduler.schedule(fleet, jobs, fleet_backend=fleet_backend)
        for scheduler in (FirstFitDecreasing(), PeakSpotAware())
    }
