"""Sharded, shared-memory, out-of-core columnar fleet engine.

The columnar engine (:mod:`repro.cluster.batch_placement`) holds the
whole fleet as one in-RAM matrix pair and walks its take loops in
Python -- both walls well before N = 10^6 servers.  This module keeps
the *answers* of that engine bit for bit while changing the
representation and the reductions:

* **Sharded columns.**  The fleet's derived placement columns (ranked
  capacities, idle powers, running prefix folds, rank permutations)
  are built once, O(base) + O(N), and then only ever *streamed* in
  fixed-size shards (:data:`DEFAULT_SHARD_SIZE` servers at a time), so
  a query's working set is bounded by the shard size, not the fleet.
  Large fleets spill the columns to fingerprint-keyed ``.npy`` files
  (:class:`repro.dataset.columns.ColumnSpillStore`) and re-open them
  as read-only memory maps -- out-of-core, page-cache resident.

* **Exact sequential folds.**  The scalar paths' accumulation order is
  part of the repo's bit-identity contract, and a shard-parallel sum
  would reassociate it.  Every reduction here is therefore expressed
  through ``np.ufunc.accumulate`` -- a strict sequential left fold --
  continued across shard boundaries by carrying the running scalar
  into the next shard's seeded accumulate.  The take loops themselves
  collapse to a *crossing search*: the scalar remainder sequence
  ``r_{i+1} = fl(r_i - cap_i)`` is exactly ``np.subtract.accumulate``
  over ``[demand, cap_0, cap_1, ...]``, the first index with
  ``r_i <= cap_i`` is where the scalar loop takes a partial share, and
  everything before/after it reduces from precomputed prefix folds
  plus carry-continued suffix folds.  (Before the crossing the
  remainder is strictly positive: ``fl(r - c)`` with ``0 <= c < r``
  cannot round to zero -- ``c = 0`` is exact, ``r <= 2c`` is exact by
  Sterbenz's lemma, and otherwise the result exceeds ``c`` -- so the
  crossing test reproduces the scalar loop's branch decisions
  exactly, including zero-capacity rows.)

* **Summaries, not assignments.**  A million-row placement cannot
  afford a million ``Assignment`` objects; queries return
  :class:`SummaryOutcome`, a ``PlacementOutcome`` carrying the same
  scalar ``placed_ops`` / ``total_power_w`` / ``servers_used`` floats
  (the folds match the property reductions exactly) without the
  per-server list.

* **Windowed, pooled replay.**  :class:`ShardedTraceReplay` streams a
  trace window by window -- peak RSS is O(N) columns + O(window), not
  O(N * T) -- and optionally fans the steps of a window across a
  process pool with zero-copy column views
  (``multiprocessing.shared_memory`` segments for in-RAM engines,
  shared page-cache memmaps for spilled ones).  Workers are hardened
  like the ensemble pool: the ``shard.worker`` fault-injection site
  claims trigger budget at dispatch time in step order, failing steps
  are retried on a bounded budget, a broken pool is restarted once,
  and then the replay degrades to serial execution with a warning.
  Parallel replay equals serial replay exactly (per-step work is
  self-contained; the parent folds results in step order).

``fleet_backend="sharded"`` selects this engine on every public entry
point; ``"auto"`` engages it for lazy
:class:`~repro.cluster.fleet_arrays.TiledFleetView` fleets of at least
:data:`SHARDED_AUTO_THRESHOLD` servers.
"""

from __future__ import annotations

import hashlib
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.fleet_arrays import (
    FleetArrays,
    TiledFleetView,
    _bisect_rows,
    _interp_rows,
)
from repro.cluster.placement import PlacementOutcome
from repro.cluster.trace import (
    _POLICIES,
    DemandTrace,
    TraceOutcome,
    diurnal_trace,
)
from repro.core.faults import active_plan
from repro.core.resilience import TransientError
from repro.dataset.columns import ColumnSpillStore

#: Servers per shard: the streaming granule of every fold and scan.
DEFAULT_SHARD_SIZE = 65_536

#: ``fleet_backend="auto"`` routes a lazy ``TiledFleetView`` of at
#: least this many servers to the sharded engine.
SHARDED_AUTO_THRESHOLD = 100_000

#: Fleets of at least this many servers spill their derived columns
#: to disk (memmapped) instead of holding them resident.
SPILL_THRESHOLD = 262_144

#: Replay steps dispatched per pool window.
DEFAULT_WINDOW_STEPS = 64

#: Bounded-wait tick for the worker pool (keeps every wait timed).
_WAIT_TICK_S = 0.25

#: Version tag folded into the spill key; bump when the layout changes.
_LAYOUT_TAG = "sharded-1"

#: The derived column arrays a query kernel needs, in a fixed order so
#: spill files and shared-memory blocks enumerate identically.
_LAYOUT_NAMES = (
    "grid",
    "base_power",
    "base_ops",
    "pack_perm",
    "caps_pack",
    "acc_caps_pack",
    "acc_fullpow_pack",
    "idle_pack",
    "used_pack",
    "ep_perm",
    "ep_rank",
    "spotcap_ep",
    "acc_spotcap_ep",
    "spotpow_ep",
    "acc_spotpow_ep",
    "used_spot_ep",
    "hprime_ep",
    "acc_topped_take_ep",
    "acc_topped_pow_ep",
    "used_topped_ep",
    "idle_fleet",
)


@dataclass
class SummaryOutcome(PlacementOutcome):
    """A placement result carried as fleet-level scalars.

    Behaves like :class:`~repro.cluster.placement.PlacementOutcome`
    (same properties, same ``satisfied`` test, same floats -- the
    sharded folds reproduce the property reductions exactly) but holds
    no per-server ``Assignment`` list: at a million servers the
    assignment objects alone would dwarf the column data.  The
    ``assignments`` field is always empty; the scalar totals live in
    the ``summary_*`` fields.
    """

    summary_placed_ops: float = 0.0
    summary_assigned_power_w: float = 0.0
    summary_servers_used: int = 0

    @property
    def placed_ops(self) -> float:
        return self.summary_placed_ops

    @property
    def total_power_w(self) -> float:
        return self.summary_assigned_power_w + self.unused_idle_power_w

    @property
    def servers_used(self) -> int:
        return self.summary_servers_used


def _fold_continue(carry: float, chunk: np.ndarray) -> float:
    """Continue a strict left-fold sum across a shard boundary.

    ``np.add.accumulate`` has a loop-carried dependency, so it is a
    sequential left fold -- seeding it with the running ``carry``
    reproduces ``carry + x_0 + x_1 + ...`` in exactly the scalar
    paths' addition order, shard by shard.
    """
    if chunk.size == 0:
        return carry
    seeded = np.empty(chunk.size + 1, dtype=np.float64)
    seeded[0] = carry
    seeded[1:] = chunk
    return float(np.add.accumulate(seeded)[-1])


def streamed_level_capacity(records: Sequence, count: int) -> float:
    """Full-load ``ssj_ops`` capacity of ``records`` tiled to ``count``.

    Bit-identical to the scalar ``sum(level.ssj_ops for server in
    fleet for level in server.levels if level.target_load == 1.0)``
    over the tiled fleet, without materializing a single clone: the
    flat value sequence is one base cycle repeated, so the fold runs
    one seeded accumulate per cycle (``0.0 + x == x`` for the finite
    non-negative first term, matching the int-seeded builtin ``sum``).
    """
    values: List[float] = []
    offsets = [0]
    for record in records:
        for level in record.levels:
            if level.target_load == 1.0:
                values.append(level.ssj_ops)
        offsets.append(len(values))
    flat = np.array(values, dtype=np.float64)
    repeats, remainder = divmod(count, len(records))
    carry = 0.0
    for _ in range(repeats):
        carry = _fold_continue(carry, flat)
    if remainder:
        carry = _fold_continue(carry, flat[: offsets[remainder]])
    return carry


class _ShardKernel:
    """Placement queries over the sharded column layout.

    Operates on a plain ``name -> array`` mapping -- resident numpy
    arrays in the parent engine, zero-copy shared-memory views or
    read-only memmaps inside pool workers -- so the same query code
    runs everywhere the columns can live.  Every scan and fold visits
    the columns in :data:`DEFAULT_SHARD_SIZE`-bounded slices.
    """

    def __init__(
        self,
        layout: Dict[str, np.ndarray],
        count: int,
        base_count: int,
        shard_size: int,
    ):
        self.layout = layout
        self.count = count
        self.base_count = base_count
        self.shard_size = shard_size

    # -- streaming primitives ----------------------------------------------------

    def _chunks(self, start: int, stop: int) -> Iterator[Tuple[int, int]]:
        while start < stop:
            end = min(start + self.shard_size, stop)
            yield start, end
            start = end

    def _fold_slice(
        self, name: str, start: int, stop: int, carry: float = 0.0
    ) -> float:
        """Sequential sum of ``layout[name][start:stop]``, from ``carry``."""
        values = self.layout[name]
        for begin, end in self._chunks(start, stop):
            carry = _fold_continue(
                carry, np.asarray(values[begin:end], dtype=np.float64)
            )
        return carry

    def _find_crossing(
        self, name: str, demand: float
    ) -> Tuple[Optional[int], float]:
        """Scan the ranked capacity column for the partial-take row.

        Returns ``(index, remaining_before_index)`` for the first
        ranked row whose capacity covers the running remainder -- the
        row where the scalar take loop switches from "take the whole
        capacity" to "take the remainder" -- or ``(None, final
        remainder)`` when demand exceeds the whole column.  The
        remainder sequence is the exact scalar one:
        ``np.subtract.accumulate`` over ``[carry, caps...]``.
        """
        caps = self.layout[name]
        carry = demand
        for begin, end in self._chunks(0, self.count):
            chunk = np.asarray(caps[begin:end], dtype=np.float64)
            seeded = np.empty(chunk.size + 1, dtype=np.float64)
            seeded[0] = carry
            seeded[1:] = chunk
            chain = np.subtract.accumulate(seeded)
            hits = chain[:-1] <= chunk
            if hits.any():
                local = int(np.argmax(hits))
                return begin + local, float(chain[local])
            carry = float(chain[-1])
        return None, carry

    def _masked_idle_fold(self, crossing: int) -> float:
        """Idle power of the servers the EP pass left unassigned.

        The scalar path sums ``fleet`` order, skipping assigned
        servers; skipping is adding ``0.0``, which is exact for the
        non-negative running sum, so one masked fold in fleet order
        reproduces it.
        """
        idle = self.layout["idle_fleet"]
        rank = self.layout["ep_rank"]
        carry = 0.0
        for begin, end in self._chunks(0, self.count):
            masked = np.where(
                np.asarray(rank[begin:end]) > crossing,
                np.asarray(idle[begin:end], dtype=np.float64),
                0.0,
            )
            carry = _fold_continue(carry, masked)
        return carry

    def _prefix(self, name: str, index: int) -> float:
        """The precomputed running fold just before ranked ``index``."""
        if index == 0:
            return 0.0
        return float(self.layout[name][index - 1])

    def _prefix_count(self, name: str, index: int) -> int:
        if index == 0:
            return 0
        return int(self.layout[name][index - 1])

    def _row_take(self, perm_name: str, index: int, take: float) -> float:
        """Power drawn by ranked row ``index`` serving ``take`` ops.

        Resolves the ranked index to its base record (tiled clones
        share the base row's curves bitwise) and runs the scalar
        pipeline -- 50-iteration utilization bisection, then the power
        interpolation -- on that single row.
        """
        base_row = int(self.layout[perm_name][index]) % self.base_count
        rows = slice(base_row, base_row + 1)
        ops = np.asarray(self.layout["base_ops"][rows], dtype=np.float64)
        power = np.asarray(self.layout["base_power"][rows], dtype=np.float64)
        grid = np.asarray(self.layout["grid"], dtype=np.float64)
        util = _bisect_rows(grid, ops, np.array([take]))
        return float(_interp_rows(grid, power, util)[0])

    # -- policy summaries --------------------------------------------------------

    def pack_summary(
        self, demand_ops: float, power_off_unused: bool
    ) -> Tuple[float, float, float, int]:
        """``pack_to_full`` totals: (placed, assigned power, unused, used)."""
        if demand_ops < 0.0:
            raise ValueError("demand cannot be negative")
        n = self.count
        if demand_ops <= 0.0:
            unused = (
                0.0 if power_off_unused else self._fold_slice("idle_pack", 0, n)
            )
            return 0, 0, unused, 0
        crossing, remaining = self._find_crossing("caps_pack", demand_ops)
        if crossing is None:
            # Demand exceeds fleet capacity: every ranked row takes its
            # full capacity; the precomputed folds are the whole answer.
            return (
                float(self.layout["acc_caps_pack"][n - 1]),
                float(self.layout["acc_fullpow_pack"][n - 1]),
                0.0,
                int(self.layout["used_pack"][n - 1]),
            )
        partial_power = self._row_take("pack_perm", crossing, remaining)
        placed = self._prefix("acc_caps_pack", crossing) + remaining
        power = self._prefix("acc_fullpow_pack", crossing) + partial_power
        unused = (
            0.0
            if power_off_unused
            else self._fold_slice("idle_pack", crossing + 1, n)
        )
        # The partial take is strictly positive, so its utilization is
        # strictly positive and the crossing row always counts as used.
        used = self._prefix_count("used_pack", crossing) + 1
        return placed, power, unused, used

    def ep_summary(
        self, demand_ops: float, power_off_unused: bool
    ) -> Tuple[float, float, float, int]:
        """``ep_aware`` totals: (placed, assigned power, unused, used)."""
        if demand_ops < 0.0:
            raise ValueError("demand cannot be negative")
        n = self.count
        if demand_ops <= 0.0:
            unused = (
                0.0
                if power_off_unused
                else self._fold_slice("idle_fleet", 0, n)
            )
            return 0, 0, unused, 0
        crossing, remaining = self._find_crossing("spotcap_ep", demand_ops)
        if crossing is not None:
            # Pass 1 satisfied the demand at the peak-efficiency spots.
            partial_power = self._row_take("ep_perm", crossing, remaining)
            placed = self._prefix("acc_spotcap_ep", crossing) + remaining
            power = self._prefix("acc_spotpow_ep", crossing) + partial_power
            unused = (
                0.0
                if power_off_unused
                else self._masked_idle_fold(crossing)
            )
            used = self._prefix_count("used_spot_ep", crossing) + 1
            return placed, power, unused, used
        # Pass 2: every server already runs at its spot; top servers up
        # toward full capacity in the same efficiency order.  All rows
        # are assigned, so unused idle power is exactly zero.
        crossing, remaining = self._find_crossing("hprime_ep", remaining)
        if crossing is None:
            return (
                float(self.layout["acc_topped_take_ep"][n - 1]),
                float(self.layout["acc_topped_pow_ep"][n - 1]),
                0.0,
                int(self.layout["used_topped_ep"][n - 1]),
            )
        take = float(self.layout["spotcap_ep"][crossing]) + remaining
        partial_power = self._row_take("ep_perm", crossing, take)
        placed = self._fold_slice(
            "spotcap_ep",
            crossing + 1,
            n,
            carry=self._prefix("acc_topped_take_ep", crossing) + take,
        )
        power = self._fold_slice(
            "spotpow_ep",
            crossing + 1,
            n,
            carry=self._prefix("acc_topped_pow_ep", crossing) + partial_power,
        )
        # Topped rows before the crossing, the (always positive, hence
        # always used) crossing take, then the suffix's spot takes.
        used = (
            self._prefix_count("used_topped_ep", crossing)
            + 1
            + int(self.layout["used_spot_ep"][n - 1])
            - int(self.layout["used_spot_ep"][crossing])
        )
        return placed, power, 0.0, used

    def place_summary(
        self, policy: str, demand_ops: float, power_off_unused: bool
    ) -> Tuple[float, float, float, int]:
        """Dispatch on the policy name used by the scalar registries."""
        if policy == "pack-to-full":
            return self.pack_summary(demand_ops, power_off_unused)
        if policy == "ep-aware":
            return self.ep_summary(demand_ops, power_off_unused)
        raise ValueError(f"unknown policy {policy!r}")


def _tiled_column(values: np.ndarray, count: int) -> np.ndarray:
    """``values`` cycled out to ``count`` elements (tile + remainder)."""
    base_count = values.shape[0]
    if count == base_count:
        return np.array(values, dtype=values.dtype)
    repeats, remainder = divmod(count, base_count)
    parts = []
    if repeats:
        parts.append(np.tile(values, repeats))
    if remainder:
        parts.append(values[:remainder])
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def _build_layout(
    base: FleetArrays, count: int
) -> Tuple[Dict[str, np.ndarray], float]:
    """Derive the sharded query columns for ``count`` tiled servers.

    O(base) curve work (per-record bisections run once and shared by
    every clone -- clones carry bitwise-identical curves) plus O(N)
    tiling, ranking, and prefix folds.  Returns the layout mapping and
    the fleet's total full capacity (the fleet-order sequential fold
    the cap search seeds its bisection with).
    """
    # Per-base-row derived values through the exact scalar pipelines.
    spot_util_b = base.utilization_for(base.spot_capacity)
    spot_pow_b = base.power_at(spot_util_b)
    full_util_b = base.utilization_for(base.full_capacity)
    full_pow_b = base.power_at(full_util_b)
    headroom_b = base.full_capacity - base.spot_capacity
    hprime_b = np.where(headroom_b > 0.0, headroom_b, 0.0)
    topped_take_b = base.spot_capacity + hprime_b
    topped_util_b = base.utilization_for(topped_take_b)
    topped_pow_b = base.power_at(topped_util_b)

    # O(N) tiled columns (fleet order).
    full_cap = _tiled_column(base.full_capacity, count)
    spot_cap = _tiled_column(base.spot_capacity, count)
    idle = _tiled_column(base.idle_power_w, count)

    # Ranked orders: stable argsort on the negated key, exactly the
    # columnar engine's (and through it the scalar sort's) ordering.
    pack_perm = np.argsort(
        -_tiled_column(base.full_load_ee, count), kind="stable"
    )
    ep_perm = np.argsort(-_tiled_column(base.peak_ee, count), kind="stable")
    ep_rank = np.empty(count, dtype=np.int64)
    ep_rank[ep_perm] = np.arange(count, dtype=np.int64)

    def used_counts(flags: np.ndarray) -> np.ndarray:
        return np.add.accumulate(flags.astype(np.int64))

    caps_pack = full_cap[pack_perm]
    fullpow_pack = _tiled_column(full_pow_b, count)[pack_perm]
    full_util_t = _tiled_column(full_util_b, count)
    spotcap_ep = spot_cap[ep_perm]
    spotpow_ep = _tiled_column(spot_pow_b, count)[ep_perm]
    spot_util_t = _tiled_column(spot_util_b, count)
    hprime_ep = _tiled_column(hprime_b, count)[ep_perm]
    topped_take_ep = _tiled_column(topped_take_b, count)[ep_perm]
    topped_pow_ep = _tiled_column(topped_pow_b, count)[ep_perm]
    topped_util_t = _tiled_column(topped_util_b, count)

    layout = {
        "grid": np.array(base.load_grid, dtype=np.float64),
        "base_power": np.array(base.power, dtype=np.float64),
        "base_ops": np.array(base.ops, dtype=np.float64),
        "pack_perm": pack_perm.astype(np.int64),
        "caps_pack": caps_pack,
        "acc_caps_pack": np.add.accumulate(caps_pack),
        "acc_fullpow_pack": np.add.accumulate(fullpow_pack),
        "idle_pack": idle[pack_perm],
        "used_pack": used_counts(full_util_t[pack_perm] > 0.0),
        "ep_perm": ep_perm.astype(np.int64),
        "ep_rank": ep_rank,
        "spotcap_ep": spotcap_ep,
        "acc_spotcap_ep": np.add.accumulate(spotcap_ep),
        "spotpow_ep": spotpow_ep,
        "acc_spotpow_ep": np.add.accumulate(spotpow_ep),
        "used_spot_ep": used_counts(spot_util_t[ep_perm] > 0.0),
        "hprime_ep": hprime_ep,
        "acc_topped_take_ep": np.add.accumulate(topped_take_ep),
        "acc_topped_pow_ep": np.add.accumulate(topped_pow_ep),
        "used_topped_ep": used_counts(topped_util_t[ep_perm] > 0.0),
        "idle_fleet": idle,
    }
    total_capacity = float(np.add.accumulate(full_cap)[-1]) if count else 0.0
    return layout, total_capacity


def _layout_key(base: FleetArrays, count: int) -> str:
    """Content fingerprint of a fleet layout (spill-store key)."""
    digest = hashlib.sha256()
    digest.update(_LAYOUT_TAG.encode("utf-8"))
    digest.update(f":{count}:{len(base)}".encode("utf-8"))
    for array in (
        base.load_grid,
        base.power,
        base.ops,
        base.peak_ee,
        base.primary_peak_spot,
    ):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()[:32]


def publish_shm_arrays(
    named: Dict[str, np.ndarray],
) -> Tuple[Dict[str, Tuple[str, Tuple[int, ...], str]],
           List[shared_memory.SharedMemory]]:
    """Copy named arrays into fresh shared-memory segments.

    Returns ``(blocks, segments)``: ``blocks`` maps each name to the
    ``(segment name, shape, dtype)`` triple that
    :func:`attached_shm_arrays` re-opens zero-copy in another process,
    and ``segments`` are the live handles the *caller* must close and
    unlink when the audience is gone.  On a mid-publication failure
    every already-created segment is reclaimed before the error
    propagates, so a partial publish can never leak kernel objects.
    """
    blocks: Dict[str, Tuple[str, Tuple[int, ...], str]] = {}
    segments: List[shared_memory.SharedMemory] = []
    try:
        for name, array in named.items():
            array = np.ascontiguousarray(array)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes)
            )
            segments.append(segment)
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            view[...] = array
            del view
            blocks[name] = (segment.name, array.shape, array.dtype.str)
    except BaseException:
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        raise
    return blocks, segments


@contextmanager
def attached_shm_arrays(
    blocks: Dict[str, Tuple[str, Tuple[int, ...], str]],
) -> Iterator[Dict[str, np.ndarray]]:
    """Attach published segments as named array views, detach on exit.

    The inverse of :func:`publish_shm_arrays`, runnable in any process
    that can see the segment names: yields zero-copy views over the
    parent's pages and closes every attached segment in the
    ``finally``, so an attaching worker can never leak one whatever
    its work does.
    """
    segments: List[shared_memory.SharedMemory] = []
    arrays: Dict[str, np.ndarray] = {}
    try:
        for name, (segment_name, shape, dtype) in blocks.items():
            # Attaching re-registers the name with the resource
            # tracker (a set add, so a no-op: pool workers share
            # the parent's tracker and the parent registered the
            # segment at creation); the parent's unlink unregisters
            # it exactly once.
            segment = shared_memory.SharedMemory(name=segment_name)
            segments.append(segment)
            arrays[name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=segment.buf
            )
        yield arrays
    finally:
        arrays.clear()
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # a view outlived the scope; leave it
                pass


@contextmanager
def _attached_kernel(descriptor: Dict) -> Iterator[_ShardKernel]:
    """Open a broadcast layout inside a pool worker, detach on exit.

    ``shm`` descriptors attach the parent's shared-memory segments as
    zero-copy array views (:func:`attached_shm_arrays`); ``paths``
    descriptors re-open the spill store's column files as read-only
    memmaps (forked or spawned workers share the same page-cache
    bytes).  Either way the views are dropped on exit, so a worker can
    never leak a segment whatever the query does.
    """
    def _kernel(arrays: Dict[str, np.ndarray]) -> _ShardKernel:
        return _ShardKernel(
            arrays,
            descriptor["count"],
            descriptor["base_count"],
            descriptor["shard_size"],
        )

    if descriptor["mode"] == "shm":
        with attached_shm_arrays(descriptor["blocks"]) as arrays:
            yield _kernel(arrays)
        return
    arrays = {
        name: np.load(path, mmap_mode="r", allow_pickle=False)
        for name, path in descriptor["paths"].items()
    }
    try:
        yield _kernel(arrays)
    finally:
        arrays.clear()


def _pooled_step(
    descriptor: Dict,
    demand: float,
    policy: str,
    power_off_unused: bool,
    inject: bool,
) -> Tuple[float, float]:
    """Pool-side worker: one replay step against the broadcast layout."""
    if inject:
        raise TransientError("injected shard.worker fault")
    with _attached_kernel(descriptor) as kernel:
        placed, power, unused, _ = kernel.place_summary(
            policy, demand, power_off_unused
        )
    return placed, power + unused


class ShardedFleetEngine:
    """Placement queries over a sharded fleet, summaries only.

    Accepts anything the columnar engine accepts plus a lazy
    :class:`~repro.cluster.fleet_arrays.TiledFleetView`, which it
    consumes *without materializing*: the view contributes its O(base)
    records and a count, and the engine tiles the derived columns
    directly.  Fleets of at least :data:`SPILL_THRESHOLD` servers keep
    their columns out of core (``spill=True`` / ``spill=False``
    overrides), memmapped from a
    :class:`~repro.dataset.columns.ColumnSpillStore`.

    All placement entry points return :class:`SummaryOutcome` objects
    whose scalars are bit-identical to the columnar engine's
    ``PlacementOutcome`` reductions on the same fleet.  The job
    schedulers are *not* implemented at this tier (a million-job
    first-fit is a different problem); those methods raise
    ``ValueError`` pointing back at ``fleet_backend="columnar"``.
    """

    def __init__(
        self,
        fleet,
        shard_size: int = DEFAULT_SHARD_SIZE,
        spill: Optional[bool] = None,
        spill_store: Optional[ColumnSpillStore] = None,
    ):
        if shard_size < 1:
            raise ValueError("shard size must be positive")
        if isinstance(fleet, TiledFleetView):
            self.base = FleetArrays.from_records(fleet.base)
            self.count = len(fleet)
        else:
            self.base = FleetArrays.from_fleet(fleet)
            self.count = len(self.base)
        self.shard_size = int(shard_size)
        if spill is None:
            spill = self.count >= SPILL_THRESHOLD
        self._spill: Optional[Tuple[ColumnSpillStore, str]] = None
        if spill:
            store = spill_store if spill_store is not None else ColumnSpillStore()
            key = _layout_key(self.base, self.count)
            if not all(store.has(key, name) for name in _LAYOUT_NAMES):
                layout, total_capacity = _build_layout(self.base, self.count)
                for name in _LAYOUT_NAMES:
                    store.save(key, name, layout[name])
                store.save(
                    key, "total_capacity", np.array([total_capacity])
                )
                del layout
            layout = {
                name: store.load(key, name) for name in _LAYOUT_NAMES
            }
            self.total_capacity = float(
                store.load(key, "total_capacity", mmap=False)[0]
            )
            self._spill = (store, key)
        else:
            layout, self.total_capacity = _build_layout(self.base, self.count)
        self.kernel = _ShardKernel(
            layout, self.count, len(self.base), self.shard_size
        )

    def __len__(self) -> int:
        return self.count

    @property
    def spilled(self) -> bool:
        """Whether the columns live out of core (memmapped spill files)."""
        return self._spill is not None

    # -- fluid placement (BatchPlacementEngine twin) -----------------------------

    def _outcome(
        self,
        policy: str,
        demand_ops: float,
        summary: Tuple[float, float, float, int],
    ) -> SummaryOutcome:
        placed, power, unused, used = summary
        return SummaryOutcome(
            policy=policy,
            demand_ops=demand_ops,
            unused_idle_power_w=unused,
            summary_placed_ops=placed,
            summary_assigned_power_w=power,
            summary_servers_used=used,
        )

    def pack_to_full(
        self, demand_ops: float, power_off_unused: bool = False
    ) -> SummaryOutcome:
        """Sharded ``pack_to_full_placement``; identical scalars."""
        return self._outcome(
            "pack-to-full",
            demand_ops,
            self.kernel.pack_summary(demand_ops, power_off_unused),
        )

    def ep_aware(
        self, demand_ops: float, power_off_unused: bool = False
    ) -> SummaryOutcome:
        """Sharded ``ep_aware_placement``; identical scalars."""
        return self._outcome(
            "ep-aware",
            demand_ops,
            self.kernel.ep_summary(demand_ops, power_off_unused),
        )

    def place(
        self, policy: str, demand_ops: float, power_off_unused: bool = False
    ) -> SummaryOutcome:
        """Dispatch on the policy name used by the scalar registries."""
        return self._outcome(
            policy,
            demand_ops,
            self.kernel.place_summary(policy, demand_ops, power_off_unused),
        )

    def place_totals(
        self, policy: str, demand_ops: float, power_off_unused: bool = False
    ) -> Tuple[float, float]:
        """(placed_ops, total_power_w), the replay hot-loop reduction."""
        placed, power, unused, _ = self.kernel.place_summary(
            policy, demand_ops, power_off_unused
        )
        return placed, power + unused

    def max_throughput_under_cap(
        self,
        power_cap_w: float,
        policy: str = "ep-aware",
        power_off_unused: bool = False,
    ) -> SummaryOutcome:
        """Sharded ``max_throughput_under_cap``; identical scalars."""
        if power_cap_w <= 0.0:
            raise ValueError("power cap must be positive")
        if policy not in ("ep-aware", "pack-to-full"):
            raise ValueError(f"unknown policy {policy!r}")
        low, high = 0.0, self.total_capacity
        best = self.place(policy, 0.0, power_off_unused)
        for _ in range(40):
            mid = 0.5 * (low + high)
            outcome = self.place(policy, mid, power_off_unused)
            if outcome.total_power_w <= power_cap_w and outcome.satisfied():
                best = outcome
                low = mid
            else:
                high = mid
        return best

    # -- job scheduling is out of scope at this tier -----------------------------

    def _no_scheduling(self) -> ValueError:
        return ValueError(
            "the sharded backend answers fleet-level placement summaries "
            "only; job scheduling needs per-server state -- use "
            "fleet_backend='columnar' (or 'scalar') for schedulers"
        )

    def first_fit_decreasing(self, jobs: Sequence) -> None:
        """Unsupported at this tier; raises ``ValueError``."""
        raise self._no_scheduling()

    def peak_spot_aware(self, jobs: Sequence) -> None:
        """Unsupported at this tier; raises ``ValueError``."""
        raise self._no_scheduling()

    def schedule(self, policy: str, jobs: Sequence) -> None:
        """Unsupported at this tier; raises ``ValueError``."""
        raise self._no_scheduling()

    def schedule_power_w(self, schedule) -> None:
        """Unsupported at this tier; raises ``ValueError``."""
        raise self._no_scheduling()

    # -- replay support ----------------------------------------------------------

    def level_capacity(self) -> float:
        """The scalar replay's fleet capacity, streamed.

        The scalar path sums full-load ``ssj_ops`` from the raw level
        lists in fleet order; here that flat sequence is one base-fleet
        cycle repeated, so the fold runs one seeded accumulate per
        cycle (clones share their base record's level list, making the
        repeated values bitwise identical).
        """
        return streamed_level_capacity(self.base.records, self.count)

    @contextmanager
    def broadcast(self) -> Iterator[Dict]:
        """Publish the layout for pool workers; reclaim on exit.

        Spilled engines hand out their column-file paths (workers
        memmap the same bytes).  In-RAM engines copy each column into
        a ``multiprocessing.shared_memory`` segment; the ``finally``
        closes *and unlinks* every segment, so the session can never
        leak shared memory even if the replay raises mid-window.
        """
        meta = {
            "count": self.count,
            "base_count": len(self.base),
            "shard_size": self.shard_size,
        }
        if self._spill is not None:
            store, key = self._spill
            yield dict(
                meta,
                mode="paths",
                paths={
                    name: str(store.path(key, name))
                    for name in _LAYOUT_NAMES
                },
            )
            return
        blocks, segments = publish_shm_arrays(
            {name: self.kernel.layout[name] for name in _LAYOUT_NAMES}
        )
        try:
            yield dict(meta, mode="shm", blocks=blocks)
        finally:
            for segment in segments:
                try:
                    segment.close()
                except BufferError:  # pragma: no cover - views are local
                    pass
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass


def _pool_round(
    jobs: int,
    pending: Sequence[int],
    descriptor: Dict,
    demands: Sequence[float],
    policy: str,
    power_off_unused: bool,
    injections: Dict[int, bool],
) -> Tuple[Dict[int, Tuple[float, float]], List[Tuple[int, BaseException]], bool]:
    """One process-pool pass over ``pending`` replay steps.

    Returns (completed, worker-raised failures, pool-broke flag);
    steps lost to a broken pool appear in neither list and are
    re-dispatched by the caller -- the same contract as the ensemble
    engine's pool round.
    """
    completed: Dict[int, Tuple[float, float]] = {}
    failed: List[Tuple[int, BaseException]] = []
    broke = False
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures: Dict[Future, int] = {
                pool.submit(
                    _pooled_step,
                    descriptor,
                    demands[index],
                    policy,
                    power_off_unused,
                    injections.get(index, False),
                ): index
                for index in pending
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, timeout=_WAIT_TICK_S)
                for future in done:
                    index = futures[future]
                    try:
                        completed[index] = future.result(timeout=0)
                    except BrokenProcessPool:
                        broke = True
                    except Exception as exc:
                        failed.append((index, exc))
    except BrokenProcessPool:  # pool died while submitting/joining
        broke = True
    return completed, failed, broke


class ShardedTraceReplay:
    """Replay demand traces against a sharded fleet, window by window.

    The drop-in twin of
    :class:`~repro.cluster.batch_trace.BatchTraceReplay` for the
    sharded tier: same ``replay``/``compare_policies`` surface, same
    ``TraceOutcome`` floats (the per-step totals and the energy/served
    accumulators reproduce the scalar folds exactly), but the trace is
    processed in :data:`DEFAULT_WINDOW_STEPS`-step windows so peak
    memory is bounded by the fleet columns plus one window of
    scalars -- never O(N * T) -- and ``jobs > 1`` fans each window's
    steps across a process pool over zero-copy column views.

    Fault handling mirrors the ensemble pool: the ``shard.worker``
    injection site is claimed at dispatch time in step order, each
    step carries a bounded retry budget, one broken-pool restart is
    granted, and after that the remaining steps degrade to serial
    execution under a ``RuntimeWarning``.
    """

    def __init__(
        self,
        fleet,
        shard_size: int = DEFAULT_SHARD_SIZE,
        window_steps: int = DEFAULT_WINDOW_STEPS,
    ):
        if isinstance(fleet, ShardedFleetEngine):
            self.engine = fleet
        else:
            self.engine = ShardedFleetEngine(fleet, shard_size=shard_size)
        if window_steps < 1:
            raise ValueError("window_steps must be positive")
        self.window_steps = int(window_steps)
        self._capacity = self.engine.level_capacity()

    def replay(
        self,
        trace: DemandTrace,
        policy: str = "ep-aware",
        power_off_unused: bool = False,
        jobs: int = 1,
        step_retries: int = 2,
    ) -> TraceOutcome:
        """Sharded ``replay_trace``; identical outcome, bounded memory."""
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {sorted(_POLICIES)}"
            )
        if jobs < 1:
            raise ValueError(
                f"jobs must be >= 1, got {jobs} (1 = serial execution)"
            )
        if step_retries < 0:
            raise ValueError("step_retries must be >= 0")
        step_hours = 24.0 / trace.steps
        fractions = list(trace.demand_fraction)
        energy_wh = 0.0
        served_ops_h = 0.0
        unserved = 0
        for start in range(0, len(fractions), self.window_steps):
            window = fractions[start : start + self.window_steps]
            demands = [fraction * self._capacity for fraction in window]
            if jobs > 1 and len(demands) > 1:
                totals = self._pooled_window(
                    demands, policy, power_off_unused, jobs, step_retries
                )
            else:
                totals = self._serial_window(
                    demands, policy, power_off_unused, step_retries
                )
            # Fold in step order: the scalar replay's accumulation
            # order, regardless of pool scheduling.
            for demand, (placed, total_power) in zip(demands, totals):
                if not placed >= demand * (1.0 - 1e-6):
                    unserved += 1
                energy_wh += total_power * step_hours
                served_ops_h += placed * step_hours
        return TraceOutcome(
            policy=policy,
            energy_kwh=energy_wh / 1000.0,
            served_gops=served_ops_h * 3600.0 / 1e9,
            step_hours=step_hours,
            unserved_steps=unserved,
        )

    def _serial_window(
        self,
        demands: Sequence[float],
        policy: str,
        power_off_unused: bool,
        step_retries: int,
    ) -> List[Tuple[float, float]]:
        plan = active_plan()
        totals: List[Tuple[float, float]] = []
        for demand in demands:
            budget = 1 + step_retries
            while True:
                inject = plan.take("shard.worker") if plan is not None else False
                budget -= 1
                try:
                    if inject:
                        raise TransientError("injected shard.worker fault")
                    totals.append(
                        self.engine.place_totals(
                            policy, demand, power_off_unused
                        )
                    )
                    break
                except Exception:
                    if budget <= 0:
                        raise
        return totals

    def _pooled_window(
        self,
        demands: Sequence[float],
        policy: str,
        power_off_unused: bool,
        jobs: int,
        step_retries: int,
    ) -> List[Tuple[float, float]]:
        plan = active_plan()
        totals: List[Optional[Tuple[float, float]]] = [None] * len(demands)
        budget = {index: 1 + step_retries for index in range(len(demands))}
        restarts = 0
        use_pool = True
        with self.engine.broadcast() as descriptor:
            pending = list(range(len(demands)))
            while pending:
                if not use_pool:
                    serial = self._serial_window(
                        [demands[index] for index in pending],
                        policy,
                        power_off_unused,
                        step_retries,
                    )
                    for index, value in zip(pending, serial):
                        totals[index] = value
                    break
                injections = {
                    index: (
                        plan.take("shard.worker")
                        if plan is not None
                        else False
                    )
                    for index in pending
                }
                completed, failed, broke = _pool_round(
                    jobs,
                    pending,
                    descriptor,
                    demands,
                    policy,
                    power_off_unused,
                    injections,
                )
                for index, value in completed.items():
                    totals[index] = value
                for index, error in failed:
                    budget[index] -= 1
                    if budget[index] <= 0:
                        raise error
                if broke:
                    restarts += 1
                    if restarts > 1:
                        warnings.warn(
                            "sharded replay process pool broke "
                            f"{restarts} time(s); degrading the remaining "
                            "steps to serial execution",
                            RuntimeWarning,
                            stacklevel=3,
                        )
                        use_pool = False
                pending = [
                    index
                    for index in range(len(demands))
                    if totals[index] is None
                ]
        return [total for total in totals if total is not None]

    def compare_policies(
        self,
        trace: Optional[DemandTrace] = None,
        power_off_unused: bool = False,
        jobs: int = 1,
    ) -> Dict[str, TraceOutcome]:
        """Sharded ``compare_policies``; identical outcome dict."""
        if trace is None:
            trace = diurnal_trace(noise=0.0)
        return {
            policy: self.replay(
                trace, policy, power_off_unused, jobs=jobs
            )
            for policy in _POLICIES
        }
