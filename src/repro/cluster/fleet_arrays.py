"""Columnar struct-of-arrays view of a server fleet.

Every fleet operation in :mod:`repro.cluster` ultimately evaluates the
same two piecewise-linear curves per server -- power vs. utilization
and throughput vs. utilization -- and the scalar paths re-interpolate
them one server at a time through :func:`np.interp`.  A 10k-server
fleet replayed over a 96-step day costs on the order of a million
scalar interpolations that way.

:class:`FleetArrays` lifts the whole fleet into matrices once:

* ``load_grid`` -- the shared measurement grid, ``[0.0] + target
  loads`` ascending (11 points for a SPECpower curve);
* ``power`` -- the ``(N, K)`` wall-power matrix (idle in column 0);
* ``ops`` -- the ``(N, K)`` throughput matrix (0 at idle);
* metric vectors (``ep``, ``score``, ``peak_ee``,
  ``primary_peak_spot``) gathered from each record's cached derived
  metrics, so they are bit-identical to the per-record properties.

The batched kernels (:meth:`power_at`, :meth:`throughput_at`,
:meth:`utilization_for`, :meth:`capacity`) broadcast over servers and
timesteps and replicate ``np.interp``'s C arithmetic *exactly* --
index by ``searchsorted(side="right") - 1`` clipped to the last
segment, ``slope * (u - x0) + y0``, right endpoint returned verbatim
-- so the columnar engines built on top
(:mod:`repro.cluster.batch_placement`,
:mod:`repro.cluster.batch_trace`) are bit-identical drop-ins for the
scalar paths, not approximations of them.
"""

from __future__ import annotations

import os
from collections.abc import Sequence as SequenceABC
from dataclasses import replace
from typing import List, Sequence, Union

import numpy as np

from repro.dataset.corpus import Corpus
from repro.dataset.schema import SpecPowerResult

#: ``tile_fleet`` switches to the lazy index-mapped view at this size.
LAZY_TILE_THRESHOLD = 65_536

#: Default byte budget for *eager* tiling (overridable through the
#: ``REPRO_TILE_BUDGET_BYTES`` environment variable).
DEFAULT_TILE_BUDGET_BYTES = 256 * 1024 * 1024

#: Rough per-clone cost of an eager tile: a ``SpecPowerResult``
#: dataclass shell, its attribute dict, and the ``~copy`` id string.
#: Deliberately coarse -- the budget is a guard rail, not an accountant.
_EAGER_CLONE_BYTES = 512


def _interp_rows(
    grid: np.ndarray, table: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """``np.interp(u, grid, table[i])`` for every row ``i``, bitwise.

    ``table`` is ``(M, K)``; ``u`` is scalar (one query shared by all
    rows), ``(M,)`` (one query per row), or ``(M, T)`` (a query matrix
    broadcasting rows against timesteps).  Replicates the exact IEEE
    arithmetic of numpy's compiled interp loop, including the verbatim
    right-endpoint return (the clamped-segment formula differs from it
    by one ulp).
    """
    k = grid.size
    u = np.asarray(u, dtype=np.float64)
    idx = np.searchsorted(grid, u, side="right") - 1
    idx = np.clip(idx, 0, k - 2)
    if u.ndim == 0:
        if u >= grid[-1]:
            return table[:, -1].copy()
        x0 = grid[idx]
        x1 = grid[idx + 1]
        y0 = table[:, idx]
        y1 = table[:, idx + 1]
        return (y1 - y0) / (x1 - x0) * (u - x0) + y0
    if u.ndim == 1:
        rows = np.arange(table.shape[0])
        y0 = table[rows, idx]
        y1 = table[rows, idx + 1]
    elif u.ndim == 2:
        y0 = np.take_along_axis(table, idx, axis=1)
        y1 = np.take_along_axis(table, idx + 1, axis=1)
    else:  # pragma: no cover - guarded by the public kernels
        raise ValueError("queries must be scalar, (M,), or (M, T)")
    x0 = grid[idx]
    x1 = grid[idx + 1]
    res = (y1 - y0) / (x1 - x0) * (u - x0) + y0
    right = u >= grid[-1]
    if right.any():
        last = table[:, -1] if u.ndim == 1 else np.broadcast_to(
            table[:, -1:], res.shape
        )
        res = np.where(right, last, res)
    return res


def _bisect_rows(
    grid: np.ndarray, table: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Batched inverse of the per-row throughput curves.

    Replicates the scalar 50-iteration bisection of
    ``placement._utilization_for`` per element, with the same edge
    guards: non-positive targets sit at 0.0 utilization and targets at
    or beyond a row's full capacity (including every positive target
    on a zero-capacity row) pin to 1.0.  Elements resolved by the
    guards are masked out *before* the loop, so only genuinely open
    queries pay the 50 interpolation rounds; the bisected elements see
    exactly the same IEEE operation sequence either way, so results
    are bit-identical to bisecting everything and overwriting.

    ``table`` is ``(M, K)``; ``target`` is scalar, ``(M,)``, or
    ``(M, T)``.  Shared by :meth:`FleetArrays.utilization_for` and the
    sharded engine's out-of-core workers, which operate on raw column
    blocks without a :class:`FleetArrays` wrapper.
    """
    target = np.asarray(target, dtype=np.float64)
    if target.ndim == 0:
        target = np.broadcast_to(target, (table.shape[0],))
    cap = table[:, -1] if target.ndim == 1 else table[:, -1:]
    res = np.where(target >= cap, 1.0, 0.0)
    res = np.where(target <= 0.0, 0.0, res)
    active = (target > 0.0) & (target < cap)
    if active.any():
        sub = table[np.nonzero(active)[0]]
        t = target[active]
        low = np.zeros(t.shape)
        high = np.ones(t.shape)
        for _ in range(50):
            mid = 0.5 * (low + high)
            below = _interp_rows(grid, sub, mid) < t
            low = np.where(below, mid, low)
            high = np.where(below, high, mid)
        res[active] = 0.5 * (low + high)
    return res


class FleetArrays:
    """A fleet lifted into columnar numpy form, in stable id order.

    Construction requires a *uniform measurement grid* (every record
    reports the same target loads -- true of the whole synthesized
    corpus) and unique result ids; a fleet violating either raises
    ``ValueError``, which the ``fleet_backend="auto"`` routing treats
    as "fall back to the scalar path".
    """

    def __init__(
        self,
        records: Sequence[SpecPowerResult],
        load_grid: np.ndarray,
        power: np.ndarray,
        ops: np.ndarray,
    ):
        self.records = tuple(records)
        self.ids = tuple(r.result_id for r in self.records)
        if len(set(self.ids)) != len(self.ids):
            raise ValueError("duplicate result ids in fleet")
        self.load_grid = load_grid
        self.power = power
        self.ops = ops
        for array in (self.load_grid, self.power, self.ops):
            array.setflags(write=False)
        # Metric vectors are *gathered* from the records' cached
        # derived properties, never re-derived, so they carry exactly
        # the floats the scalar paths compare and sort on.
        self.ep = np.array([r.ep for r in self.records])
        self.score = np.array([r.overall_score for r in self.records])
        self.peak_ee = np.array([r.peak_ee for r in self.records])
        self.primary_peak_spot = np.array(
            [r.primary_peak_spot for r in self.records]
        )
        self.idle_power_w = self.power[:, 0]
        self.full_capacity = self.ops[:, -1]
        self.full_load_ee = self.ops[:, -1] / self.power[:, -1]
        self.spot_capacity = _interp_rows(
            self.load_grid, self.ops, self.primary_peak_spot
        )
        for array in (
            self.ep,
            self.score,
            self.peak_ee,
            self.primary_peak_spot,
            self.full_load_ee,
            self.spot_capacity,
        ):
            array.setflags(write=False)

    def __len__(self) -> int:
        return len(self.records)

    @classmethod
    def from_records(cls, records: Sequence[SpecPowerResult]) -> "FleetArrays":
        """Build the column matrices from a sequence of results."""
        records = list(records)
        if not records:
            raise ValueError("cannot build FleetArrays from an empty fleet")
        grids = [
            tuple(level.target_load for level in r.sorted_levels())
            for r in records
        ]
        if any(grid != grids[0] for grid in grids[1:]):
            raise ValueError(
                "heterogeneous measurement grids; the columnar path needs "
                "every record on the same target loads"
            )
        load_grid = np.array([0.0] + list(grids[0]))
        power = np.array(
            [
                [r.active_idle_power_w]
                + [level.average_power_w for level in r.sorted_levels()]
                for r in records
            ]
        )
        ops = np.array(
            [
                [0.0] + [level.ssj_ops for level in r.sorted_levels()]
                for r in records
            ]
        )
        return cls(records, load_grid, power, ops)

    @classmethod
    def from_fleet(
        cls, fleet: Union["FleetArrays", Corpus, Sequence[SpecPowerResult]]
    ) -> "FleetArrays":
        """Coerce a fleet (arrays, corpus, or record sequence) to arrays.

        A :class:`~repro.dataset.corpus.Corpus` routes through its
        cached column store (:meth:`Corpus.columns`), so repeated
        engines over the same corpus share one set of matrices.
        """
        if isinstance(fleet, FleetArrays):
            return fleet
        if isinstance(fleet, Corpus):
            columns = fleet.columns()
            return cls(
                fleet.results(),
                columns.load_grid(),
                columns.power_matrix(),
                columns.ops_matrix(),
            )
        return cls.from_records(fleet)

    # -- batched curve kernels ---------------------------------------------------

    def _table(self, matrix: np.ndarray, rows) -> np.ndarray:
        return matrix if rows is None else matrix[rows]

    def power_at(self, utilization, rows=None) -> np.ndarray:
        """Wall power at ``utilization``, per server.

        ``utilization`` may be a scalar (shared query), ``(M,)`` (one
        per server), or ``(M, T)`` (servers x timesteps); ``rows``
        optionally restricts to a server subset by index.
        """
        return _interp_rows(
            self.load_grid, self._table(self.power, rows), utilization
        )

    def throughput_at(self, utilization, rows=None) -> np.ndarray:
        """ssj_ops/s at ``utilization``, per server (0 at idle)."""
        return _interp_rows(
            self.load_grid, self._table(self.ops, rows), utilization
        )

    def capacity(self, utilization=1.0, rows=None) -> np.ndarray:
        """Throughput capacity at a utilization cap, per server."""
        return self.throughput_at(utilization, rows=rows)

    def utilization_for(self, throughput_ops, rows=None) -> np.ndarray:
        """Invert the throughput curves, batched.

        Replicates the scalar 50-iteration bisection of
        ``placement._utilization_for`` per element, with the same edge
        guards: non-positive targets sit at 0.0 utilization and
        targets at or beyond a server's full capacity (including every
        positive target on a zero-capacity server) pin to 1.0.
        Elements resolved by the guards never enter the bisection loop
        (see :func:`_bisect_rows`).
        """
        return _bisect_rows(
            self.load_grid, self._table(self.ops, rows), throughput_ops
        )


def _tile_record(
    base: Sequence[SpecPowerResult], index: int
) -> SpecPowerResult:
    """Record at tiled position ``index``: the base record for the
    first cycle, a ``~<copy>``-suffixed clone afterwards.

    Shared by the eager and lazy tiling paths so both produce the
    exact same records (clones share the base record's level list and
    derived-metric cache -- they are the same physical server, so the
    shared metrics are exact).
    """
    record = base[index % len(base)]
    if index < len(base):
        return record
    return replace(
        record, result_id=f"{record.result_id}~{index // len(base)}"
    )


class TiledFleetView(SequenceABC):
    """Lazy ``tile_fleet``: an index-mapped view over the base records.

    Holds only the O(base) record tuple and a count; ``view[i]``
    materializes the single requested record (or clone) on demand, so
    synthesizing a million-server fleet from the 477-record corpus is
    O(base) in memory instead of a million ``dataclasses.replace``
    clones.  Indexing and slicing produce exactly the records the
    eager path would -- same ``~<copy>`` id scheme, same shared level
    lists and metric caches -- so a fully materialized view equals the
    eager list element for element.

    The sharded engine (:mod:`repro.cluster.sharded`) consumes the
    view without ever materializing it; the ``fleet_backend="auto"``
    routing sends large views there.
    """

    def __init__(self, base: Sequence[SpecPowerResult], count: int):
        base = tuple(base)
        if not base:
            raise ValueError("cannot tile an empty fleet")
        if isinstance(count, bool) or not isinstance(count, int):
            raise TypeError(
                f"fleet size must be an int, got {type(count).__name__}"
            )
        if count < 1:
            raise ValueError("fleet size must be positive")
        self.base = base
        self.count = count

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.count))]
        if isinstance(index, bool) or not isinstance(index, int):
            raise TypeError(
                f"fleet indices must be integers or slices, "
                f"got {type(index).__name__}"
            )
        if index < 0:
            index += self.count
        if not 0 <= index < self.count:
            raise IndexError("fleet index out of range")
        return _tile_record(self.base, index)

    def __repr__(self) -> str:
        return (
            f"TiledFleetView({self.count} servers over "
            f"{len(self.base)} base records)"
        )


def tile_fleet(
    fleet: Sequence[SpecPowerResult],
    count: int,
    *,
    lazy: Union[bool, None] = None,
    budget_bytes: Union[int, None] = None,
) -> Sequence[SpecPowerResult]:
    """Expand a fleet to ``count`` servers by cycling its records.

    Repeats get a unique ``~<copy>`` id suffix (duplicate ids would
    collapse in the id-keyed placement bookkeeping).  Clones share the
    base record's level list and derived-metric cache -- they are the
    same physical server, so the shared metrics are exact and tiling
    to fleet scale stays cheap.

    ``lazy`` picks the representation: ``True`` returns a
    :class:`TiledFleetView` (O(base) memory, clones materialized on
    demand), ``False`` the historical eager list, and ``None`` (the
    default) chooses the view once ``count`` reaches
    :data:`LAZY_TILE_THRESHOLD`.  The eager path is guarded by a
    memory budget (``budget_bytes``, defaulting to
    :data:`DEFAULT_TILE_BUDGET_BYTES` or the
    ``REPRO_TILE_BUDGET_BYTES`` environment variable): a tiling
    estimated to exceed it raises ``ValueError`` pointing at the lazy
    view and the sharded backend rather than silently materializing
    gigabytes of clones.
    """
    base = list(fleet)
    if not base:
        raise ValueError("cannot tile an empty fleet")
    if isinstance(count, bool) or not isinstance(count, int):
        raise TypeError(
            f"fleet size must be an int, got {type(count).__name__}"
        )
    if count < 1:
        raise ValueError("fleet size must be positive")
    if lazy is None:
        lazy = count >= LAZY_TILE_THRESHOLD
    if lazy:
        return TiledFleetView(base, count)
    if budget_bytes is None:
        budget_bytes = int(
            os.environ.get(
                "REPRO_TILE_BUDGET_BYTES", DEFAULT_TILE_BUDGET_BYTES
            )
        )
    clones = max(0, count - len(base))
    estimated = clones * _EAGER_CLONE_BYTES
    if estimated > budget_bytes:
        raise ValueError(
            f"eager tiling to {count} servers would materialize roughly "
            f"{estimated // (1024 * 1024)} MiB of record clones (budget "
            f"{budget_bytes // (1024 * 1024)} MiB); use lazy=True (a "
            f"TiledFleetView) with fleet_backend='sharded', or raise "
            f"REPRO_TILE_BUDGET_BYTES"
        )
    tiled: List[SpecPowerResult] = []
    for index in range(count):
        tiled.append(_tile_record(base, index))
    return tiled
