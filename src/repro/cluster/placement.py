"""EP-aware workload placement vs. the pack-to-full baseline.

Section V.C's operational claim: "we don't need to pack as many jobs
to the server to let it fully busy.  Instead, keeping the server at
70% utilization is more energy efficient", and under a fixed power
budget "energy proportionality aware workload placement can maximize
the throughput".

Two placement policies over a heterogeneous fleet:

* :func:`pack_to_full_placement` -- classic consolidation: drive as
  few servers as possible, each to 100% utilization;
* :func:`ep_aware_placement` -- run servers at their peak-efficiency
  spot (in efficiency order), spilling the remainder.

Both receive a total throughput demand (ssj_ops/s) and return the
power drawn.  The paper's scenario is a *fixed number of racks*: the
fleet is provisioned and powered, so unused servers burn their idle
power (``power_off_unused=False``, the default).  The consolidation
premise -- unused servers are switched off entirely -- is available as
an ablation via ``power_off_unused=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro._compat import warn_positional
from repro.cluster.regions import efficiency_at, power_at, throughput_at
from repro.dataset.schema import SpecPowerResult


@dataclass
class Assignment:
    """One server's share of the placed load."""

    server: SpecPowerResult
    utilization: float
    throughput_ops: float
    power_w: float


@dataclass
class PlacementOutcome:
    """The fleet-level result of a placement policy."""

    policy: str
    demand_ops: float
    assignments: List[Assignment] = field(default_factory=list)
    unused_idle_power_w: float = 0.0

    @property
    def placed_ops(self) -> float:
        return sum(a.throughput_ops for a in self.assignments)

    @property
    def total_power_w(self) -> float:
        return sum(a.power_w for a in self.assignments) + self.unused_idle_power_w

    @property
    def servers_used(self) -> int:
        return sum(1 for a in self.assignments if a.utilization > 0.0)

    @property
    def fleet_efficiency(self) -> float:
        if self.total_power_w == 0.0:
            return 0.0
        return self.placed_ops / self.total_power_w

    def satisfied(self, rtol: float = 1e-6) -> bool:
        """True when the placed work covers the demand."""
        return self.placed_ops >= self.demand_ops * (1.0 - rtol)


def _capacity(server: SpecPowerResult, utilization: float) -> float:
    return throughput_at(server, utilization)


def _columnar_engine(fleet: Sequence[SpecPowerResult], fleet_backend: str):
    from repro.cluster.batch_placement import resolve_backend

    return resolve_backend(fleet, fleet_backend)


@warn_positional("power_off_unused", "repro.api.PlacementQuery")
def pack_to_full_placement(
    fleet: Sequence[SpecPowerResult],
    demand_ops: float,
    power_off_unused: bool = False,
    fleet_backend: str = "auto",
) -> PlacementOutcome:
    """Consolidate: fill the most efficient-at-full servers to 100%.

    Servers are loaded in descending full-load efficiency; each takes
    as much of the remaining demand as it can at 100% utilization, the
    last loaded server runs partially loaded.  Unused servers idle
    (or are powered off when ``power_off_unused``).

    ``fleet_backend`` selects the implementation: ``"scalar"`` is this
    per-server loop, ``"columnar"`` the bit-identical vectorized
    engine (:mod:`repro.cluster.batch_placement`), and ``"auto"``
    (default) picks the columnar path for fleets large enough to
    amortize it.
    """
    if demand_ops < 0.0:
        raise ValueError("demand cannot be negative")
    engine = _columnar_engine(fleet, fleet_backend)
    if engine is not None:
        return engine.pack_to_full(demand_ops, power_off_unused)
    outcome = PlacementOutcome(policy="pack-to-full", demand_ops=demand_ops)
    remaining = demand_ops
    ranked = sorted(fleet, key=lambda s: -efficiency_at(s, 1.0))
    for server in ranked:
        if remaining <= 0.0:
            if not power_off_unused:
                outcome.unused_idle_power_w += power_at(server, 0.0)
            continue
        full_capacity = _capacity(server, 1.0)
        take = min(remaining, full_capacity)
        utilization = _utilization_for(server, take)
        outcome.assignments.append(
            Assignment(
                server=server,
                utilization=utilization,
                throughput_ops=take,
                power_w=power_at(server, utilization),
            )
        )
        remaining -= take
    return outcome


@warn_positional("power_off_unused", "repro.api.PlacementQuery")
def ep_aware_placement(
    fleet: Sequence[SpecPowerResult],
    demand_ops: float,
    power_off_unused: bool = False,
    fleet_backend: str = "auto",
) -> PlacementOutcome:
    """Operate each active server at its peak-efficiency spot.

    Servers are activated in descending *peak* efficiency and loaded to
    their peak-efficiency utilization (not 100%).  If every server is
    at its spot and demand remains, the policy tops servers up toward
    100% in peak-efficiency order (the spillover is unavoidable once
    the fleet nears capacity).  ``fleet_backend`` selects the scalar
    or (bit-identical) columnar implementation as in
    :func:`pack_to_full_placement`.
    """
    if demand_ops < 0.0:
        raise ValueError("demand cannot be negative")
    engine = _columnar_engine(fleet, fleet_backend)
    if engine is not None:
        return engine.ep_aware(demand_ops, power_off_unused)
    outcome = PlacementOutcome(policy="ep-aware", demand_ops=demand_ops)
    remaining = demand_ops
    ranked = sorted(fleet, key=lambda s: -s.peak_ee)
    assignments: Dict[str, Assignment] = {}
    for server in ranked:
        if remaining <= 0.0:
            break
        spot = server.primary_peak_spot
        take = min(remaining, _capacity(server, spot))
        utilization = _utilization_for(server, take)
        assignments[server.result_id] = Assignment(
            server=server,
            utilization=utilization,
            throughput_ops=take,
            power_w=power_at(server, utilization),
        )
        remaining -= take
    if remaining > 0.0:
        for server in ranked:
            if remaining <= 0.0:
                break
            current = assignments.get(server.result_id)
            already = current.throughput_ops if current else 0.0
            extra = min(remaining, _capacity(server, 1.0) - already)
            if extra <= 0.0:
                continue
            total = already + extra
            utilization = _utilization_for(server, total)
            assignments[server.result_id] = Assignment(
                server=server,
                utilization=utilization,
                throughput_ops=total,
                power_w=power_at(server, utilization),
            )
            remaining -= extra
    outcome.assignments = list(assignments.values())
    if not power_off_unused:
        outcome.unused_idle_power_w = sum(
            power_at(server, 0.0)
            for server in fleet
            if server.result_id not in assignments
        )
    return outcome


def _utilization_for(server: SpecPowerResult, throughput_ops: float) -> float:
    """Invert the (piecewise-linear) throughput curve.

    Edge cases are explicit: non-positive requests sit at 0.0, and a
    request at or beyond the server's full capacity -- including any
    positive request against a zero-capacity (all-zero ops) server --
    pins to 1.0 instead of bisecting toward it.
    """
    if throughput_ops <= 0.0:
        return 0.0
    if throughput_ops >= _capacity(server, 1.0):
        return 1.0
    low, high = 0.0, 1.0
    for _ in range(50):
        mid = 0.5 * (low + high)
        if throughput_at(server, mid) < throughput_ops:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


@warn_positional("policy", "repro.api.CapQuery")
def max_throughput_under_cap(
    fleet: Sequence[SpecPowerResult],
    power_cap_w: float,
    policy: str = "ep-aware",
    power_off_unused: bool = False,
    fleet_backend: str = "auto",
) -> PlacementOutcome:
    """Maximum throughput achievable without exceeding a power cap.

    Bisects the demand level and returns the placement at the highest
    demand whose total power fits under the cap -- the "more jobs under
    fixed power supply" experiment of Section V.C.  ``fleet_backend``
    selects the scalar or (bit-identical) columnar implementation; the
    columnar engine is built once and reused across all 40 bisection
    probes.
    """
    if power_cap_w <= 0.0:
        raise ValueError("power cap must be positive")
    placers = {
        "ep-aware": ep_aware_placement,
        "pack-to-full": pack_to_full_placement,
    }
    if policy not in placers:
        raise ValueError(f"unknown policy {policy!r}")
    engine = _columnar_engine(fleet, fleet_backend)
    if engine is not None:
        return engine.max_throughput_under_cap(
            power_cap_w, policy, power_off_unused
        )
    place = placers[policy]
    total_capacity = sum(_capacity(server, 1.0) for server in fleet)
    low, high = 0.0, total_capacity
    best = place(
        fleet, 0.0, power_off_unused=power_off_unused, fleet_backend="scalar"
    )
    for _ in range(40):
        mid = 0.5 * (low + high)
        outcome = place(
            fleet, mid, power_off_unused=power_off_unused, fleet_backend="scalar"
        )
        if outcome.total_power_w <= power_cap_w and outcome.satisfied():
            best = outcome
            low = mid
        else:
            high = mid
    return best
