"""Optimal working regions from efficiency curves.

Section V.C: "if a server has peak energy efficiency at 70% utilization
... the 70% to 100% utilization region is better working region", and
more generally the band where a server's efficiency stays within a
threshold of its peak -- or above its 100%-utilization efficiency --
is where workload placement should keep it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.dataset.schema import SpecPowerResult


@dataclass(frozen=True)
class WorkingRegion:
    """A closed utilization band [low, high]."""

    low: float
    high: float

    def __post_init__(self):
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise ValueError("region bounds must satisfy 0 <= low <= high <= 1")

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, utilization: float) -> bool:
        """True when the utilization lies inside the band."""
        return self.low - 1e-12 <= utilization <= self.high + 1e-12

    def intersect(self, other: "WorkingRegion") -> "WorkingRegion":
        """The overlap of two bands; raises when they are disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            raise ValueError("regions do not overlap")
        return WorkingRegion(low=low, high=high)

    def midpoint(self) -> float:
        """Center of the band."""
        return 0.5 * (self.low + self.high)


def efficiency_levels(result: SpecPowerResult) -> List[Tuple[float, float]]:
    """(utilization, ops/W) per measured level, ascending utilization."""
    return [
        (level.target_load, level.efficiency) for level in result.sorted_levels()
    ]


def optimal_working_region(
    result: SpecPowerResult, threshold: float = 0.95
) -> WorkingRegion:
    """The contiguous band around the peak with EE >= threshold * peak.

    The region is the maximal run of measured levels, containing the
    peak level, whose efficiency stays within ``threshold`` of the
    peak; for a modern server peaking at 70% this typically comes out
    as [0.6-0.7, 1.0], the paper's recommended operating band.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must lie in (0, 1]")
    levels = efficiency_levels(result)
    efficiencies = np.array([ee for _, ee in levels])
    peak_index = int(np.argmax(efficiencies))
    floor = efficiencies[peak_index] * threshold
    low_index = peak_index
    while low_index > 0 and efficiencies[low_index - 1] >= floor:
        low_index -= 1
    high_index = peak_index
    while high_index < len(levels) - 1 and efficiencies[high_index + 1] >= floor:
        high_index += 1
    return WorkingRegion(low=levels[low_index][0], high=levels[high_index][0])


def above_full_load_region(result: SpecPowerResult) -> WorkingRegion:
    """The band whose efficiency meets or beats the 100% level.

    Section V.C groups servers by "the widest working region beyond the
    ideal energy efficiency curve"; on the measured grid that is the
    run of levels, ending at 100%, whose efficiency is >= EE(100%).
    """
    levels = efficiency_levels(result)
    full_ee = levels[-1][1]
    low_index = len(levels) - 1
    while low_index > 0 and levels[low_index - 1][1] >= full_ee:
        low_index -= 1
    return WorkingRegion(low=levels[low_index][0], high=1.0)


def efficiency_at(result: SpecPowerResult, utilization: float) -> float:
    """Linearly interpolated ops/W at any utilization in (0, 1]."""
    if not 0.0 < utilization <= 1.0:
        raise ValueError("utilization must lie in (0, 1]")
    levels = efficiency_levels(result)
    loads = [u for u, _ in levels]
    effs = [ee for _, ee in levels]
    return float(np.interp(utilization, loads, effs))


def power_at(result: SpecPowerResult, utilization: float) -> float:
    """Linearly interpolated wall power at any utilization in [0, 1]."""
    loads, powers = result.curve()
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must lie in [0, 1]")
    return float(np.interp(utilization, loads, powers))


def throughput_at(result: SpecPowerResult, utilization: float) -> float:
    """Interpolated ssj_ops/s at a utilization (0 at idle)."""
    levels = result.sorted_levels()
    loads = [0.0] + [level.target_load for level in levels]
    ops = [0.0] + [level.ssj_ops for level in levels]
    return float(np.interp(utilization, loads, ops))
