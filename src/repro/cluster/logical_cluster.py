"""Logical clusters of heterogeneous servers.

Section V.C: "first group servers by their energy proportionality
values, and then subdivide the servers by their energy efficiency
curves by grouping the servers with the widest working region beyond
the ideal energy efficiency curve into a logical cluster.  The optimal
working region of this logical cluster is the overlapping best working
region of its member servers."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster.regions import (
    WorkingRegion,
    above_full_load_region,
    optimal_working_region,
)
from repro.dataset.schema import SpecPowerResult


@dataclass
class LogicalCluster:
    """A group of servers operated as one placement unit."""

    ep_band: tuple
    members: List[SpecPowerResult]
    region: WorkingRegion

    @property
    def size(self) -> int:
        return len(self.members)

    def total_capacity_ops(self) -> float:
        """Aggregate throughput at the region's upper edge."""
        from repro.cluster.regions import throughput_at

        return sum(
            throughput_at(member, self.region.high) for member in self.members
        )


def _overlap(regions: Sequence[WorkingRegion]) -> WorkingRegion:
    combined = regions[0]
    for region in regions[1:]:
        combined = combined.intersect(region)
    return combined


def build_logical_clusters(
    servers: Sequence[SpecPowerResult],
    ep_band_width: float = 0.1,
    region_threshold: float = 0.95,
    min_size: int = 1,
    min_region_width: float = 0.1,
) -> List[LogicalCluster]:
    """Group servers into logical clusters per the Section V.C recipe.

    Servers are bucketed into EP bands of ``ep_band_width``; within a
    band, servers whose optimal regions mutually overlap are greedily
    merged (widest above-full-load region first), and each cluster's
    operating region is the intersection of its members' regions.  A
    merge is rejected when it would squeeze the cluster's region below
    ``min_region_width`` -- a one-point region is useless to operate in.
    """
    if not servers:
        raise ValueError("no servers to cluster")
    bands = {}
    for server in servers:
        index = int(server.ep / ep_band_width)
        bands.setdefault(index, []).append(server)

    clusters: List[LogicalCluster] = []
    for index in sorted(bands):
        members = sorted(
            bands[index],
            key=lambda server: -above_full_load_region(server).width,
        )
        remaining = list(members)
        while remaining:
            seed = remaining.pop(0)
            group = [seed]
            region = optimal_working_region(seed, region_threshold)
            still_unplaced = []
            for candidate in remaining:
                candidate_region = optimal_working_region(
                    candidate, region_threshold
                )
                try:
                    merged = region.intersect(candidate_region)
                except ValueError:
                    still_unplaced.append(candidate)
                    continue
                if merged.width < min_region_width - 1e-12:
                    still_unplaced.append(candidate)
                    continue
                group.append(candidate)
                region = merged
            remaining = still_unplaced
            if len(group) >= min_size:
                clusters.append(
                    LogicalCluster(
                        ep_band=(
                            round(index * ep_band_width, 3),
                            round((index + 1) * ep_band_width, 3),
                        ),
                        members=group,
                        region=region,
                    )
                )
    return clusters
