"""Section V.C operationalized: regions, logical clusters, placement.

The paper's operational guidance: characterize each server's
efficiency curve, group heterogeneous servers into *logical clusters*
by proportionality and by their high-efficiency working regions, and
place load so every active server sits inside its optimal region
(~70-100% utilization for modern machines) instead of packing servers
to 100%.

* :mod:`repro.cluster.regions` -- optimal working regions from
  efficiency curves;
* :mod:`repro.cluster.logical_cluster` -- EP-based grouping with
  overlapping-region computation;
* :mod:`repro.cluster.placement` -- EP-aware placement vs. the
  pack-to-full baseline, under throughput demand or a power cap;
* :mod:`repro.cluster.multinode` -- cluster-wide proportionality of
  node groups (the Fig. 13 economies-of-scale mechanism);
* :mod:`repro.cluster.fleet_arrays` -- the columnar struct-of-arrays
  fleet view behind the vectorized fast paths;
* :mod:`repro.cluster.batch_placement` /
  :mod:`repro.cluster.batch_trace` -- bit-identical columnar engines
  for placement, job scheduling, and trace replay, selected via the
  ``fleet_backend`` switch on the public entry points;
* :mod:`repro.cluster.sharded` -- the sharded, shared-memory,
  out-of-core tier (``fleet_backend="sharded"``): million-server
  fleets streamed shard by shard, replayed window by window, still
  bit-identical to the columnar engine.
"""

from repro.cluster.batch_placement import BatchPlacementEngine
from repro.cluster.batch_trace import BatchTraceReplay
from repro.cluster.fleet_arrays import FleetArrays, TiledFleetView, tile_fleet
from repro.cluster.sharded import (
    ShardedFleetEngine,
    ShardedTraceReplay,
    SummaryOutcome,
)
from repro.cluster.logical_cluster import LogicalCluster, build_logical_clusters
from repro.cluster.multinode import cluster_power_curve, cluster_proportionality
from repro.cluster.placement import (
    PlacementOutcome,
    ep_aware_placement,
    pack_to_full_placement,
    max_throughput_under_cap,
)
from repro.cluster.regions import WorkingRegion, optimal_working_region
from repro.cluster.trace import (
    DemandTrace,
    compare_policies,
    daily_saving,
    diurnal_trace,
    replay_trace,
)

__all__ = [
    "BatchPlacementEngine",
    "BatchTraceReplay",
    "FleetArrays",
    "ShardedFleetEngine",
    "ShardedTraceReplay",
    "SummaryOutcome",
    "TiledFleetView",
    "LogicalCluster",
    "PlacementOutcome",
    "WorkingRegion",
    "DemandTrace",
    "compare_policies",
    "daily_saving",
    "diurnal_trace",
    "replay_trace",
    "build_logical_clusters",
    "cluster_power_curve",
    "cluster_proportionality",
    "ep_aware_placement",
    "max_throughput_under_cap",
    "optimal_working_region",
    "pack_to_full_placement",
    "tile_fleet",
]
