"""Scalar reference kernels for the vectorized cluster fast paths.

Mirror of :mod:`repro.dataset.reference` for the cluster layer: the
per-timestep loop that :func:`repro.cluster.trace.diurnal_trace`
vectorized lives on here verbatim, the ``_SWAPS`` table pairs it with
the live kernel by name (the REP40x parity rules keep that pairing
structural), and :func:`reference_kernels` reroutes the live call
sites onto it so the equality tests compare real executions.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Optional

import numpy as np

from repro.cluster import trace as _trace
from repro.cluster.trace import DemandTrace


def diurnal_trace_reference(
    steps_per_day: int = 48,
    base: float = 0.25,
    peak: float = 0.85,
    peak_hour: float = 14.0,
    secondary_peak_hour: float = 20.5,
    noise: float = 0.02,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> DemandTrace:
    """The original per-timestep ``diurnal_trace`` loop, kept verbatim."""
    if not 0.0 <= base < peak <= 1.0:
        raise ValueError("need 0 <= base < peak <= 1")
    if steps_per_day < 4:
        raise ValueError("at least four steps per day")
    if rng is not None and seed is not None:
        raise ValueError("pass at most one of seed= or rng=")
    if noise > 0.0:
        if rng is None and seed is None:
            raise ValueError("noise > 0 needs a randomness source: seed= or rng=")
        if rng is None:
            rng = np.random.default_rng(seed)
    times = [24.0 * i / steps_per_day for i in range(steps_per_day)]
    demands = []
    for t in times:
        main = math.exp(-((t - peak_hour) ** 2) / (2 * 3.5**2))
        evening = 0.55 * math.exp(-((t - secondary_peak_hour) ** 2) / (2 * 1.8**2))
        shape = min(1.0, main + evening)
        level = base + (peak - base) * shape
        if rng is not None:
            # rng.normal(0.0, 0.0) returns exactly 0.0, so skipping the
            # draw at noise == 0.0 keeps the stream and output identical.
            level += float(rng.normal(0.0, noise))
        demands.append(min(1.0, max(0.0, level)))
    return DemandTrace(times_h=tuple(times), demand_fraction=tuple(demands))


#: (module, attribute, replacement) triples swapped in by the context
#: manager below; the live call sites resolve these names through
#: their module globals, so the swap reroutes them in place.
_SWAPS = (
    (_trace, "diurnal_trace", diurnal_trace_reference),
)


@contextmanager
def reference_kernels():
    """Run the cluster layer on the pre-vectorization kernels."""
    saved = [(module, name, getattr(module, name)) for module, name, _ in _SWAPS]
    try:
        for module, name, replacement in _SWAPS:
            setattr(module, name, replacement)
        yield
    finally:
        for module, name, original in saved:
            setattr(module, name, original)
