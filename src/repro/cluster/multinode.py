"""Cluster-wide proportionality of node groups.

Fig. 13's mechanism, reproduced from first principles: a group of
identical nodes behind an ideal load balancer can power nodes off when
the aggregate load allows it, so the *group's* power-utilization curve
hugs the ideal line far better than a single node's -- "grouping
multiple identical nodes to work together on same workload is more
energy proportional than letting individual identical server node work
on different workloads".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster.regions import power_at
from repro.dataset.schema import SpecPowerResult
from repro.metrics.ep import energy_proportionality


def cluster_power_curve(
    node: SpecPowerResult,
    nodes: int,
    utilization_grid: Sequence[float] = None,
    can_power_off: bool = True,
) -> Tuple[List[float], List[float]]:
    """(utilization, power) of an ideally balanced n-node group.

    At aggregate utilization ``u`` the balancer activates the fewest
    nodes that can carry ``u * n`` node-loads without exceeding 100%
    each, spreads the load evenly across them, and (optionally) powers
    the rest off.  With ``can_power_off=False`` inactive nodes idle.
    """
    if nodes <= 0:
        raise ValueError("node count must be positive")
    if utilization_grid is None:
        utilization_grid = [round(0.05 * i, 2) for i in range(21)]
    idle_power = node.curve()[1][0]
    powers = []
    for u in utilization_grid:
        if not 0.0 <= u <= 1.0:
            raise ValueError("utilization must lie in [0, 1]")
        total_load = u * nodes
        active = max(1, int(np.ceil(total_load - 1e-9))) if total_load > 0 else 0
        if active == 0:
            power = 0.0 if can_power_off else idle_power * nodes
            powers.append(power if power > 0 else idle_power)  # keep curve positive
            continue
        per_node = total_load / active
        power = active * power_at(node, per_node)
        if not can_power_off:
            power += (nodes - active) * idle_power
        powers.append(power)
    return list(utilization_grid), powers


def cluster_proportionality(
    node: SpecPowerResult, nodes: int, can_power_off: bool = True
) -> float:
    """EP (Eq. 1) of the n-node group's aggregate curve."""
    grid, powers = cluster_power_curve(node, nodes, can_power_off=can_power_off)
    return energy_proportionality(grid, powers)


def independent_vs_grouped(
    node: SpecPowerResult, nodes: int, utilization: float
) -> Tuple[float, float]:
    """Power at one aggregate utilization: independent vs. grouped.

    *Independent*: every node runs the same partial load (no
    consolidation).  *Grouped*: the balancer concentrates load on the
    fewest nodes.  Returns (independent_watts, grouped_watts).
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must lie in [0, 1]")
    independent = nodes * power_at(node, utilization)
    grid, powers = cluster_power_curve(node, nodes)
    grouped = float(np.interp(utilization, grid, powers))
    return independent, grouped
