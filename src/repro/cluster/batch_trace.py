"""Columnar trace replay over a fleet: the day loop, batched.

:class:`BatchTraceReplay` is the vectorized twin of
:func:`repro.cluster.trace.replay_trace`: the placement engine is
built once (ranked orders, capacity columns), each step runs the
reduced :meth:`~repro.cluster.batch_placement.BatchPlacementEngine.place_totals`
path (no per-server ``Assignment`` objects in the hot loop), and the
energy/served accumulators stay as sequential Python float additions
-- the scalar replay's accumulation order is part of the bit-identity
contract.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.batch_placement import (
    BatchPlacementEngine,
    resolve_backend,
)
from repro.cluster.trace import _POLICIES, DemandTrace, TraceOutcome, diurnal_trace


def resolve_trace_backend(fleet, fleet_backend: str):
    """The replayer to use for ``fleet_backend``, or ``None`` for scalar.

    A sharded placement engine (``fleet_backend="sharded"``, or
    ``"auto"`` over a large lazy ``TiledFleetView``) gets the windowed
    :class:`~repro.cluster.sharded.ShardedTraceReplay`; a columnar one
    gets :class:`BatchTraceReplay`.
    """
    engine = resolve_backend(fleet, fleet_backend)
    if engine is None:
        return None
    if isinstance(engine, BatchPlacementEngine):
        return BatchTraceReplay(engine)
    from repro.cluster.sharded import ShardedTraceReplay

    return ShardedTraceReplay(engine)


class BatchTraceReplay:
    """Replay demand traces against one fleet, placement engine shared."""

    def __init__(self, fleet):
        if isinstance(fleet, BatchPlacementEngine):
            self.engine = fleet
        else:
            self.engine = BatchPlacementEngine(fleet)
        # The scalar replay sums full-load ssj_ops from the *raw* level
        # lists in fleet order; replicate that reduction exactly rather
        # than assuming the grid tops out at 100% load.
        self._capacity = sum(
            level.ssj_ops
            for server in self.engine.arrays.records
            for level in server.levels
            if level.target_load == 1.0
        )

    def replay(
        self,
        trace: DemandTrace,
        policy: str = "ep-aware",
        power_off_unused: bool = False,
    ) -> TraceOutcome:
        """Columnar ``replay_trace``; identical outcome."""
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {sorted(_POLICIES)}"
            )
        step_hours = 24.0 / trace.steps
        energy_wh = 0.0
        served_ops_h = 0.0
        unserved = 0
        for fraction in trace.demand_fraction:
            demand = fraction * self._capacity
            placed, total_power = self.engine.place_totals(
                policy, demand, power_off_unused
            )
            if not placed >= demand * (1.0 - 1e-6):
                unserved += 1
            energy_wh += total_power * step_hours
            served_ops_h += placed * step_hours
        return TraceOutcome(
            policy=policy,
            energy_kwh=energy_wh / 1000.0,
            served_gops=served_ops_h * 3600.0 / 1e9,
            step_hours=step_hours,
            unserved_steps=unserved,
        )

    def compare_policies(
        self,
        trace: Optional[DemandTrace] = None,
        power_off_unused: bool = False,
    ) -> Dict[str, TraceOutcome]:
        """Columnar ``compare_policies``; identical outcome dict."""
        if trace is None:
            trace = diurnal_trace(noise=0.0)
        return {
            policy: self.replay(trace, policy, power_off_unused)
            for policy in _POLICIES
        }
