"""CPU frequency governors.

Section V.B sweeps fixed frequencies ("userspace" pinning) against the
Linux *ondemand* governor and finds that ondemand "always almost has
the highest energy efficiency and it's very close to the energy
efficiency with the highest frequency" while consuming about the same
power.  These governor policies reproduce the kernel behaviours at the
level of detail the experiment needs: a load sample in, a P-state out.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.power.cpu import CpuPowerModel


class Governor(ABC):
    """A frequency-selection policy evaluated once per sampling period."""

    name: str = "abstract"

    @abstractmethod
    def select_frequency(self, cpu: CpuPowerModel, load: float) -> float:
        """Choose a frequency (GHz) given the sampled load in [0, 1]."""

    @staticmethod
    def _check_load(load: float) -> None:
        if not 0.0 <= load <= 1.0:
            raise ValueError("load sample must lie in [0, 1]")


class PerformanceGovernor(Governor):
    """Always the highest operating point."""

    name = "performance"

    def select_frequency(self, cpu: CpuPowerModel, load: float) -> float:
        """Always the top P-state."""
        self._check_load(load)
        return cpu.max_frequency_ghz


class PowersaveGovernor(Governor):
    """Always the lowest operating point."""

    name = "powersave"

    def select_frequency(self, cpu: CpuPowerModel, load: float) -> float:
        """Always the bottom P-state."""
        self._check_load(load)
        return cpu.min_frequency_ghz


@dataclass
class FixedFrequencyGovernor(Governor):
    """Userspace pinning to one frequency, as in the paper's sweeps."""

    frequency_ghz: float

    def __post_init__(self):
        if self.frequency_ghz <= 0.0:
            raise ValueError("pinned frequency must be positive")
        self.name = f"userspace@{self.frequency_ghz:g}GHz"

    def select_frequency(self, cpu: CpuPowerModel, load: float) -> float:
        """The pinned frequency, snapped to an available P-state."""
        self._check_load(load)
        return cpu.operating_point(self.frequency_ghz).frequency_ghz


@dataclass
class OndemandGovernor(Governor):
    """The classic Linux ondemand policy.

    When the sampled load exceeds ``up_threshold`` the governor jumps
    straight to the highest frequency; otherwise it picks the lowest
    frequency that keeps the projected utilization below the threshold
    (the kernel's ``load * f_max / threshold`` proportional rule).
    Because SPECpower-style measurement intervals hold substantial load,
    ondemand spends nearly all busy time at the top frequency -- which
    is exactly why the paper measures it tracking the max-frequency
    configuration in both power and efficiency.
    """

    up_threshold: float = 0.80

    def __post_init__(self):
        if not 0.0 < self.up_threshold < 1.0:
            raise ValueError("up_threshold must lie in (0, 1)")
        self.name = "ondemand"

    def select_frequency(self, cpu: CpuPowerModel, load: float) -> float:
        """Jump to max above the threshold, else scale proportionally."""
        self._check_load(load)
        if load >= self.up_threshold:
            return cpu.max_frequency_ghz
        target = load * cpu.max_frequency_ghz / self.up_threshold
        for point in cpu.operating_points:
            if point.frequency_ghz >= target:
                return point.frequency_ghz
        return cpu.max_frequency_ghz
