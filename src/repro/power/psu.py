"""Power supply unit efficiency model.

Wall power exceeds the DC load by the PSU's conversion loss, and the
loss fraction depends on the load point: 80 PLUS-class supplies peak
around half load and degrade toward both extremes.  This curve matters
for energy proportionality because a lightly loaded server sits on the
inefficient left shoulder of its PSU -- one of the reasons idle power
percentages stayed stubbornly high in the paper's older cohorts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PsuModel:
    """Quadratic-shoulder PSU efficiency curve.

    Parameters
    ----------
    rated_w:
        Nameplate DC output capacity.
    peak_efficiency:
        Conversion efficiency at the best load point (e.g. 0.94 for an
        80 PLUS Platinum unit, 0.85 for an older Bronze-class unit).
    best_load_fraction:
        DC load fraction (of ``rated_w``) where efficiency peaks.
    shoulder_drop:
        Efficiency lost at a load fraction 0.5 away from the best point
        (quadratic in the distance).
    floor:
        Lower bound on efficiency at extreme load points.
    """

    rated_w: float
    peak_efficiency: float = 0.92
    best_load_fraction: float = 0.5
    shoulder_drop: float = 0.08
    floor: float = 0.60

    def __post_init__(self):
        if self.rated_w <= 0.0:
            raise ValueError("PSU rating must be positive")
        if not 0.0 < self.peak_efficiency <= 1.0:
            raise ValueError("peak efficiency must lie in (0, 1]")
        if not 0.0 < self.best_load_fraction <= 1.0:
            raise ValueError("best load fraction must lie in (0, 1]")
        if not 0.0 < self.floor <= self.peak_efficiency:
            raise ValueError("efficiency floor is inconsistent")

    def efficiency(self, dc_load_w: float) -> float:
        """Conversion efficiency at a DC load in watts."""
        if dc_load_w < 0.0:
            raise ValueError("DC load cannot be negative")
        fraction = min(dc_load_w / self.rated_w, 1.2)
        distance = (fraction - self.best_load_fraction) / 0.5
        eff = self.peak_efficiency - self.shoulder_drop * distance * distance
        return max(self.floor, min(self.peak_efficiency, eff))

    def wall_power_w(self, dc_load_w: float) -> float:
        """AC wall draw required to deliver ``dc_load_w`` of DC power."""
        if dc_load_w == 0.0:
            return 0.0
        return dc_load_w / self.efficiency(dc_load_w)
