"""DRAM power model: per-DIMM background power plus activity power.

Section V.A of the paper shows that memory installation materially
changes whole-server energy efficiency: every installed DIMM draws
background power (refresh, registers, I/O termination) regardless of
load, so over-provisioned memory depresses efficiency -- the mechanism
behind the EE decline the paper measures at 8-16 GB/core.  Activity
power scales with access intensity, which for the SPECpower-style
workload tracks the load level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DimmPowerModel:
    """Power characteristics of one DIMM of a given generation/size.

    ``background_w`` is drawn whenever the DIMM is powered (self-refresh
    savings at true idle are folded into the value); ``active_w`` is the
    additional draw at full access intensity.
    """

    capacity_gb: int
    generation: str
    background_w: float
    active_w: float

    def __post_init__(self):
        if self.capacity_gb <= 0:
            raise ValueError("DIMM capacity must be positive")
        if self.background_w < 0.0 or self.active_w < 0.0:
            raise ValueError("DIMM power terms cannot be negative")

    def power_w(self, access_intensity: float) -> float:
        """Draw of this DIMM at an access intensity in [0, 1]."""
        if not 0.0 <= access_intensity <= 1.0:
            raise ValueError("access intensity must lie in [0, 1]")
        return self.background_w + self.active_w * access_intensity


#: Representative DIMM types for the two generations in the paper's
#: testbed (Table II: DDR3-1600 on servers #1-#2, DDR4-2133 on #3-#4).
#: DDR4 runs at a lower rail voltage (1.2 V vs 1.5 V), hence the lower
#: background draw per gigabyte.
DIMM_TYPES: Dict[str, DimmPowerModel] = {
    "DDR3-4G": DimmPowerModel(4, "DDR3", background_w=2.1, active_w=3.2),
    "DDR3-8G": DimmPowerModel(8, "DDR3", background_w=2.8, active_w=4.0),
    "DDR3-16G": DimmPowerModel(16, "DDR3", background_w=3.8, active_w=5.0),
    "DDR4-4G": DimmPowerModel(4, "DDR4", background_w=1.3, active_w=2.4),
    "DDR4-8G": DimmPowerModel(8, "DDR4", background_w=1.8, active_w=3.0),
    "DDR4-16G": DimmPowerModel(16, "DDR4", background_w=1.8, active_w=2.8),
    "DDR4-32G": DimmPowerModel(32, "DDR4", background_w=3.4, active_w=4.8),
}


@dataclass
class MemoryPowerModel:
    """A populated memory subsystem: ``dimm_count`` identical DIMMs."""

    dimm: DimmPowerModel
    dimm_count: int

    def __post_init__(self):
        if self.dimm_count <= 0:
            raise ValueError("at least one DIMM must be installed")

    @property
    def capacity_gb(self) -> int:
        return self.dimm.capacity_gb * self.dimm_count

    def power_w(self, access_intensity: float) -> float:
        """Total memory power at an access intensity in [0, 1]."""
        return self.dimm.power_w(access_intensity) * self.dimm_count

    def background_power_w(self) -> float:
        """Draw with zero access intensity (every DIMM still powered)."""
        return self.dimm.background_w * self.dimm_count


def populate(
    capacity_gb: int, generation: str, preferred_dimm_gb: int = 16
) -> MemoryPowerModel:
    """Populate ``capacity_gb`` using identical DIMMs of one generation.

    Picks the largest catalog DIMM size that divides the capacity, not
    exceeding ``preferred_dimm_gb``; mirrors how the paper's testbed
    configurations were built (e.g. 192 GB as 12 x 16 GB).
    """
    if capacity_gb <= 0:
        raise ValueError("capacity must be positive")
    candidates = sorted(
        (d for d in DIMM_TYPES.values() if d.generation == generation),
        key=lambda d: d.capacity_gb,
        reverse=True,
    )
    if not candidates:
        raise ValueError(f"unknown memory generation: {generation!r}")
    for dimm in candidates:
        if dimm.capacity_gb <= preferred_dimm_gb and capacity_gb % dimm.capacity_gb == 0:
            return MemoryPowerModel(dimm=dimm, dimm_count=capacity_gb // dimm.capacity_gb)
    smallest = candidates[-1]
    if capacity_gb % smallest.capacity_gb != 0:
        raise ValueError(
            f"cannot populate {capacity_gb} GB with {generation} DIMMs"
        )
    return MemoryPowerModel(dimm=smallest, dimm_count=capacity_gb // smallest.capacity_gb)
