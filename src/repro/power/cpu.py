"""CPU power model with DVFS operating points and C-state idling.

The model follows the standard CMOS decomposition the paper's DVFS
discussion (Section V.B) relies on:

    P_cpu = P_static(V) + P_dynamic,   P_dynamic = C_eff * V^2 * f * a

where ``a`` is the activity factor (fraction of cycles doing work),
``V`` scales roughly linearly with frequency across the DVFS range, and
static (leakage) power scales with voltage but not activity.  Because
the static share does not fall with frequency while throughput does,
*lower frequency yields lower power but also lower energy efficiency* --
the paper's headline DVFS observation -- and the model makes that
emerge rather than asserting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS (frequency, voltage) pair."""

    frequency_ghz: float
    voltage_v: float

    def __post_init__(self):
        if self.frequency_ghz <= 0.0:
            raise ValueError("frequency must be positive")
        if self.voltage_v <= 0.0:
            raise ValueError("voltage must be positive")


def default_voltage_curve(
    frequencies_ghz: Sequence[float],
    v_min: float = 0.85,
    v_max: float = 1.25,
) -> List[OperatingPoint]:
    """Build operating points with voltage linear in frequency.

    Real parts ship a voltage/frequency table; a linear interpolation
    between the minimum and maximum rail voltage is the conventional
    first-order stand-in.
    """
    freqs = sorted(float(f) for f in frequencies_ghz)
    if not freqs:
        raise ValueError("at least one frequency is required")
    f_min, f_max = freqs[0], freqs[-1]
    points = []
    for f in freqs:
        if f_max == f_min:
            v = v_max
        else:
            v = v_min + (v_max - v_min) * (f - f_min) / (f_max - f_min)
        points.append(OperatingPoint(frequency_ghz=f, voltage_v=v))
    return points


@dataclass
class CpuPowerModel:
    """Power model of one CPU package.

    Parameters
    ----------
    tdp_w:
        Thermal design power; full-activity power at the top operating
        point is calibrated to this value.
    cores:
        Physical core count of the package.
    operating_points:
        Available DVFS states, any order; sorted internally.
    static_fraction:
        Share of TDP that is static (leakage + uncore) at the top
        operating point.  Newer processes idle deeper; the corpus uses
        lower fractions for newer codenames.
    idle_state_residency:
        How much of the *static* power C-states eliminate when a core
        is completely idle (package C-states, clock gating).  0 keeps
        all static power at idle; 1 removes it entirely.
    """

    tdp_w: float
    cores: int
    operating_points: List[OperatingPoint] = field(default_factory=list)
    static_fraction: float = 0.3
    idle_state_residency: float = 0.5

    def __post_init__(self):
        if self.tdp_w <= 0.0:
            raise ValueError("TDP must be positive")
        if self.cores <= 0:
            raise ValueError("core count must be positive")
        if not self.operating_points:
            self.operating_points = default_voltage_curve([2.0])
        self.operating_points = sorted(
            self.operating_points, key=lambda pt: pt.frequency_ghz
        )
        if not 0.0 <= self.static_fraction < 1.0:
            raise ValueError("static fraction must be in [0, 1)")
        if not 0.0 <= self.idle_state_residency <= 1.0:
            raise ValueError("idle state residency must be in [0, 1]")

    @property
    def min_frequency_ghz(self) -> float:
        return self.operating_points[0].frequency_ghz

    @property
    def max_frequency_ghz(self) -> float:
        return self.operating_points[-1].frequency_ghz

    @property
    def frequencies_ghz(self) -> Tuple[float, ...]:
        return tuple(pt.frequency_ghz for pt in self.operating_points)

    def operating_point(self, frequency_ghz: float) -> OperatingPoint:
        """Snap a requested frequency to the nearest available P-state."""
        return min(
            self.operating_points,
            key=lambda pt: abs(pt.frequency_ghz - frequency_ghz),
        )

    def _top(self) -> OperatingPoint:
        return self.operating_points[-1]

    def power_w(self, utilization: float, frequency_ghz: float) -> float:
        """Package power at a core utilization and P-state.

        ``utilization`` is the fraction of core-cycles doing work
        (0 = all cores idle, 1 = all cores busy at the given P-state).
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must lie in [0, 1]")
        point = self.operating_point(frequency_ghz)
        top = self._top()
        v_ratio_sq = (point.voltage_v / top.voltage_v) ** 2
        f_ratio = point.frequency_ghz / top.frequency_ghz
        dynamic_max = self.tdp_w * (1.0 - self.static_fraction)
        dynamic = dynamic_max * v_ratio_sq * f_ratio * utilization
        static = self.tdp_w * self.static_fraction * v_ratio_sq
        # C-states peel off part of the static power in proportion to
        # the idle share of the machine.
        static *= 1.0 - self.idle_state_residency * (1.0 - utilization)
        return dynamic + static

    def idle_power_w(self, frequency_ghz: float) -> float:
        """Package power with every core idle at the given P-state."""
        return self.power_w(0.0, frequency_ghz)

    def peak_power_w(self) -> float:
        """Package power fully loaded at the top P-state (~TDP)."""
        return self.power_w(1.0, self.max_frequency_ghz)
