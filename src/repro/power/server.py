"""Whole-server power model: components composed behind a PSU.

A :class:`ServerPowerModel` is the wall-socket view of a server that
the SPECpower simulator's power meter samples: CPU packages, DIMMs,
disks, fans, and a motherboard floor, summed on the DC side and pushed
through the PSU efficiency curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.power.components import DiskPowerModel, FanPowerModel
from repro.power.cpu import CpuPowerModel
from repro.power.memory import MemoryPowerModel
from repro.power.psu import PsuModel


@dataclass
class ServerPowerModel:
    """Component composition of one physical server.

    Parameters
    ----------
    cpus:
        One :class:`CpuPowerModel` per socket.
    memory:
        The populated memory subsystem.
    disks:
        Installed storage devices.
    fans:
        The chassis fan bank.
    psu:
        The power supply; wall power is DC power divided by efficiency.
    psu_count:
        Installed (load-sharing) supplies.  Redundant configurations
        (2 for 1+1) split the DC load, pushing each unit onto the
        inefficient left shoulder of its curve at light load -- a real
        and often-overlooked proportionality cost.
    motherboard_w:
        Chipset/VRM/BMC floor, drawn at all times.
    memory_intensity_ratio:
        How strongly memory access intensity tracks compute utilization
        for the modeled workload (SPECpower is moderately memory
        intensive; 0.7 by default).
    """

    cpus: List[CpuPowerModel]
    memory: MemoryPowerModel
    disks: List[DiskPowerModel] = field(default_factory=list)
    fans: Optional[FanPowerModel] = None
    psu: Optional[PsuModel] = None
    psu_count: int = 1
    motherboard_w: float = 25.0
    memory_intensity_ratio: float = 0.7

    def __post_init__(self):
        if not self.cpus:
            raise ValueError("a server needs at least one CPU")
        if self.motherboard_w < 0.0:
            raise ValueError("motherboard power cannot be negative")
        if not 0.0 <= self.memory_intensity_ratio <= 1.0:
            raise ValueError("memory intensity ratio must lie in [0, 1]")
        if self.psu_count <= 0:
            raise ValueError("at least one PSU is required")
        if self.fans is None:
            self.fans = FanPowerModel(base_w=8.0, max_w=30.0)
        if self.psu is None:
            self.psu = PsuModel(rated_w=self.nameplate_dc_w() * 1.4)

    @property
    def total_cores(self) -> int:
        return sum(cpu.cores for cpu in self.cpus)

    def nameplate_dc_w(self) -> float:
        """Rough full-load DC power, used to size the default PSU."""
        total = sum(cpu.peak_power_w() for cpu in self.cpus)
        total += self.memory.power_w(1.0)
        total += sum(disk.power_w(1.0) for disk in self.disks)
        total += self.motherboard_w + 30.0
        return total

    def dc_power_w(self, utilization: float, frequency_ghz: float) -> float:
        """DC-side power at a compute utilization and CPU frequency."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must lie in [0, 1]")
        power = sum(cpu.power_w(utilization, frequency_ghz) for cpu in self.cpus)
        power += self.memory.power_w(self.memory_intensity_ratio * utilization)
        power += sum(disk.power_w(0.0) for disk in self.disks)
        power += self.fans.power_w(utilization)
        power += self.motherboard_w
        return power

    def wall_power_w(self, utilization: float, frequency_ghz: float) -> float:
        """AC wall power at a compute utilization and CPU frequency.

        With multiple load-sharing PSUs the DC load splits evenly and
        each unit converts its share at the corresponding efficiency.
        """
        dc = self.dc_power_w(utilization, frequency_ghz)
        share = dc / self.psu_count
        return self.psu_count * self.psu.wall_power_w(share)

    def idle_wall_power_w(self, frequency_ghz: Optional[float] = None) -> float:
        """Wall power with every core idle."""
        if frequency_ghz is None:
            frequency_ghz = self.cpus[0].min_frequency_ghz
        return self.wall_power_w(0.0, frequency_ghz)

    def peak_wall_power_w(self) -> float:
        """Wall power fully loaded at the top P-state."""
        return self.wall_power_w(1.0, self.cpus[0].max_frequency_ghz)
