"""Non-CPU, non-memory component power models: disks and fans.

SPECpower does not stress storage (Section V.A notes vendors therefore
submit single-disk configurations), so disk power is essentially a
constant background term that differs between spinning disks and SSDs.
Fan power responds to thermal load; the cubic fan-affinity law is the
standard first-order model and supplies the gentle superlinearity real
servers show near full load.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskPowerModel:
    """One storage device.

    ``idle_w`` is drawn whenever the device is powered (for an HDD this
    is dominated by spindle rotation); ``active_w`` is the additional
    draw under I/O, which SPECpower-style workloads barely exercise
    (``io_intensity`` stays near zero).
    """

    kind: str
    idle_w: float
    active_w: float

    def __post_init__(self):
        if self.idle_w < 0.0 or self.active_w < 0.0:
            raise ValueError("disk power terms cannot be negative")

    def power_w(self, io_intensity: float = 0.0) -> float:
        """Draw at an I/O intensity in [0, 1]."""
        if not 0.0 <= io_intensity <= 1.0:
            raise ValueError("I/O intensity must lie in [0, 1]")
        return self.idle_w + self.active_w * io_intensity


#: 10k-rpm SAS spinner vs. SATA SSD, per Table II's configurations.
SAS_10K = DiskPowerModel(kind="SAS 10k", idle_w=5.8, active_w=3.0)
SATA_SSD = DiskPowerModel(kind="SATA SSD", idle_w=1.2, active_w=2.2)


@dataclass(frozen=True)
class FanPowerModel:
    """Chassis fan bank following the cubic fan-affinity law.

    Fan speed rises with the thermal load (approximated by compute
    utilization); power rises with the cube of speed.  ``base_w`` is
    the floor draw at the minimum speed, ``max_w`` the draw at full
    speed, and ``min_speed_fraction`` the idle speed floor.
    """

    base_w: float
    max_w: float
    min_speed_fraction: float = 0.4

    def __post_init__(self):
        if self.base_w < 0.0 or self.max_w < self.base_w:
            raise ValueError("fan power bounds are inconsistent")
        if not 0.0 < self.min_speed_fraction <= 1.0:
            raise ValueError("minimum speed fraction must lie in (0, 1]")

    def power_w(self, thermal_load: float) -> float:
        """Fan power at a thermal load in [0, 1]."""
        if not 0.0 <= thermal_load <= 1.0:
            raise ValueError("thermal load must lie in [0, 1]")
        speed = self.min_speed_fraction + (1.0 - self.min_speed_fraction) * thermal_load
        floor = self.min_speed_fraction**3
        normalized = (speed**3 - floor) / (1.0 - floor) if floor < 1.0 else 0.0
        return self.base_w + (self.max_w - self.base_w) * normalized
