"""Processor microarchitecture catalog.

Figures 6-8 of the paper group the 477 SPECpower servers by processor
microarchitecture *family* (Netburst, Core, Nehalem, Sandy Bridge,
Haswell, Skylake, AMD, unknown) and by *codename* within each family,
and report the average EP of each codename.  This catalog encodes those
published averages as calibration targets, together with process-node
and release-window metadata used by the synthetic corpus.

The per-codename EP averages come straight from Fig. 7's legend, e.g.
Sandy Bridge EN 0.90 (the best observed), Broadwell 0.87, Haswell 0.81,
Netburst 0.29 (the worst).  Pre-2011 AMD codenames are not legible in
Fig. 7; their targets interpolate the era trend and are flagged
``ep_published=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple


class Vendor(Enum):
    """CPU vendor of a published SPECpower result."""

    INTEL = "Intel"
    AMD = "AMD"
    UNKNOWN = "Unknown"


class Family(Enum):
    """Microarchitecture family as grouped in Fig. 6 of the paper."""

    NETBURST = "Netburst"
    CORE = "Core"
    NEHALEM = "Nehalem"
    SANDY_BRIDGE = "Sandy Bridge"
    HASWELL = "Haswell"
    SKYLAKE = "Skylake"
    AMD = "AMD CPU"
    UNKNOWN = "N/A"


class Codename(Enum):
    """Microarchitecture codename as broken out in Fig. 7 of the paper."""

    NETBURST = "Netburst"
    CORE = "Core"
    PENRYN = "Penryn"
    YORKFIELD = "Yorkfield"
    NEHALEM_EP = "Nehalem EP"
    NEHALEM_EX = "Nehalem EX"
    LYNNFIELD = "Lynnfield"
    WESTMERE = "Westmere"
    WESTMERE_EP = "Westmere-EP"
    SANDY_BRIDGE = "Sandy Bridge"
    SANDY_BRIDGE_EP = "Sandy Bridge EP"
    SANDY_BRIDGE_EN = "Sandy Bridge EN"
    IVY_BRIDGE = "Ivy Bridge"
    IVY_BRIDGE_EP = "Ivy Bridge EP"
    HASWELL = "Haswell"
    BROADWELL = "Broadwell"
    SKYLAKE = "Skylake"
    BARCELONA = "Barcelona"
    ISTANBUL = "Istanbul"
    MAGNY_COURS = "Magny-Cours"
    INTERLAGOS = "Interlagos"
    ABU_DHABI = "Abu Dhabi"
    SEOUL = "Seoul"
    UNKNOWN = "N/A"


@dataclass(frozen=True)
class Microarchitecture:
    """Calibration record for one processor codename.

    Attributes
    ----------
    codename / family / vendor:
        Identity within the Fig. 6 / Fig. 7 taxonomy.
    process_nm:
        Lithography node; the paper notes finer nodes usually (but not
        always -- Ivy Bridge regressed from Sandy Bridge) raise EP.
    years:
        Inclusive hardware-availability window in the corpus.
    ep_mean:
        Target mean EP of servers with this codename (Fig. 7 legend).
    ep_spread:
        One-sigma spread used when synthesizing individual servers.
    ee_factor:
        Relative energy-efficiency multiplier versus the era baseline;
        captures that, e.g., Haswell-era parts dominate the top-10% EE
        list (Section IV.B) even where their EP trails Sandy Bridge EN.
    is_tock:
        True for Intel "tock" designs (new microarchitecture on an
        existing node) -- the paper attributes both EP step-jumps
        (2008->2009, 2011->2012) to tocks.
    ep_published:
        Whether ``ep_mean`` is a number printed in the paper (Fig. 7)
        or an interpolation (pre-2011 AMD parts).
    """

    codename: Codename
    family: Family
    vendor: Vendor
    process_nm: int
    years: Tuple[int, int]
    ep_mean: float
    ep_spread: float
    ee_factor: float
    is_tock: bool = False
    ep_published: bool = True


def _m(
    codename: Codename,
    family: Family,
    vendor: Vendor,
    process_nm: int,
    years: Tuple[int, int],
    ep_mean: float,
    ee_factor: float,
    ep_spread: float = 0.035,
    is_tock: bool = False,
    ep_published: bool = True,
) -> Microarchitecture:
    return Microarchitecture(
        codename=codename,
        family=family,
        vendor=vendor,
        process_nm=process_nm,
        years=years,
        ep_mean=ep_mean,
        ep_spread=ep_spread,
        ee_factor=ee_factor,
        is_tock=is_tock,
        ep_published=ep_published,
    )


#: The full catalog, keyed by codename.  EP means are Fig. 7 values.
CATALOG: Dict[Codename, Microarchitecture] = {
    m.codename: m
    for m in [
        _m(Codename.NETBURST, Family.NETBURST, Vendor.INTEL, 90, (2004, 2005), 0.29, 0.9),
        _m(Codename.CORE, Family.CORE, Vendor.INTEL, 65, (2006, 2008), 0.30, 1.0, is_tock=True),
        _m(Codename.PENRYN, Family.CORE, Vendor.INTEL, 45, (2008, 2009), 0.35, 1.05),
        _m(Codename.YORKFIELD, Family.CORE, Vendor.INTEL, 45, (2008, 2009), 0.43, 1.0),
        _m(Codename.NEHALEM_EP, Family.NEHALEM, Vendor.INTEL, 45, (2009, 2010), 0.59, 1.25, is_tock=True),
        _m(Codename.LYNNFIELD, Family.NEHALEM, Vendor.INTEL, 45, (2009, 2009), 0.74, 1.1),
        _m(Codename.NEHALEM_EX, Family.NEHALEM, Vendor.INTEL, 45, (2010, 2010), 0.44, 0.95),
        _m(Codename.WESTMERE, Family.NEHALEM, Vendor.INTEL, 32, (2010, 2011), 0.54, 1.2),
        _m(Codename.WESTMERE_EP, Family.NEHALEM, Vendor.INTEL, 32, (2010, 2011), 0.65, 1.3),
        _m(Codename.SANDY_BRIDGE, Family.SANDY_BRIDGE, Vendor.INTEL, 32, (2011, 2012), 0.75, 1.35, is_tock=True),
        _m(Codename.SANDY_BRIDGE_EP, Family.SANDY_BRIDGE, Vendor.INTEL, 32, (2012, 2012), 0.84, 1.45, is_tock=True),
        _m(Codename.SANDY_BRIDGE_EN, Family.SANDY_BRIDGE, Vendor.INTEL, 32, (2012, 2012), 0.90, 1.35, ep_spread=0.06, is_tock=True),
        _m(Codename.IVY_BRIDGE, Family.SANDY_BRIDGE, Vendor.INTEL, 22, (2012, 2013), 0.71, 1.45),
        _m(Codename.IVY_BRIDGE_EP, Family.SANDY_BRIDGE, Vendor.INTEL, 22, (2013, 2014), 0.75, 1.55),
        _m(Codename.HASWELL, Family.HASWELL, Vendor.INTEL, 22, (2013, 2016), 0.81, 1.75, is_tock=True),
        _m(Codename.BROADWELL, Family.HASWELL, Vendor.INTEL, 14, (2015, 2016), 0.87, 2.0),
        _m(Codename.SKYLAKE, Family.SKYLAKE, Vendor.INTEL, 14, (2015, 2016), 0.76, 1.95, is_tock=True),
        _m(Codename.BARCELONA, Family.AMD, Vendor.AMD, 65, (2008, 2008), 0.33, 0.85, ep_published=False),
        _m(Codename.ISTANBUL, Family.AMD, Vendor.AMD, 45, (2009, 2009), 0.45, 0.9, ep_published=False),
        _m(Codename.MAGNY_COURS, Family.AMD, Vendor.AMD, 45, (2010, 2010), 0.52, 0.95, ep_published=False),
        _m(Codename.INTERLAGOS, Family.AMD, Vendor.AMD, 32, (2011, 2012), 0.65, 1.0),
        _m(Codename.ABU_DHABI, Family.AMD, Vendor.AMD, 32, (2012, 2013), 0.68, 1.05),
        _m(Codename.SEOUL, Family.AMD, Vendor.AMD, 32, (2012, 2013), 0.62, 1.0),
        _m(Codename.UNKNOWN, Family.UNKNOWN, Vendor.UNKNOWN, 45, (2007, 2016), 0.60, 1.0, ep_spread=0.08, ep_published=False),
    ]
}


def lookup(codename: Codename) -> Microarchitecture:
    """Return the catalog record for a codename."""
    return CATALOG[codename]


def codenames(
    family: Optional[Family] = None, vendor: Optional[Vendor] = None
) -> List[Codename]:
    """List catalog codenames, optionally filtered by family or vendor."""
    selected = []
    for record in CATALOG.values():
        if family is not None and record.family is not family:
            continue
        if vendor is not None and record.vendor is not vendor:
            continue
        selected.append(record.codename)
    return selected


def family_of(codename: Codename) -> Family:
    """Family a codename belongs to in the Fig. 6 grouping."""
    return CATALOG[codename].family
