"""Component-level server power models and frequency governors.

These models provide the physical substrate for both halves of the
reproduction:

* the :mod:`repro.ssj` benchmark simulator draws wall power from a
  :class:`~repro.power.server.ServerPowerModel` while it replays the
  graduated-load protocol, and
* the :mod:`repro.hwexp` testbed experiments (Figs. 18-21) sweep the
  CPU model's DVFS operating points and the memory model's DIMM
  population.

The microarchitecture catalog encodes the per-codename energy
character (Fig. 7 of the paper) that drives the synthetic corpus.
"""

from repro.power.components import DiskPowerModel, FanPowerModel
from repro.power.cpu import CpuPowerModel, OperatingPoint
from repro.power.governors import (
    FixedFrequencyGovernor,
    Governor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.power.memory import DimmPowerModel, MemoryPowerModel
from repro.power.microarch import (
    CATALOG,
    Codename,
    Family,
    Microarchitecture,
    Vendor,
    codenames,
    lookup,
)
from repro.power.psu import PsuModel
from repro.power.server import ServerPowerModel

__all__ = [
    "CATALOG",
    "Codename",
    "CpuPowerModel",
    "DimmPowerModel",
    "DiskPowerModel",
    "Family",
    "FanPowerModel",
    "FixedFrequencyGovernor",
    "Governor",
    "MemoryPowerModel",
    "Microarchitecture",
    "OndemandGovernor",
    "OperatingPoint",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "PsuModel",
    "ServerPowerModel",
    "Vendor",
    "codenames",
    "lookup",
]
