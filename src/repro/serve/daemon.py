"""The HTTP face of ``repro serve``.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` --
no framework, stdlib only.  Routes:

* ``GET /healthz`` -- liveness probe;
* ``GET /stats`` -- serving counters (queries, memo hits, coalesced,
  batch groups, computations, disk hits, errors);
* ``GET /artifacts`` -- the registry listing;
* ``POST /query`` -- a :mod:`repro.api` request as JSON, answered
  with the full :class:`~repro.api.result.QueryResult` envelope.

Connections are keep-alive with ``Content-Length`` framing, which is
what lets a load generator push thousands of queries per second
through a handful of sockets.  :func:`start_daemon_thread` runs the
same server on a background thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from repro.serve.app import ServeApp

_MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}


def _response(status: int, body: bytes, keep_alive: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def _json_body(document: Dict[str, Any]) -> bytes:
    return (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")


async def _route(
    app: ServeApp, method: str, target: str, body: bytes
) -> Tuple[int, bytes]:
    """Dispatch one HTTP exchange to the app."""
    target = target.split("?", 1)[0]
    if method == "GET" and target == "/healthz":
        return 200, _json_body({"status": "ok"})
    if method == "GET" and target == "/stats":
        return 200, _json_body(app.stats_payload())
    if method == "GET" and target == "/artifacts":
        return await app.handle_query({"family": "list"})
    if method == "POST" and target == "/query":
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return 400, _json_body({"error": "request body is not valid JSON"})
        if not isinstance(payload, dict):
            return 400, _json_body({"error": "request body must be a JSON object"})
        return await app.handle_query(payload)
    if target in ("/healthz", "/stats", "/artifacts", "/query"):
        return 405, _json_body({"error": f"{method} not allowed on {target}"})
    return 404, _json_body({"error": f"no route for {target}"})


async def _handle_connection(
    app: ServeApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one keep-alive connection until EOF or ``Connection: close``."""
    try:
        while True:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").strip().split()
            if len(parts) != 3:
                writer.write(
                    _response(400, _json_body({"error": "bad request line"}), False)
                )
                await writer.drain()
                return
            method, target, _version = parts
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > _MAX_BODY_BYTES:
                writer.write(
                    _response(400, _json_body({"error": "body too large"}), False)
                )
                await writer.drain()
                return
            body = await reader.readexactly(length) if length else b""
            status, payload = await _route(app, method, target, body)
            keep_alive = headers.get("connection", "keep-alive").lower() != "close"
            writer.write(_response(status, payload, keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.IncompleteReadError):
        return
    except asyncio.CancelledError:  # loop shutdown while parked on a read
        return
    finally:
        writer.close()


class DaemonHandle:
    """A daemon running on a background thread, for tests and benches."""

    def __init__(self, app: ServeApp, host: str, port: int,
                 thread: threading.Thread, loop: asyncio.AbstractEventLoop,
                 shutdown: asyncio.Event) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop
        self._shutdown = shutdown

    def stop(self, timeout_s: float = 10.0) -> None:
        """Ask the server loop to exit and join the thread (bounded)."""
        self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout=timeout_s)


async def _serve(
    app: ServeApp,
    host: str,
    port: int,
    shutdown: asyncio.Event,
    on_ready: Optional[Any] = None,
) -> None:
    """Bind, announce readiness, serve until ``shutdown`` is set."""
    server = await asyncio.start_server(
        lambda reader, writer: _handle_connection(app, reader, writer),
        host=host,
        port=port,
    )
    bound_port = server.sockets[0].getsockname()[1]
    if on_ready is not None:
        on_ready(bound_port, asyncio.get_running_loop())
    async with server:
        await shutdown.wait()


def run_daemon(
    host: str = "127.0.0.1",
    port: int = 8631,
    seed: int = 2016,
    cache_dir: Optional[str] = None,
    out: Optional[Any] = None,
) -> int:
    """Warm an app and serve in the foreground until interrupted."""
    from repro.core.cache import ArtifactCache

    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    app = ServeApp(seed=seed, cache=cache)
    app.warm()

    def announce(bound_port: int, _loop: asyncio.AbstractEventLoop) -> None:
        if out is not None:
            print(f"repro serve listening on http://{host}:{bound_port}/",
                  file=out, flush=True)

    async def main() -> None:
        await _serve(app, host, port, asyncio.Event(), announce)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def start_daemon_thread(
    app: Optional[ServeApp] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    warm: bool = True,
    ready_timeout_s: float = 30.0,
) -> DaemonHandle:
    """Run the daemon on a daemon thread; returns a live handle.

    ``port=0`` binds an ephemeral port; the handle's ``port`` is the
    real one.  The app is warmed on the caller's thread so the server
    never answers from a cold corpus.
    """
    if app is None:
        app = ServeApp()
    if warm:
        app.warm()
    ready = threading.Event()
    state: Dict[str, Any] = {}

    def runner() -> None:
        async def main() -> None:
            shutdown: asyncio.Event = asyncio.Event()

            def on_ready(bound_port: int,
                         loop: asyncio.AbstractEventLoop) -> None:
                state["port"] = bound_port
                state["loop"] = loop
                state["shutdown"] = shutdown
                ready.set()

            await _serve(app, host, port, shutdown, on_ready)

        asyncio.run(main())

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=ready_timeout_s):
        raise RuntimeError("repro serve daemon failed to start in time")
    return DaemonHandle(
        app, host, state["port"], thread, state["loop"], state["shutdown"]
    )
