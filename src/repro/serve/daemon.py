"""The HTTP face of ``repro serve``.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` --
no framework, stdlib only.  Routes:

* ``GET /healthz`` -- liveness probe (``200 ok`` while serving,
  ``503 draining`` once a drain has begun);
* ``GET /stats`` -- serving counters (queries, memo hits, coalesced,
  batch groups, computations, disk hits, errors, sheds, timeouts,
  breaker trips);
* ``GET /artifacts`` -- the registry listing;
* ``POST /query`` -- a :mod:`repro.api` request as JSON, answered
  with the full :class:`~repro.api.result.QueryResult` envelope.
  An ``X-Repro-Deadline-Ms`` header (or ``deadline_ms`` body field)
  bounds the exchange; expiry answers ``504``.  Saturation and tripped
  circuit breakers answer ``503`` with a ``Retry-After`` hint.

Connections are keep-alive with ``Content-Length`` framing, which is
what lets a load generator push thousands of queries per second
through a handful of sockets.  Shutdown is a *drain*: stop accepting,
finish (or deadline-expire) everything already admitted, then close
the keep-alive connections -- wired to SIGTERM/SIGINT in the
foreground daemon and to :meth:`DaemonHandle.stop` on the background
thread.  :func:`start_daemon_thread` runs the same server on a
background thread for tests and benchmarks.

Every socket wait here is bounded (``asyncio.wait_for`` around
``drain()``/``wait_closed()``); the REP506 robustness check keeps it
that way.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import warnings
from typing import Any, Dict, Optional, Set, Tuple

from repro.core import faults
from repro.core.resilience import ReproError
from repro.serve.app import ServeApp
from repro.serve.resilience import ServeLimits

_MAX_BODY_BYTES = 4 * 1024 * 1024

#: Ceiling on any single socket flush or close; a peer that cannot
#: accept bytes for this long forfeits the connection.
_IO_TIMEOUT_S = 30.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}


def _response(
    status: int,
    body: bytes,
    keep_alive: bool,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    extra = ""
    if headers:
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in sorted(headers.items()))
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def _json_body(document: Dict[str, Any]) -> bytes:
    return (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")


async def _flush(writer: asyncio.StreamWriter) -> None:
    """Bounded ``drain()``: never parks forever on a stuck peer."""
    await asyncio.wait_for(writer.drain(), _IO_TIMEOUT_S)


async def _route(
    app: ServeApp,
    method: str,
    target: str,
    body: bytes,
    deadline_ms: Optional[str] = None,
) -> Tuple[int, bytes, Dict[str, str]]:
    """Dispatch one HTTP exchange to the app."""
    target = target.split("?", 1)[0]
    if method == "GET" and target == "/healthz":
        if app.state != "serving":
            return 503, _json_body({"status": "draining"}), {}
        return 200, _json_body({"status": "ok"}), {}
    if method == "GET" and target == "/stats":
        return 200, _json_body(app.stats_payload()), {}
    if method == "GET" and target == "/artifacts":
        return await app.handle({"family": "list"}, deadline_ms)
    if method == "POST" and target == "/query":
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return (
                400,
                _json_body({"error": "request body is not valid JSON"}),
                {},
            )
        if not isinstance(payload, dict):
            return (
                400,
                _json_body({"error": "request body must be a JSON object"}),
                {},
            )
        return await app.handle(payload, deadline_ms)
    if target in ("/healthz", "/stats", "/artifacts", "/query"):
        return 405, _json_body({"error": f"{method} not allowed on {target}"}), {}
    return 404, _json_body({"error": f"no route for {target}"}), {}


class _Connections:
    """Live connections plus in-progress exchange accounting.

    ``begin_exchange``/``end_exchange`` bracket the span from a fully
    read request to its flushed response, so a drain that waits for
    :meth:`wait_quiet` loses no *accepted* request -- even one whose
    engine work finished but whose bytes were still in flight.
    """

    def __init__(self) -> None:
        self._writers: Set[asyncio.StreamWriter] = set()
        self._busy = 0
        self._quiet: Optional[asyncio.Event] = None

    def add(self, writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)

    def remove(self, writer: asyncio.StreamWriter) -> None:
        self._writers.discard(writer)

    def begin_exchange(self) -> None:
        self._busy += 1
        if self._quiet is not None:
            self._quiet.clear()

    def end_exchange(self) -> None:
        self._busy -= 1
        if self._busy <= 0 and self._quiet is not None:
            self._quiet.set()

    async def wait_quiet(self, timeout_s: float) -> bool:
        """Await zero in-progress exchanges; False on timeout."""
        if self._busy == 0:
            return True
        if self._quiet is None:
            self._quiet = asyncio.Event()
        if self._busy == 0:
            return True
        try:
            await asyncio.wait_for(self._quiet.wait(), timeout_s)
        except asyncio.TimeoutError:
            return False
        return True

    def close_all(self) -> int:
        """Close every tracked connection; returns how many."""
        writers = list(self._writers)
        for writer in writers:
            writer.close()
        return len(writers)


async def _handle_connection(
    app: ServeApp,
    conns: _Connections,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one keep-alive connection until EOF or ``Connection: close``."""
    conns.add(writer)
    try:
        while True:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").strip().split()
            if len(parts) != 3:
                writer.write(
                    _response(400, _json_body({"error": "bad request line"}), False)
                )
                await _flush(writer)
                return
            method, target, _version = parts
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > _MAX_BODY_BYTES:
                writer.write(
                    _response(400, _json_body({"error": "body too large"}), False)
                )
                await _flush(writer)
                return
            body = await reader.readexactly(length) if length else b""
            conns.begin_exchange()
            try:
                status, payload, extra = await _route(
                    app, method, target, body,
                    headers.get("x-repro-deadline-ms"),
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and app.state == "serving"
                )
                await faults.fire_async("serve.io")
                if faults.should_corrupt("serve.io") and payload:
                    # same length, damaged first byte: framing survives,
                    # the client sees a JSON parse failure
                    payload = b"\x00" + payload[1:]
                writer.write(_response(status, payload, keep_alive, extra))
                await _flush(writer)
            finally:
                conns.end_exchange()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
        return
    except ReproError:  # injected serve.io failure: drop the connection
        return
    except asyncio.CancelledError:  # loop shutdown while parked on a read
        return
    finally:
        conns.remove(writer)
        writer.close()


class DaemonHandle:
    """A daemon running on a background thread, for tests and benches."""

    def __init__(self, app: ServeApp, host: str, port: int,
                 thread: threading.Thread, loop: asyncio.AbstractEventLoop,
                 shutdown: asyncio.Event) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop
        self._shutdown = shutdown

    def stop(self, timeout_s: float = 10.0) -> None:
        """Drain the server and join its thread (bounded).

        Triggers the graceful drain (stop accepting, finish admitted
        work, close connections) and waits up to ``timeout_s`` for the
        loop thread to exit.  A stop that does *not* finish in time is
        loud: a ``RuntimeWarning`` names the still-pending loop tasks
        instead of silently leaking the thread.
        """
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():
            names = self._pending_task_names()
            warnings.warn(
                f"repro serve daemon did not stop within {timeout_s:g}s; "
                f"pending loop tasks: {names or '<unknown>'}",
                RuntimeWarning,
                stacklevel=2,
            )

    def _pending_task_names(self) -> str:
        # best effort from outside the loop thread; the task set is
        # read-only here and a torn read only degrades the message
        try:
            tasks = asyncio.all_tasks(self._loop)
        except RuntimeError:
            return ""
        names = sorted(task.get_name() for task in tasks if not task.done())
        return ", ".join(names)


async def _serve(
    app: ServeApp,
    host: str,
    port: int,
    shutdown: asyncio.Event,
    on_ready: Optional[Any] = None,
) -> None:
    """Bind, announce readiness, serve until ``shutdown``, then drain."""
    conns = _Connections()
    server = await asyncio.start_server(
        lambda reader, writer: _handle_connection(app, conns, reader, writer),
        host=host,
        port=port,
    )
    bound_port = server.sockets[0].getsockname()[1]
    if on_ready is not None:
        on_ready(bound_port, asyncio.get_running_loop())
    try:
        await shutdown.wait()
    finally:
        # graceful drain: no new sockets, no new queries, admitted work
        # runs to completion (bounded), then the keep-alives close
        server.close()
        app.begin_drain()
        await conns.wait_quiet(app.limits.drain_s)
        conns.close_all()
        # admitted work has settled (or overran its budget): the engine
        # worker processes can go now, off the loop
        await asyncio.get_running_loop().run_in_executor(
            None, app.stop_workers
        )
        try:
            await asyncio.wait_for(server.wait_closed(), _IO_TIMEOUT_S)
        except asyncio.TimeoutError:
            # a handler stuck past the I/O ceiling (3.12+ wait_closed
            # waits on handlers): bounded-but-loud, like stop()
            warnings.warn(
                f"repro serve drain overran: connection handlers still "
                f"pending after {_IO_TIMEOUT_S:g}s; abandoning the wait",
                RuntimeWarning,
                stacklevel=2,
            )


def run_daemon(
    host: str = "127.0.0.1",
    port: int = 8631,
    seed: int = 2016,
    cache_dir: Optional[str] = None,
    out: Optional[Any] = None,
    limits: Optional[ServeLimits] = None,
    workers: int = 0,
) -> int:
    """Warm an app and serve in the foreground until signalled.

    SIGTERM and SIGINT both trigger the graceful drain rather than
    killing in-flight work.  ``workers=N`` forks the engine worker
    pool after the warm-up; ``0`` keeps every engine execution on the
    in-process thread pool.
    """
    from repro.core.cache import ArtifactCache

    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    app = ServeApp(seed=seed, cache=cache, limits=limits, workers=workers)
    app.warm()

    def announce(bound_port: int, _loop: asyncio.AbstractEventLoop) -> None:
        if out is not None:
            print(f"repro serve listening on http://{host}:{bound_port}/",
                  file=out, flush=True)

    async def main() -> None:
        shutdown: asyncio.Event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal handlers
        await _serve(app, host, port, shutdown, announce)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        app.stop_workers()  # idempotent: normally the drain already did
    return 0


def start_daemon_thread(
    app: Optional[ServeApp] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    warm: bool = True,
    ready_timeout_s: float = 30.0,
) -> DaemonHandle:
    """Run the daemon on a daemon thread; returns a live handle.

    ``port=0`` binds an ephemeral port; the handle's ``port`` is the
    real one.  The app is warmed on the caller's thread so the server
    never answers from a cold corpus.
    """
    if app is None:
        app = ServeApp()
    if warm:
        app.warm()
    ready = threading.Event()
    state: Dict[str, Any] = {}

    def runner() -> None:
        async def main() -> None:
            shutdown: asyncio.Event = asyncio.Event()

            def on_ready(bound_port: int,
                         loop: asyncio.AbstractEventLoop) -> None:
                state["port"] = bound_port
                state["loop"] = loop
                state["shutdown"] = shutdown
                ready.set()

            await _serve(app, host, port, shutdown, on_ready)

        asyncio.run(main())

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=ready_timeout_s):
        raise RuntimeError("repro serve daemon failed to start in time")
    return DaemonHandle(
        app, host, state["port"], thread, state["loop"], state["shutdown"]
    )
