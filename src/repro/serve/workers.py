"""Process-pool engine workers: multi-core compute for the daemon.

The serve path's engine executions used to run on the event loop's
default *thread* pool, which serializes compute-heavy queries on the
GIL — one core does all the work while the rest idle.
:class:`EngineWorkerPool` is the compute tier that fixes that, shaped
like a standard inference server:

* **pre-forked workers** — N child processes forked *after*
  :meth:`ServeApp.warm <repro.serve.app.ServeApp.warm>`, so each one
  starts with the parent's warm :class:`~repro.api.dispatch.QueryContext`
  already in memory (copy-on-write pages; nothing is re-synthesized or
  pickled);
* **zero-copy warm state** — before forking, the parent spills the
  corpus curve matrices through the PR 7
  :class:`~repro.dataset.columns.ColumnSpillStore` and every worker
  re-attaches them as read-only memmaps
  (:meth:`~repro.dataset.columns.CorpusColumns.attach_spilled`), so all
  workers and the parent share one set of physical pages.  Where the
  spill root is unusable the matrices travel as
  ``multiprocessing.shared_memory`` segments instead, through the same
  publish/attach helpers the sharded fleet tier uses
  (:func:`repro.cluster.sharded.publish_shm_arrays` /
  :func:`~repro.cluster.sharded.attached_shm_arrays`);
* **sticky routing** — requests are routed by spec key
  (``crc32(key) % N``), so identical specs always land on the same
  worker and its per-context memoized engines stay hot; batch groups
  route by cohort key for the same reason.  One request (or group) is
  in flight per worker at a time, serialized by a per-worker lock on
  the event loop;
* **crash-isolated compute** — a worker death (the ``serve.worker``
  fault site, an OOM kill, a segfault) is detected on the pipe,
  answered by *one* restart (via the fork-safe ``spawn`` context — the
  parent is multithreaded by then) plus a seeded-backoff retry
  (:class:`~repro.core.resilience.RetryPolicy`), and only a second
  death surfaces — as :class:`~repro.core.resilience.TransientError`,
  which the app maps to ``503`` and the PR 9 circuit breaker correctly
  treats as non-tripping.

Every result carries the executing worker's name in
``provenance.worker``; ``/stats`` exposes per-worker
inflight/served/restart counters.  Payloads are bit-identical to the
in-thread path (``--workers 0``): the same ``execute()`` runs against
the same corpus bytes, only in another process.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import threading
import time
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.dispatch import QueryContext, execute
from repro.api.requests import QueryRequest
from repro.api.result import QueryResult
from repro.cluster.sharded import attached_shm_arrays, publish_shm_arrays
from repro.core import faults
from repro.core.cache import ArtifactCache
from repro.core.resilience import RetryPolicy, TransientError
from repro.dataset.columns import ColumnSpillStore

#: Exit code of an injected ``serve.worker`` mid-query death.
_CRASH_EXIT = 70

#: Parent-side poll tick while waiting on a worker reply: bounded
#: waits so a silently vanished worker is noticed within one tick.
_WAIT_TICK_S = 0.25

#: Budget for a worker process to leave after a stop message.
_STOP_JOIN_S = 5.0

#: The corpus curve matrices the parent publishes and workers attach.
_MATRIX_NAMES = ("load_grid", "power_matrix", "ops_matrix")


class WorkerDied(Exception):
    """A worker process exited while a request was in flight."""

    def __init__(self, index: int, exitcode: Optional[int]) -> None:
        super().__init__(
            f"serve worker w{index} died (exit code {exitcode})"
        )
        self.index = index
        self.exitcode = exitcode


def _serve_requests(conn: Any, context: QueryContext) -> None:
    """The worker's service loop: recv requests, send results."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away: nothing left to serve
        if message[0] == "stop":
            return
        _verb, requests, crash = message
        if crash:
            # injected serve.worker fault: die mid-query, no reply —
            # the parent sees the pipe drop and runs its recovery path
            os._exit(_CRASH_EXIT)
        try:
            results = [execute(request, context) for request in requests]
        except Exception as exc:
            reply: Tuple[str, Any] = ("err", exc)
        else:
            reply = ("ok", results)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return  # parent went away mid-reply


def _worker_main(
    conn: Any,
    index: int,
    seed: int,
    warm_context: Optional[QueryContext],
    transport: Tuple[str, Any],
    cache_dir: Optional[str],
) -> None:
    """Entry point of one worker process.

    Forked workers receive the parent's warm ``QueryContext`` directly
    (copy-on-write memory, never pickled); spawned workers — spawn-only
    platforms, and every post-death replacement (see
    :meth:`EngineWorkerPool._respawn`) — rebuild one from the seed.
    Either way the corpus curve matrices are then swapped for the
    parent-published zero-copy representation before the first query
    runs.
    """
    if warm_context is not None:
        context = warm_context
    else:  # spawn platforms and respawned replacement workers
        cache = ArtifactCache(cache_dir) if cache_dir else None
        context = QueryContext(cache=cache)
    columns = context.corpus(seed).columns()
    mode, payload = transport
    if mode == "spill":
        columns.attach_spilled(ColumnSpillStore(payload))
        _serve_requests(conn, context)
    else:  # "shm": segments must stay attached for the loop's lifetime
        with attached_shm_arrays(payload) as arrays:
            columns.adopt_matrices(
                {name: arrays[name] for name in _MATRIX_NAMES}
            )
            _serve_requests(conn, context)


class _Worker:
    """One child process plus its pipe, lock and counters."""

    __slots__ = (
        "index", "process", "conn", "served", "restarts", "inflight",
        "io_lock", "_lock", "_lock_loop",
    )

    def __init__(self, index: int, process: Any, conn: Any) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.served = 0
        self.restarts = 0
        self.inflight = 0
        #: Thread-level guard on the pipe: ``Connection`` is not
        #: thread-safe, and an abandoned (deadline-cancelled) exchange
        #: keeps running on its executor thread after the event-loop
        #: lock moves on — every send/recv, including ``stop()``'s,
        #: must hold this.
        self.io_lock = threading.Lock()
        self._lock: Optional[asyncio.Lock] = None
        self._lock_loop: Optional[asyncio.AbstractEventLoop] = None

    def lock_for(self, loop: asyncio.AbstractEventLoop) -> asyncio.Lock:
        """This worker's submission lock, re-created per event loop."""
        if self._lock is None or self._lock_loop is not loop:
            self._lock = asyncio.Lock()
            self._lock_loop = loop
        return self._lock

    @property
    def name(self) -> str:
        """The stamp this worker leaves in ``provenance.worker``."""
        return f"w{self.index}"


class EngineWorkerPool:
    """N pre-forked engine workers with sticky spec-key routing.

    Built unstarted; :meth:`start` forks the workers off the (already
    warm) parent context and must run before the first
    :meth:`submit`.  ``submit``/``submit_group`` run on the event loop
    and serialize per worker; the blocking pipe exchange itself runs on
    the default executor, so the loop only routes.  :meth:`stop` is
    idempotent and bounded.
    """

    def __init__(
        self,
        context: QueryContext,
        seed: int = 2016,
        size: int = 2,
        spill: Optional[ColumnSpillStore] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"worker pool size must be >= 1, got {size}")
        self.context = context
        self.seed = seed
        self.size = int(size)
        self.spill = spill if spill is not None else ColumnSpillStore()
        self.retry = retry if retry is not None else RetryPolicy(
            attempts=2, base_delay_s=0.01, max_delay_s=0.25, seed=seed
        )
        start_methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in start_methods else "spawn"
        )
        # replacements after a worker death always come up via spawn:
        # by then the parent has a live event loop and executor
        # threads, and os.fork() from a multithreaded process can
        # deadlock the child on locks other threads hold
        self._respawn_mp = multiprocessing.get_context("spawn")
        self._workers: List[_Worker] = []
        self._segments: List[Any] = []
        self._transport: Tuple[str, Any] = ("spill", str(self.spill.root))
        self._cache_dir: Optional[str] = None
        self._started = False
        #: Worker processes re-forked after a death, pool lifetime.
        self.restarts = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        """Whether the workers are forked and serving."""
        return self._started

    def start(self) -> None:
        """Publish the warm state and fork the workers (idempotent)."""
        if self._started:
            return
        corpus = self.context.corpus(self.seed)
        columns = corpus.columns()
        try:
            columns.spill_matrices(self.spill)
            self._transport = ("spill", str(self.spill.root))
        except OSError:
            # unusable spill root (read-only tmp): ship the matrices as
            # shared-memory segments instead, the sharded tier's way
            named = {
                "load_grid": columns.load_grid(),
                "power_matrix": columns.power_matrix(),
                "ops_matrix": columns.ops_matrix(),
            }
            blocks, self._segments = publish_shm_arrays(named)
            self._transport = ("shm", blocks)
        cache = self.context.cache
        self._cache_dir = str(cache.root) if cache is not None else None
        self._workers = [self._spawn(index) for index in range(self.size)]
        self._started = True

    def _spawn(self, index: int, mp: Any = None) -> _Worker:
        mp = mp if mp is not None else self._mp
        parent_conn, child_conn = mp.Pipe(duplex=True)
        warm = self.context if mp.get_start_method() == "fork" else None
        process = mp.Process(
            target=_worker_main,
            args=(
                child_conn, index, self.seed, warm,
                self._transport, self._cache_dir,
            ),
            name=f"repro-serve-w{index}",
            daemon=True,
        )
        process.start()
        # drop the parent's copy of the child end: worker death must
        # surface as EOF on this pipe, not an indefinite park
        child_conn.close()
        return _Worker(index, process, parent_conn)

    def stop(self, timeout_s: float = _STOP_JOIN_S) -> None:
        """Stop every worker and reclaim segments (idempotent, bounded)."""
        if not self._started:
            return
        self._started = False
        for worker in self._workers:
            # never write the pipe while an abandoned exchange may
            # still be mid send/recv on it from an executor thread —
            # if the io lock can't be had quickly, skip the polite
            # stop; join/terminate below still reaps the worker
            if not worker.io_lock.acquire(timeout=0.25):
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass  # already dead: join below still reaps it
            finally:
                worker.io_lock.release()
        for worker in self._workers:
            worker.process.join(timeout=timeout_s)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.conn.close()
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views are local
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    # -- routing -----------------------------------------------------------------

    def route_index(self, route: str) -> int:
        """Sticky worker index for a routing key (stable across runs)."""
        return zlib.crc32(route.encode("utf-8")) % self.size

    # -- submission --------------------------------------------------------------

    async def submit(self, request: QueryRequest, route: str) -> QueryResult:
        """Execute one request on its sticky worker."""
        results = await self._run(route, [request])
        return results[0]

    async def submit_group(
        self, requests: Sequence[QueryRequest], route: str
    ) -> List[QueryResult]:
        """Execute one batch-window group on its sticky worker."""
        return await self._run(route, list(requests))

    async def _run(
        self, route: str, requests: List[QueryRequest]
    ) -> List[QueryResult]:
        if not self._started:
            raise RuntimeError(
                "EngineWorkerPool.start() must run before submit()"
            )
        worker = self._workers[self.route_index(route)]
        loop = asyncio.get_running_loop()
        lock = worker.lock_for(loop)
        await lock.acquire()
        worker.inflight += 1
        try:
            future = loop.run_in_executor(
                None, self._exchange_with_recovery, worker, requests
            )
        except Exception:
            # executor refused the job (shut down during drain):
            # nothing touched the pipe, the worker is reusable
            worker.inflight -= 1
            lock.release()
            raise

        def _settle(_future: "asyncio.Future[Any]") -> None:
            # fires when the exchange actually finishes (or the job
            # was cancelled before its thread started) — never while
            # it is still on the pipe: the await below is shielded,
            # so cancelling this submit abandons the flight but the
            # exchange runs on and the lock is released only here,
            # once the worker's reply has been consumed and the
            # protocol is back in sync
            worker.inflight -= 1
            lock.release()
            if not _future.cancelled():
                _future.exception()  # abandoned errors are settled

        future.add_done_callback(_settle)
        results = await asyncio.shield(future)
        worker.served += len(requests)
        return [self._stamp(result, worker) for result in results]

    def _stamp(self, result: QueryResult, worker: _Worker) -> QueryResult:
        provenance = dataclasses.replace(
            result.provenance, worker=worker.name
        )
        return dataclasses.replace(result, provenance=provenance)

    # -- pipe exchange (executor thread) -----------------------------------------

    def _exchange_with_recovery(
        self, worker: _Worker, requests: List[QueryRequest]
    ) -> List[QueryResult]:
        """Send/recv with restart-once recovery (PR 4 taxonomy).

        A first worker death is masked: the worker is respawned from
        the published warm state and the request retried after one
        seeded backoff delay.  A second death raises
        :class:`TransientError` — the app answers ``503`` and the
        breaker's transient bucket leaves the spec key closed.

        The whole exchange holds the worker's thread-level ``io_lock``:
        the event-loop lock alone cannot serialize pipe access, because
        a deadline-cancelled submit abandons this thread mid-exchange
        while the loop moves on.
        """
        with worker.io_lock:
            for attempt in (1, 2):
                plan = faults.active_plan()
                crash = plan.take("serve.worker") if plan is not None else False
                try:
                    kind, value = self._exchange(
                        worker, ("run", requests, crash)
                    )
                except WorkerDied as death:
                    if not self._started:
                        # pool is stopping: the pipe went away under
                        # us — don't fork a replacement nobody reaps
                        raise TransientError(
                            f"serve worker w{worker.index} lost during "
                            "pool shutdown"
                        ) from death
                    self.restarts += 1
                    worker.restarts += 1
                    self._respawn(worker)
                    if attempt == 1:
                        time.sleep(self.retry.delay_s("serve.worker", attempt))
                        continue
                    raise TransientError(
                        f"serve worker w{worker.index} died twice executing "
                        "one request; restart + retry exhausted"
                    ) from death
                if kind == "err":
                    raise value
                return value
        raise AssertionError("unreachable")  # pragma: no cover

    def _exchange(self, worker: _Worker, payload: Tuple) -> Tuple[str, Any]:
        try:
            worker.conn.send(payload)
            while not worker.conn.poll(_WAIT_TICK_S):
                if not worker.process.is_alive() and not worker.conn.poll(0):
                    raise WorkerDied(worker.index, worker.process.exitcode)
            return worker.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerDied(
                worker.index, worker.process.exitcode
            ) from exc

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead worker's process and pipe in place.

        Runs on an executor thread while the parent's event loop and
        other executor threads are live, so it must not ``os.fork()``
        here — a fork from a multithreaded process can deadlock the
        child on locks other threads hold (malloc arenas, logging,
        other workers' pipes).  Replacements come up through the
        *spawn* context instead: the child rebuilds its context from
        seed + cache and re-attaches the published matrices, exactly
        like the spawn-platform fallback in :func:`_worker_main`.
        """
        worker.conn.close()
        worker.process.join(timeout=1.0)
        fresh = self._spawn(worker.index, mp=self._respawn_mp)
        worker.process = fresh.process
        worker.conn = fresh.conn

    # -- introspection -----------------------------------------------------------

    def worker_stats(self) -> List[Dict[str, Any]]:
        """Per-worker counters for the ``/stats`` document."""
        return [
            {
                "index": worker.index,
                "pid": worker.process.pid,
                "alive": worker.process.is_alive(),
                "inflight": worker.inflight,
                "served": worker.served,
                "restarts": worker.restarts,
            }
            for worker in self._workers
        ]
