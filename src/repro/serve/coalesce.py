"""Request coalescing: N identical in-flight queries, one computation.

The daemon keys its in-flight map by the same ``fingerprint|spec|
engine-version`` hash the artifact cache uses, so "identical" means
*provably the same answer*, not merely the same request object.  The
first arrival becomes the leader and starts the computation as an
asyncio task; every later arrival with the same key awaits that task
and receives the same result object.  The map entry is removed the
moment the task settles, so a failed computation is retried by the
next request rather than caching the exception forever.

Coalescing is **deadline-aware**: every waiter (leader included) may
pass a ``timeout_s`` budget and is parked in ``asyncio.wait_for``
around a *shielded* await, so a waiter that runs out of budget gets
:class:`~repro.core.resilience.DeadlineExceeded` while the shared
computation keeps running for everyone still waiting.  The flight
counts its waiters; when the last one abandons it, the computation is
cancelled — nobody is left to consume the answer, so the engine work
is reclaimed and nothing is memoized.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.core.resilience import DeadlineExceeded, TransientError


class _Flight:
    """One in-flight computation plus its current audience.

    ``abandoned`` flips the instant the last waiter cancels the task;
    the map entry lingers until the task settles, so the flag is what
    tells a later arrival the flight is doomed and must not be joined.
    """

    __slots__ = ("task", "waiters", "abandoned")

    def __init__(self, task: "asyncio.Task[Any]") -> None:
        self.task = task
        self.waiters = 0
        self.abandoned = False


class Coalescer:
    """Single-flight execution of keyed async computations."""

    def __init__(self) -> None:
        self._inflight: Dict[str, _Flight] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def _discard(self, key: str, flight: _Flight) -> None:
        # pop only our own entry: a replacement flight may already be
        # registered under the key by the time an abandoned task settles
        if self._inflight.get(key) is flight:
            del self._inflight[key]

    async def _join(self, key: str, flight: _Flight) -> Any:
        try:
            return await asyncio.shield(flight.task)
        except asyncio.CancelledError:
            if flight.task.cancelled() and flight.abandoned:
                # the flight was torn down under us, not our own
                # cancellation: surface a retryable error rather than
                # letting CancelledError drop the connection silently
                raise TransientError(
                    "coalesced computation was abandoned; retry"
                ) from None
            raise

    async def run(
        self,
        key: str,
        compute: Callable[[], Awaitable[Any]],
        timeout_s: Optional[float] = None,
    ) -> Tuple[Any, bool]:
        """Run ``compute`` under ``key``, sharing in-flight work.

        Returns ``(result, shared)`` where ``shared`` is True when this
        call joined a computation another request had already started.
        With a ``timeout_s`` budget the wait is bounded: on expiry this
        waiter raises :class:`DeadlineExceeded` and leaves; the
        computation is cancelled only when *no* waiter remains.
        """
        flight = self._inflight.get(key)
        if flight is not None and flight.abandoned:
            flight = None  # being cancelled: start fresh, do not join
        shared = flight is not None
        if flight is None:
            task = asyncio.get_running_loop().create_task(compute())
            flight = _Flight(task)
            task.add_done_callback(
                lambda _t, _k=key, _f=flight: self._discard(_k, _f)
            )
            self._inflight[key] = flight
        flight.waiters += 1
        try:
            if timeout_s is None:
                return await self._join(key, flight), shared
            if timeout_s <= 0.0:
                raise DeadlineExceeded("serve.coalesce", 0.0)
            try:
                return (
                    await asyncio.wait_for(
                        self._join(key, flight), timeout_s
                    ),
                    shared,
                )
            except asyncio.TimeoutError:
                raise DeadlineExceeded(
                    "serve.coalesce", timeout_s * 1000.0
                ) from None
        finally:
            flight.waiters -= 1
            if flight.waiters <= 0 and not flight.task.done():
                # last waiter gone: reclaim the now-unwanted computation
                flight.abandoned = True
                flight.task.cancel()
