"""Request coalescing: N identical in-flight queries, one computation.

The daemon keys its in-flight map by the same ``fingerprint|spec|
engine-version`` hash the artifact cache uses, so "identical" means
*provably the same answer*, not merely the same request object.  The
first arrival becomes the leader and starts the computation as an
asyncio task; every later arrival with the same key awaits that task
and receives the same result object.  The map entry is removed the
moment the task settles, so a failed computation is retried by the
next request rather than caching the exception forever.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Tuple


class Coalescer:
    """Single-flight execution of keyed async computations."""

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Task[Any]"] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: str, compute: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, bool]:
        """Run ``compute`` under ``key``, sharing in-flight work.

        Returns ``(result, shared)`` where ``shared`` is True when this
        call joined a computation another request had already started.
        """
        task = self._inflight.get(key)
        if task is not None:
            return await asyncio.shield(task), True
        task = asyncio.get_running_loop().create_task(compute())
        self._inflight[key] = task
        task.add_done_callback(lambda _t, _k=key: self._inflight.pop(_k, None))
        return await asyncio.shield(task), False
