"""``repro serve``: the async query daemon.

A stdlib-only asyncio HTTP/JSON server that loads the corpus, column
store and warm artifact cache once, then answers
:mod:`repro.api` queries with two latency optimizations on top of the
dispatch table:

* **coalescing** -- N in-flight requests with the same spec key share
  one computation (the same fingerprint+spec hash the disk cache uses
  keys the in-flight task map);
* **batching** -- compatible fleet queries (placement / cap / replay
  over the same cohort) arriving within a few-millisecond window are
  executed as one group against a shared columnar engine.

Compute scales past one core through the process-pool worker tier
(:mod:`repro.serve.workers`): ``--workers N`` pre-forks N engine
workers that share the parent's warm corpus state zero-copy and serve
bit-identical payloads, with sticky spec-key routing and
restart-once crash recovery.

``python -m repro serve --port 8631`` starts it; POST a request JSON
to ``/query`` and read back the :class:`~repro.api.QueryResult`
envelope.

The daemon stays *correct under overload* (:mod:`repro.serve.
resilience`): bounded admission with 503 shedding, per-request
deadlines answered with 504, a per-spec circuit breaker, and a
graceful drain on SIGTERM/``stop()``.
"""

from repro.serve.app import ServeApp, ServeStats
from repro.serve.client import ServeClient
from repro.serve.daemon import DaemonHandle, run_daemon, start_daemon_thread
from repro.serve.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    ServeLimits,
)
from repro.serve.workers import EngineWorkerPool

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DaemonHandle",
    "Deadline",
    "EngineWorkerPool",
    "ServeApp",
    "ServeClient",
    "ServeLimits",
    "ServeStats",
    "run_daemon",
    "start_daemon_thread",
]
